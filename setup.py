"""Legacy shim so `pip install -e .` works without network/build isolation."""
from setuptools import setup

setup()
