"""E2 — Uncertain selectivities: choosing the API filter by sampling.

The paper: "TweeQL samples both streams … and selects the filter with the
lowest selectivity in order to require the least work in applying the
second filter." This bench quantifies that: for keyword+bbox queries with
varying keyword rarity, compare tuples fetched from the API and local
predicate evaluations under (a) TweeQL's sampled choice, (b) the opposite
choice, (c) the oracle best.

Expected shape: the sampled choice tracks the oracle; the advantage over
the anti-choice grows with the rate skew between the two filters.
"""

import pytest

from repro.engine.selectivity import FilterCandidate, choose_api_filter
from repro.geo.bbox import named_box
from repro.twitter.stream import Firehose, StreamingAPI

from benchmarks.conftest import print_table

#: Keywords ordered from very rare to very common in the soccer stream.
KEYWORDS = ("tevez", "goal", "manchester", "soccer")


def candidates_for(keyword):
    box = named_box("usa")
    return [
        FilterCandidate(
            kind="track",
            description=f"track({keyword})",
            api_kwargs={"track": (keyword,)},
            matches=lambda t, kw=keyword: t.contains(kw),
        ),
        FilterCandidate(
            kind="locations",
            description="locations(usa)",
            api_kwargs={"locations": (box,)},
            matches=lambda t, box=box: box.contains_point(t.geo),
        ),
    ]


def run_with_api_filter(api, chosen, other):
    """Simulate executing: API applies `chosen`, `other` runs locally."""
    connection = api.filter(**chosen.api_kwargs)
    fetched = 0
    local_evals = 0
    results = 0
    for tweet in connection:
        fetched += 1
        local_evals += 1
        if other.matches(tweet):
            results += 1
    connection.close()
    return fetched, local_evals, results


@pytest.fixture(scope="module")
def api(soccer, chatter):
    return StreamingAPI(
        Firehose.from_scenarios(soccer, chatter), delivery_ratio=1.0
    )


@pytest.mark.parametrize("keyword", KEYWORDS)
def test_selectivity_choice_minimizes_work(benchmark, api, keyword):
    cands = candidates_for(keyword)

    choice = benchmark.pedantic(
        lambda: choose_api_filter(api, cands, sample_rate=0.05),
        rounds=1, iterations=1,
    )
    chosen = choice.chosen
    other = next(c for c in cands if c is not chosen)

    fetched_chosen, evals_chosen, results_a = run_with_api_filter(api, chosen, other)
    fetched_anti, evals_anti, results_b = run_with_api_filter(api, other, chosen)
    oracle = min(fetched_chosen, fetched_anti)

    print_table(
        f"E2 keyword={keyword!r}",
        ["plan", "api_tuples", "local_evals", "results"],
        [
            (f"sampled→{chosen.description}", fetched_chosen, evals_chosen, results_a),
            (f"anti→{other.description}", fetched_anti, evals_anti, results_b),
            ("oracle", oracle, oracle, "-"),
        ],
    )
    # Both plans compute the same answer.
    assert results_a == pytest.approx(results_b, abs=max(3, results_a * 0.05))
    # The sampled choice is the oracle choice (sampling got it right) or
    # within sampling noise of it.
    assert fetched_chosen <= fetched_anti * 1.15


def test_advantage_grows_with_skew(benchmark, api):
    """The rarer the keyword relative to the box, the bigger the saving."""
    savings = []
    def measure():
        savings.clear()
        for keyword in KEYWORDS:
            cands = candidates_for(keyword)
            choice = choose_api_filter(api, cands, sample_rate=0.05)
            other = next(c for c in cands if c is not choice.chosen)
            fetched_chosen, _e, _r = run_with_api_filter(api, choice.chosen, other)
            fetched_anti, _e2, _r2 = run_with_api_filter(api, other, choice.chosen)
            savings.append(fetched_anti / max(1, fetched_chosen))
        return savings

    benchmark.pedantic(measure, rounds=1, iterations=1)
    print_table(
        "E2 saving factor (anti/chosen tuples) by keyword rarity",
        ["keyword"] + list(KEYWORDS),
        [("saving", *[f"{s:.1f}x" for s in savings])],
    )
    # 'tevez' (rarest) must save at least as much as 'soccer' (common).
    assert savings[0] >= savings[-1]
    assert savings[0] > 1.5
