"""E3 — Eddies-style adaptive predicate reordering under selectivity drift.

The paper explores "Eddies-style dynamic operator reordering to adjust to
changes in operator selectivity over time". Workload: a stream whose
dominant topic flips mid-stream, so the cheapest predicate order flips
too. Plans compared by total predicate evaluations (the executor work the
ordering controls):

- the eddy (adaptive),
- each static order,
- the per-phase oracle (lower bound).

Expected shape: every static order is bad on one phase; the eddy tracks
the oracle within a small adaptation overhead.
"""

import pytest

from repro.clock import VirtualClock
from repro.engine.eddies import AdaptivePredicate, EddyOperator, StaticConjunction
from repro.engine.types import EvalContext

from benchmarks.conftest import print_table

N = 40_000


def make_rows():
    """Phase 0: topic A dominates; phase 1: topic B dominates."""
    rows = []
    for i in range(N):
        phase = 0 if i < N // 2 else 1
        rows.append(
            {
                "created_at": float(i),
                "topic_a": (i % 10 == 0) if phase == 0 else (i % 2 == 0),
                "topic_b": (i % 2 == 0) if phase == 0 else (i % 10 == 0),
            }
        )
    return rows


def predicates():
    return [
        AdaptivePredicate("a", lambda r, _c: r["topic_a"], decay=0.995),
        AdaptivePredicate("b", lambda r, _c: r["topic_b"], decay=0.995),
    ]


def run_plan(make_operator):
    ctx = EvalContext(clock=VirtualClock(start=0.0))
    operator = make_operator(ctx)
    results = sum(1 for _row in operator)
    return ctx.stats.predicate_evaluations, results


def oracle_evaluations(rows):
    """Best per-tuple order with perfect knowledge."""
    evaluations = 0
    for row in rows:
        first = "topic_a" if not row["topic_a"] else "topic_b"
        evaluations += 1
        if row[first]:
            evaluations += 1
    return evaluations


def test_eddy_vs_static_orders(benchmark):
    rows = make_rows()

    def run_all():
        eddy_evals, eddy_results = run_plan(
            lambda ctx: EddyOperator(rows, predicates(), ctx, resort_every=64)
        )
        ab_evals, ab_results = run_plan(
            lambda ctx: StaticConjunction(rows, predicates(), ctx)
        )
        ba_evals, ba_results = run_plan(
            lambda ctx: StaticConjunction(rows, list(reversed(predicates())), ctx)
        )
        return (eddy_evals, eddy_results, ab_evals, ab_results, ba_evals, ba_results)

    eddy_evals, eddy_results, ab_evals, ab_results, ba_evals, ba_results = (
        benchmark.pedantic(run_all, rounds=1, iterations=1)
    )
    oracle = oracle_evaluations(rows)

    print_table(
        "E3 predicate evaluations over a drifting stream "
        f"({N} tuples, 2 predicates, flip at {N // 2})",
        ["plan", "evaluations", "vs oracle", "results"],
        [
            ("eddy (adaptive)", eddy_evals, f"{eddy_evals / oracle:.2f}x", eddy_results),
            ("static a→b", ab_evals, f"{ab_evals / oracle:.2f}x", ab_results),
            ("static b→a", ba_evals, f"{ba_evals / oracle:.2f}x", ba_results),
            ("oracle", oracle, "1.00x", eddy_results),
        ],
    )
    # Same answers everywhere.
    assert eddy_results == ab_results == ba_results
    # The eddy beats both static orders (each wastes a whole phase).
    assert eddy_evals < ab_evals
    assert eddy_evals < ba_evals
    # And sits close to the oracle.
    assert eddy_evals < oracle * 1.15


@pytest.mark.parametrize("resort_every", [16, 64, 256, 1024])
def test_ablation_resort_interval(benchmark, resort_every):
    """Ablation: how often the eddy re-ranks barely matters until the
    interval approaches the phase length."""
    rows = make_rows()
    evals, _results = benchmark.pedantic(
        lambda: run_plan(
            lambda ctx: EddyOperator(
                rows, predicates(), ctx, resort_every=resort_every
            )
        ),
        rounds=1, iterations=1,
    )
    oracle = oracle_evaluations(rows)
    print(f"\nE3-ablation resort_every={resort_every}: "
          f"{evals} evals ({evals / oracle:.2f}x oracle)")
    assert evals < oracle * 1.3
