"""E9 — Stream-processor throughput across operator mixes.

The engine must keep up with the stream it consumes ("view live streaming
results"). This bench measures tuples/second through representative
pipelines over a pre-generated firehose: filter-only, filter+project,
regex matching, windowed aggregation, grouped windowed aggregation, and
an eddy with three predicates.
"""

import pytest

from repro import EngineConfig, TweeQL

from benchmarks.conftest import SEED

PIPELINES = {
    "filter-only": (
        "SELECT text FROM twitter WHERE text contains 'soccer';",
        None,
    ),
    "filter-project-udf": (
        "SELECT lower(text) AS t, length(text) AS n, hour(created_at) AS h "
        "FROM twitter WHERE text contains 'soccer';",
        None,
    ),
    "regex-match": (
        "SELECT text FROM twitter WHERE text matches 'g[oa]+l';",
        None,
    ),
    "windowed-count": (
        "SELECT COUNT(*) AS n FROM twitter WHERE text contains 'soccer' "
        "WINDOW 1 minutes;",
        None,
    ),
    "grouped-avg": (
        "SELECT AVG(followers) AS f, lang FROM twitter "
        "WHERE text contains 'soccer' GROUP BY lang WINDOW 5 minutes;",
        None,
    ),
    "eddy-3-predicates": (
        "SELECT text FROM twitter WHERE text contains 'soccer' "
        "AND followers >= 0 AND length(text) > 10 AND lang = 'en';",
        EngineConfig(use_eddy=True),
    ),
}


@pytest.mark.parametrize("name", list(PIPELINES))
def test_pipeline_throughput(benchmark, soccer, name):
    sql, config = PIPELINES[name]

    def run():
        session = TweeQL.for_scenarios(soccer, config=config, seed=SEED)
        handle = session.query(sql)
        rows = handle.all()
        return rows

    rows = benchmark.pedantic(run, rounds=2, iterations=1)
    assert rows
    # The whole firehose flows through the connection's predicate even when
    # the API filter delivers only a fraction, so throughput is measured
    # against the stream size.
    tuples_per_second = len(soccer) / benchmark.stats.stats.mean
    print(f"\nE9 {name}: {len(soccer)} stream tweets → "
          f"{tuples_per_second:,.0f} tweets/s (wall)")
    # The engine must beat the simulated firehose's real-time rate by far.
    assert tuples_per_second > 10_000


def test_parse_plan_execute_smoke(benchmark, chatter):
    """Fixed small pipeline for regression tracking."""
    def run():
        session = TweeQL.for_scenarios(chatter, seed=SEED)
        return session.query(
            "SELECT COUNT(*) AS n FROM twitter WINDOW 10 minutes;"
        ).all()

    rows = benchmark.pedantic(run, rounds=3, iterations=1)
    assert rows
