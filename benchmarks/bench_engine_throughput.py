"""E9 — Stream-processor throughput across operator mixes.

The engine must keep up with the stream it consumes ("view live streaming
results"). This bench measures tuples/second through representative
pipelines over a pre-generated firehose: filter-only, filter+project,
regex matching, windowed aggregation, grouped windowed aggregation, and
an eddy with three predicates — plus the sharded engine's workers sweep.

E9d writes ``BENCH_throughput.json`` (repo root, or ``$BENCH_OUTPUT``):
rows/second for every batch-size × workers × shard-backend point over a
static in-memory source, plus the two headline speedup measurements —
vectorized-vs-scalar at batch 256 (asserted ≥ 1.5x everywhere) and
process-vs-serial at 4 workers (asserted ≥ 2x only on multi-core hosts
with fork, where forking can actually buy parallelism).
"""

import json
import multiprocessing
import os
import pathlib
import platform
import sys
import time

import pytest

from repro import EngineConfig, TweeQL

from benchmarks.conftest import SEED

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

PIPELINES = {
    "filter-only": (
        "SELECT text FROM twitter WHERE text contains 'soccer';",
        None,
    ),
    "filter-project-udf": (
        "SELECT lower(text) AS t, length(text) AS n, hour(created_at) AS h "
        "FROM twitter WHERE text contains 'soccer';",
        None,
    ),
    "regex-match": (
        "SELECT text FROM twitter WHERE text matches 'g[oa]+l';",
        None,
    ),
    "windowed-count": (
        "SELECT COUNT(*) AS n FROM twitter WHERE text contains 'soccer' "
        "WINDOW 1 minutes;",
        None,
    ),
    "grouped-avg": (
        "SELECT AVG(followers) AS f, lang FROM twitter "
        "WHERE text contains 'soccer' GROUP BY lang WINDOW 5 minutes;",
        None,
    ),
    "eddy-3-predicates": (
        "SELECT text FROM twitter WHERE text contains 'soccer' "
        "AND followers >= 0 AND length(text) > 10 AND lang = 'en';",
        EngineConfig(use_eddy=True),
    ),
}


@pytest.mark.parametrize("name", list(PIPELINES))
def test_pipeline_throughput(benchmark, soccer, name):
    sql, config = PIPELINES[name]

    def run():
        session = TweeQL.for_scenarios(soccer, config=config, seed=SEED)
        handle = session.query(sql)
        rows = handle.all()
        return rows

    rows = benchmark.pedantic(run, rounds=2, iterations=1)
    assert rows
    # The whole firehose flows through the connection's predicate even when
    # the API filter delivers only a fraction, so throughput is measured
    # against the stream size.
    tuples_per_second = len(soccer) / benchmark.stats.stats.mean
    print(f"\nE9 {name}: {len(soccer)} stream tweets → "
          f"{tuples_per_second:,.0f} tweets/s (wall)")
    # The engine must beat the simulated firehose's real-time rate by far.
    assert tuples_per_second > 10_000


def _parallelism_available() -> bool:
    """True only where shard threads can actually run concurrently.

    On a single-core box — or under the GIL — the sharded engine pays
    coordination overhead with no compute to overlap, so the speedup
    assertion would test the hardware, not the engine.
    """
    cores = os.cpu_count() or 1
    gil_enabled = getattr(sys, "_is_gil_enabled", lambda: True)()
    return cores >= 2 and not gil_enabled


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_sharded_throughput_sweep(benchmark, soccer, workers):
    """E9b — the grouped-window pipeline across worker counts.

    Records tuples/second at each worker count; asserts the >= 1.5x
    speedup at 4 workers only when the host can express parallelism.
    """
    sql = (
        "SELECT AVG(followers) AS f, lang FROM twitter "
        "WHERE text contains 'soccer' GROUP BY lang WINDOW 5 minutes;"
    )

    def run():
        session = TweeQL.for_scenarios(
            soccer, config=EngineConfig(workers=workers), seed=SEED
        )
        handle = session.query(sql)
        rows = handle.all()
        if workers > 1:
            explain = handle.explain()
            assert "Exchange" in explain and "Merge" in explain
        return rows

    rows = benchmark.pedantic(run, rounds=2, iterations=1)
    assert rows
    tuples_per_second = len(soccer) / benchmark.stats.stats.mean
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["tuples_per_second"] = round(tuples_per_second)
    print(f"\nE9b workers={workers}: {len(soccer)} stream tweets → "
          f"{tuples_per_second:,.0f} tweets/s (wall)")


def test_sharded_speedup(soccer):
    """The >= 1.5x acceptance criterion, gated on usable parallelism."""
    import time

    sql = (
        "SELECT AVG(followers) AS f, lang FROM twitter "
        "WHERE text contains 'soccer' GROUP BY lang WINDOW 5 minutes;"
    )

    def timed(workers: int) -> float:
        session = TweeQL.for_scenarios(
            soccer, config=EngineConfig(workers=workers), seed=SEED
        )
        start = time.perf_counter()
        session.query(sql).all()
        return time.perf_counter() - start

    serial = timed(1)
    sharded = timed(4)
    speedup = serial / sharded if sharded else float("inf")
    print(f"\nE9b speedup: serial {serial:.2f}s, 4 workers {sharded:.2f}s "
          f"→ {speedup:.2f}x (cores={os.cpu_count()}, "
          f"parallelism_available={_parallelism_available()})")
    if _parallelism_available():
        assert speedup >= 1.5, (
            f"expected >= 1.5x at 4 workers, measured {speedup:.2f}x"
        )


@pytest.mark.parametrize("workers", [1, 4])
@pytest.mark.parametrize("batch_size", [1, 64, 256, 1024])
def test_batch_size_sweep(benchmark, soccer, batch_size, workers):
    """E9c — the select+project pipeline across batch sizes and workers.

    batch_size=1 is the legacy row-at-a-time engine; larger batches
    amortize per-pull dispatch across the pipeline. Records rows/sec so
    the batching speedup lands in the bench trajectory.

    The predicate is deliberately NOT API-eligible (``length(text)`` is
    a function call): with ``contains`` the simulated API filter would
    drop ~99% of the firehose before the engine, and the bench would
    measure the stream simulator instead of operator dispatch.
    """
    sql = (
        "SELECT lower(text) AS t, length(text) AS n, hour(created_at) AS h "
        "FROM twitter WHERE length(text) > 10;"
    )

    def run():
        session = TweeQL.for_scenarios(
            soccer,
            config=EngineConfig(batch_size=batch_size, workers=workers),
            seed=SEED,
        )
        handle = session.query(sql)
        rows = handle.all()
        assert f"Batch: {batch_size} row" in handle.explain()
        return rows

    rows = benchmark.pedantic(run, rounds=2, iterations=1)
    assert rows
    tuples_per_second = len(soccer) / benchmark.stats.stats.mean
    benchmark.extra_info["batch_size"] = batch_size
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["tuples_per_second"] = round(tuples_per_second)
    print(f"\nE9c batch={batch_size} workers={workers}: "
          f"{len(soccer)} stream tweets → "
          f"{tuples_per_second:,.0f} tweets/s (wall)")


def test_batch_speedup(soccer):
    """The >= 1.3x batching acceptance criterion (single worker).

    Unlike the sharded speedup this needs no parallelism gate: batching
    amortizes interpreter dispatch on one thread, so the win survives
    the GIL and single-core hosts. Same non-API-eligible predicate as
    the sweep, for the same reason; the projection is plain columns so
    the measurement is dominated by the dispatch batching amortizes,
    not by per-row UDF evaluation (which costs the same either way).
    """
    import time

    sql = (
        "SELECT text, screen_name, followers FROM twitter "
        "WHERE length(text) > 10;"
    )

    def timed(batch_size: int) -> tuple[float, list]:
        session = TweeQL.for_scenarios(
            soccer, config=EngineConfig(batch_size=batch_size), seed=SEED
        )
        start = time.perf_counter()
        rows = session.query(sql).all()
        return time.perf_counter() - start, rows

    # Interleaved best-of-5: noise (CI neighbours, GC) only ever makes a
    # run slower, so the min of several runs converges on the true cost,
    # and alternating configs keeps a load spike from biasing one side.
    row_at_a_time = batched = float("inf")
    baseline_rows = batched_rows = None
    for _ in range(5):
        t, rows = timed(1)
        row_at_a_time, baseline_rows = min(row_at_a_time, t), rows
        t, rows = timed(256)
        batched, batched_rows = min(batched, t), rows
    assert batched_rows == baseline_rows
    speedup = row_at_a_time / batched if batched else float("inf")
    print(f"\nE9c speedup: batch=1 {row_at_a_time:.2f}s, "
          f"batch=256 {batched:.2f}s → {speedup:.2f}x")
    assert speedup >= 1.3, (
        f"expected >= 1.3x at batch_size=256, measured {speedup:.2f}x"
    )


# ---------------------------------------------------------------------------
# E9d — columnar execution and shard backends (BENCH_throughput.json)
# ---------------------------------------------------------------------------

#: A deterministic in-memory source: no stream simulator, no API filter,
#: so the measurements isolate operator dispatch (the thing the columnar
#: layout and the process exchange change).
_STATIC_N = 60_000
_STATIC_SCHEMA = (
    "tweet_id", "text", "loc", "created_at", "lang", "followers"
)
_STATIC_ROWS = [
    {
        "tweet_id": i,
        "created_at": 1_307_000_000.0 + 0.5 * i,
        "text": ("goal scored " if i % 5 else "nothing ") + f"t{i}",
        "lang": ("en", "es", "pt")[i % 3],
        "followers": (37 * i) % 5000,
        "loc": "London",
    }
    for i in range(_STATIC_N)
]

#: Filter-heavy: seven vectorizable conjuncts over two integer columns,
#: selective enough that output handling stays a small fraction of the
#: work. This is the shape the vectorized path is built for.
_FILTER_HEAVY_SQL = (
    "SELECT tweet_id FROM s WHERE followers > 100 AND followers < 4900 "
    "AND tweet_id > 1000 AND tweet_id < 59000 AND followers <> 2500 "
    "AND tweet_id <> 30000 AND followers > 4000;"
)

#: CPU-bound per row (regex + casefold scan + comparisons): the shape
#: where process workers overlap real compute instead of waiting on I/O.
_CPU_BOUND_SQL = (
    "SELECT tweet_id FROM s WHERE text matches 'g[oa]+l' "
    "AND text CONTAINS 'scored' AND followers > 100 AND tweet_id > 1000;"
)


def _static_session(**config_kwargs):
    session = TweeQL(config=EngineConfig(**config_kwargs))
    session.register_source(
        "s", lambda: iter(_STATIC_ROWS), _STATIC_SCHEMA
    )
    return session


def _timed_run(session, sql, reps=3):
    """Best-of-N wall time for draining one query (min beats noise)."""
    best = float("inf")
    rows = None
    for _ in range(reps):
        start = time.perf_counter()
        handle = session.query(sql)
        rows = handle.all()
        best = min(best, time.perf_counter() - start)
        handle.close()
    return best, rows


@pytest.fixture(scope="module")
def throughput_report():
    """Collects E9d measurements; written as BENCH_throughput.json."""
    report = {
        "host": {
            "cores": os.cpu_count() or 1,
            "python": platform.python_version(),
            "gil_enabled": getattr(sys, "_is_gil_enabled", lambda: True)(),
            "fork_available": HAS_FORK,
        },
        "rows": _STATIC_N,
        "throughput": [],
    }
    yield report
    out = os.environ.get("BENCH_OUTPUT")
    path = (
        pathlib.Path(out)
        if out
        else pathlib.Path(__file__).resolve().parent.parent
        / "BENCH_throughput.json"
    )
    path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"\nE9d wrote {path}")


def test_throughput_matrix(throughput_report):
    """E9d — rows/second per batch-size × workers × backend.

    ``clamp_workers=False`` so the process points exercise the real
    fabric even on small CI hosts (where the planner would otherwise
    fall back to threads — the fallback is measured by the planner
    tests, not here).
    """
    sql = (
        "SELECT text, followers FROM s "
        "WHERE followers > 500 AND text CONTAINS 'goal';"
    )
    expected = None
    for backend in ("thread", "process"):
        if backend == "process" and not HAS_FORK:
            continue
        for workers in (1, 4):
            for batch_size in (1, 64, 256, 1024):
                session = _static_session(
                    batch_size=batch_size,
                    workers=workers,
                    shard_backend=backend,
                    clamp_workers=False,
                )
                seconds, rows = _timed_run(session, sql, reps=2)
                if expected is None:
                    expected = rows
                assert rows == expected, (backend, workers, batch_size)
                throughput_report["throughput"].append({
                    "backend": backend,
                    "workers": workers,
                    "batch_size": batch_size,
                    "seconds": round(seconds, 4),
                    "rows_per_second": round(_STATIC_N / seconds),
                })
    fastest = max(
        throughput_report["throughput"], key=lambda p: p["rows_per_second"]
    )
    print(f"\nE9d fastest point: {fastest}")


def test_vectorized_speedup(throughput_report):
    """The ≥ 1.5x vectorized-over-scalar acceptance criterion.

    Batch 256 both sides; the only difference is ``columnar`` — same
    planner, same operators, same per-conjunct filter stages. Asserted
    unconditionally: vectorization amortizes interpreter dispatch, so
    the win does not depend on cores or the GIL.
    """
    scalar = _static_session(batch_size=256, columnar=False)
    columnar = _static_session(batch_size=256, columnar=True)
    assert "[vectorized 7/7]" in columnar.explain(_FILTER_HEAVY_SQL)
    # Interleaved best-of-5 (noise only ever slows a run down).
    scalar_s = columnar_s = float("inf")
    scalar_rows = columnar_rows = None
    for _ in range(5):
        t, rows = _timed_run(scalar, _FILTER_HEAVY_SQL, reps=1)
        scalar_s, scalar_rows = min(scalar_s, t), rows
        t, rows = _timed_run(columnar, _FILTER_HEAVY_SQL, reps=1)
        columnar_s, columnar_rows = min(columnar_s, t), rows
    assert columnar_rows == scalar_rows
    speedup = scalar_s / columnar_s if columnar_s else float("inf")
    throughput_report["vectorized"] = {
        "sql": _FILTER_HEAVY_SQL,
        "batch_size": 256,
        "scalar_seconds": round(scalar_s, 4),
        "columnar_seconds": round(columnar_s, 4),
        "speedup": round(speedup, 2),
        "asserted": True,
    }
    print(f"\nE9d vectorized: scalar {scalar_s*1000:.1f}ms, "
          f"columnar {columnar_s*1000:.1f}ms → {speedup:.2f}x")
    assert speedup >= 1.5, (
        f"expected >= 1.5x vectorized at batch 256, measured {speedup:.2f}x"
    )


def test_process_backend_speedup(throughput_report):
    """The ≥ 2x process-over-serial acceptance criterion.

    Four forked workers against the serial engine on a CPU-bound query.
    Asserted only where forking can win: ≥ 2 cores and a fork start
    method. Elsewhere (single-core CI, spawn-only platforms) the point
    is still measured and recorded — the JSON says what the host was.
    """
    if not HAS_FORK:
        pytest.skip("process backend requires the fork start method")
    serial = _static_session(batch_size=256)
    process = _static_session(
        batch_size=256, workers=4, shard_backend="process",
        clamp_workers=False,
    )
    assert "[process backend]" in process.explain(_CPU_BOUND_SQL)
    serial_s = process_s = float("inf")
    serial_rows = process_rows = None
    for _ in range(3):
        t, rows = _timed_run(serial, _CPU_BOUND_SQL, reps=1)
        serial_s, serial_rows = min(serial_s, t), rows
        t, rows = _timed_run(process, _CPU_BOUND_SQL, reps=1)
        process_s, process_rows = min(process_s, t), rows
    assert process_rows == serial_rows
    speedup = serial_s / process_s if process_s else float("inf")
    cores = os.cpu_count() or 1
    asserted = cores >= 2
    throughput_report["process_speedup"] = {
        "sql": _CPU_BOUND_SQL,
        "workers": 4,
        "serial_seconds": round(serial_s, 4),
        "process_seconds": round(process_s, 4),
        "speedup": round(speedup, 2),
        "asserted": asserted,
    }
    print(f"\nE9d process: serial {serial_s*1000:.1f}ms, "
          f"4 forked workers {process_s*1000:.1f}ms → {speedup:.2f}x "
          f"(cores={cores}, asserted={asserted})")
    if asserted:
        assert speedup >= 2.0, (
            f"expected >= 2x with 4 process workers, measured {speedup:.2f}x"
        )


def test_parse_plan_execute_smoke(benchmark, chatter):
    """Fixed small pipeline for regression tracking."""
    def run():
        session = TweeQL.for_scenarios(chatter, seed=SEED)
        return session.query(
            "SELECT COUNT(*) AS n FROM twitter WINDOW 10 minutes;"
        ).all()

    rows = benchmark.pedantic(run, rounds=3, iterations=1)
    assert rows
