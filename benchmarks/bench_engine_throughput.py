"""E9 — Stream-processor throughput across operator mixes.

The engine must keep up with the stream it consumes ("view live streaming
results"). This bench measures tuples/second through representative
pipelines over a pre-generated firehose: filter-only, filter+project,
regex matching, windowed aggregation, grouped windowed aggregation, and
an eddy with three predicates — plus the sharded engine's workers sweep.
"""

import os
import sys

import pytest

from repro import EngineConfig, TweeQL

from benchmarks.conftest import SEED

PIPELINES = {
    "filter-only": (
        "SELECT text FROM twitter WHERE text contains 'soccer';",
        None,
    ),
    "filter-project-udf": (
        "SELECT lower(text) AS t, length(text) AS n, hour(created_at) AS h "
        "FROM twitter WHERE text contains 'soccer';",
        None,
    ),
    "regex-match": (
        "SELECT text FROM twitter WHERE text matches 'g[oa]+l';",
        None,
    ),
    "windowed-count": (
        "SELECT COUNT(*) AS n FROM twitter WHERE text contains 'soccer' "
        "WINDOW 1 minutes;",
        None,
    ),
    "grouped-avg": (
        "SELECT AVG(followers) AS f, lang FROM twitter "
        "WHERE text contains 'soccer' GROUP BY lang WINDOW 5 minutes;",
        None,
    ),
    "eddy-3-predicates": (
        "SELECT text FROM twitter WHERE text contains 'soccer' "
        "AND followers >= 0 AND length(text) > 10 AND lang = 'en';",
        EngineConfig(use_eddy=True),
    ),
}


@pytest.mark.parametrize("name", list(PIPELINES))
def test_pipeline_throughput(benchmark, soccer, name):
    sql, config = PIPELINES[name]

    def run():
        session = TweeQL.for_scenarios(soccer, config=config, seed=SEED)
        handle = session.query(sql)
        rows = handle.all()
        return rows

    rows = benchmark.pedantic(run, rounds=2, iterations=1)
    assert rows
    # The whole firehose flows through the connection's predicate even when
    # the API filter delivers only a fraction, so throughput is measured
    # against the stream size.
    tuples_per_second = len(soccer) / benchmark.stats.stats.mean
    print(f"\nE9 {name}: {len(soccer)} stream tweets → "
          f"{tuples_per_second:,.0f} tweets/s (wall)")
    # The engine must beat the simulated firehose's real-time rate by far.
    assert tuples_per_second > 10_000


def _parallelism_available() -> bool:
    """True only where shard threads can actually run concurrently.

    On a single-core box — or under the GIL — the sharded engine pays
    coordination overhead with no compute to overlap, so the speedup
    assertion would test the hardware, not the engine.
    """
    cores = os.cpu_count() or 1
    gil_enabled = getattr(sys, "_is_gil_enabled", lambda: True)()
    return cores >= 2 and not gil_enabled


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_sharded_throughput_sweep(benchmark, soccer, workers):
    """E9b — the grouped-window pipeline across worker counts.

    Records tuples/second at each worker count; asserts the >= 1.5x
    speedup at 4 workers only when the host can express parallelism.
    """
    sql = (
        "SELECT AVG(followers) AS f, lang FROM twitter "
        "WHERE text contains 'soccer' GROUP BY lang WINDOW 5 minutes;"
    )

    def run():
        session = TweeQL.for_scenarios(
            soccer, config=EngineConfig(workers=workers), seed=SEED
        )
        handle = session.query(sql)
        rows = handle.all()
        if workers > 1:
            explain = handle.explain()
            assert "Exchange" in explain and "Merge" in explain
        return rows

    rows = benchmark.pedantic(run, rounds=2, iterations=1)
    assert rows
    tuples_per_second = len(soccer) / benchmark.stats.stats.mean
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["tuples_per_second"] = round(tuples_per_second)
    print(f"\nE9b workers={workers}: {len(soccer)} stream tweets → "
          f"{tuples_per_second:,.0f} tweets/s (wall)")


def test_sharded_speedup(soccer):
    """The >= 1.5x acceptance criterion, gated on usable parallelism."""
    import time

    sql = (
        "SELECT AVG(followers) AS f, lang FROM twitter "
        "WHERE text contains 'soccer' GROUP BY lang WINDOW 5 minutes;"
    )

    def timed(workers: int) -> float:
        session = TweeQL.for_scenarios(
            soccer, config=EngineConfig(workers=workers), seed=SEED
        )
        start = time.perf_counter()
        session.query(sql).all()
        return time.perf_counter() - start

    serial = timed(1)
    sharded = timed(4)
    speedup = serial / sharded if sharded else float("inf")
    print(f"\nE9b speedup: serial {serial:.2f}s, 4 workers {sharded:.2f}s "
          f"→ {speedup:.2f}x (cores={os.cpu_count()}, "
          f"parallelism_available={_parallelism_available()})")
    if _parallelism_available():
        assert speedup >= 1.5, (
            f"expected >= 1.5x at 4 workers, measured {speedup:.2f}x"
        )


@pytest.mark.parametrize("workers", [1, 4])
@pytest.mark.parametrize("batch_size", [1, 64, 256, 1024])
def test_batch_size_sweep(benchmark, soccer, batch_size, workers):
    """E9c — the select+project pipeline across batch sizes and workers.

    batch_size=1 is the legacy row-at-a-time engine; larger batches
    amortize per-pull dispatch across the pipeline. Records rows/sec so
    the batching speedup lands in the bench trajectory.

    The predicate is deliberately NOT API-eligible (``length(text)`` is
    a function call): with ``contains`` the simulated API filter would
    drop ~99% of the firehose before the engine, and the bench would
    measure the stream simulator instead of operator dispatch.
    """
    sql = (
        "SELECT lower(text) AS t, length(text) AS n, hour(created_at) AS h "
        "FROM twitter WHERE length(text) > 10;"
    )

    def run():
        session = TweeQL.for_scenarios(
            soccer,
            config=EngineConfig(batch_size=batch_size, workers=workers),
            seed=SEED,
        )
        handle = session.query(sql)
        rows = handle.all()
        assert f"Batch: {batch_size} row" in handle.explain()
        return rows

    rows = benchmark.pedantic(run, rounds=2, iterations=1)
    assert rows
    tuples_per_second = len(soccer) / benchmark.stats.stats.mean
    benchmark.extra_info["batch_size"] = batch_size
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["tuples_per_second"] = round(tuples_per_second)
    print(f"\nE9c batch={batch_size} workers={workers}: "
          f"{len(soccer)} stream tweets → "
          f"{tuples_per_second:,.0f} tweets/s (wall)")


def test_batch_speedup(soccer):
    """The >= 1.3x batching acceptance criterion (single worker).

    Unlike the sharded speedup this needs no parallelism gate: batching
    amortizes interpreter dispatch on one thread, so the win survives
    the GIL and single-core hosts. Same non-API-eligible predicate as
    the sweep, for the same reason; the projection is plain columns so
    the measurement is dominated by the dispatch batching amortizes,
    not by per-row UDF evaluation (which costs the same either way).
    """
    import time

    sql = (
        "SELECT text, screen_name, followers FROM twitter "
        "WHERE length(text) > 10;"
    )

    def timed(batch_size: int) -> tuple[float, list]:
        session = TweeQL.for_scenarios(
            soccer, config=EngineConfig(batch_size=batch_size), seed=SEED
        )
        start = time.perf_counter()
        rows = session.query(sql).all()
        return time.perf_counter() - start, rows

    # Interleaved best-of-5: noise (CI neighbours, GC) only ever makes a
    # run slower, so the min of several runs converges on the true cost,
    # and alternating configs keeps a load spike from biasing one side.
    row_at_a_time = batched = float("inf")
    baseline_rows = batched_rows = None
    for _ in range(5):
        t, rows = timed(1)
        row_at_a_time, baseline_rows = min(row_at_a_time, t), rows
        t, rows = timed(256)
        batched, batched_rows = min(batched, t), rows
    assert batched_rows == baseline_rows
    speedup = row_at_a_time / batched if batched else float("inf")
    print(f"\nE9c speedup: batch=1 {row_at_a_time:.2f}s, "
          f"batch=256 {batched:.2f}s → {speedup:.2f}x")
    assert speedup >= 1.3, (
        f"expected >= 1.3x at batch_size=256, measured {speedup:.2f}x"
    )


def test_parse_plan_execute_smoke(benchmark, chatter):
    """Fixed small pipeline for regression tracking."""
    def run():
        session = TweeQL.for_scenarios(chatter, seed=SEED)
        return session.query(
            "SELECT COUNT(*) AS n FROM twitter WINDOW 10 minutes;"
        ).all()

    rows = benchmark.pedantic(run, rounds=3, iterations=1)
    assert rows
