"""F2 — the resilience layer: fault-free overhead and recovery throughput.

Two claims to measure:

1. **Overhead**: with no faults injected, wrapping the services in
   ``ResilientService`` (retries enabled but never used) costs < 5 % in
   wall-clock execution time and changes nothing — same rows, same
   request counts, same virtual service time.
2. **Recovery**: at ``failure_rate = 0.3`` (per-key bursts) with a retry
   budget covering the worst burst, the engine emits the full baseline
   output; the price is the retried requests and their virtual backoff,
   which the bench reports.
"""

import statistics
import time

from repro import EngineConfig, TweeQL
from repro.engine.resilience import FaultPlan, ServiceFaultModel, StreamDrop
from repro.geo.service import LatencyModel

from benchmarks.conftest import SEED, print_table

SQL = (
    "SELECT sentiment(text) AS s, latitude(loc) AS lat FROM twitter "
    "WHERE text contains 'soccer' LIMIT 600;"
)

FAULT_PLAN = FaultPlan(
    seed=SEED,
    services={
        "*": ServiceFaultModel(
            failure_rate=0.3, max_burst=2, retry_after_seconds=0.2
        )
    },
    stream_drops=(StreamDrop(after_delivered=100, gap=30),),
)


def run_once(soccer, retries=0, fault_plan=None):
    config = EngineConfig(
        retries=retries,
        fault_plan=fault_plan,
        geocode_latency=LatencyModel(0.2, sigma=0.0),
    )
    session = TweeQL.for_scenarios(soccer, config=config, seed=SEED)
    started = time.perf_counter()
    rows = session.query(SQL).all()
    elapsed = time.perf_counter() - started
    resilient = session.geocode_resilient
    return {
        "rows": rows,
        "elapsed": elapsed,
        "requests": session.geocode_service.stats.requests,
        "service_failures": session.geocode_service.stats.failures,
        "retries": resilient.resilience.retries if resilient else 0,
        "recovered": resilient.resilience.recovered if resilient else 0,
        "giveups": resilient.resilience.giveups if resilient else 0,
        "backoff": resilient.resilience.backoff_seconds if resilient else 0.0,
    }


def median_elapsed(soccer, rounds=5, **kwargs):
    return statistics.median(
        run_once(soccer, **kwargs)["elapsed"] for _ in range(rounds)
    )


def test_fault_free_overhead(benchmark, soccer):
    """The retry wrapper is free when nothing fails."""
    results = {}

    def run():
        results["bare"] = run_once(soccer, retries=0)
        results["wrapped"] = run_once(soccer, retries=3)
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)

    bare, wrapped = results["bare"], results["wrapped"]
    # Identical output and identical service interaction.
    assert wrapped["rows"] == bare["rows"]
    assert wrapped["requests"] == bare["requests"]
    assert wrapped["retries"] == 0

    # Wall-clock overhead, median of 5 to damp scheduler noise.
    base = median_elapsed(soccer, retries=0)
    layered = median_elapsed(soccer, retries=3)
    overhead = (layered - base) / base
    print_table(
        "F2 fault-free retry-layer overhead (600 rows, median of 5)",
        ["variant", "median wall s", "overhead"],
        [
            ("bare", f"{base:.3f}", "—"),
            ("wrapped (retries=3)", f"{layered:.3f}", f"{overhead:+.1%}"),
        ],
    )
    assert overhead < 0.05, f"retry layer costs {overhead:.1%} fault-free"


def test_recovery_throughput_at_failure_rate_03(benchmark, soccer):
    """failure_rate=0.3: every fault is ridden out, output is unchanged."""
    results = {}

    def run():
        results["baseline"] = run_once(soccer, retries=0)
        results["faulted"] = run_once(
            soccer, retries=3, fault_plan=FAULT_PLAN
        )
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)

    baseline, faulted = results["baseline"], results["faulted"]
    assert faulted["rows"] == baseline["rows"]
    assert faulted["service_failures"] > 0
    assert faulted["recovered"] > 0
    assert faulted["giveups"] == 0

    throughput = len(faulted["rows"]) / faulted["elapsed"]
    print_table(
        "F2 recovery under failure_rate=0.3 (per-key bursts ≤ 2, "
        "one 30-tweet stream gap)",
        ["variant", "rows", "requests", "failures", "retries", "recovered",
         "backoff (virtual s)", "rows/wall-s"],
        [
            (
                "baseline",
                len(baseline["rows"]),
                baseline["requests"],
                baseline["service_failures"],
                0, 0, "0.0",
                f"{len(baseline['rows']) / baseline['elapsed']:.0f}",
            ),
            (
                "faulted+retries",
                len(faulted["rows"]),
                faulted["requests"],
                faulted["service_failures"],
                faulted["retries"],
                faulted["recovered"],
                f"{faulted['backoff']:.1f}",
                f"{throughput:.0f}",
            ),
        ],
    )
    # Recovery costs wall time but not completeness: throughput stays
    # within the same order of magnitude as the clean run.
    clean_throughput = len(baseline["rows"]) / baseline["elapsed"]
    assert throughput > clean_throughput * 0.3
