"""E4 — Uneven aggregate groups: confidence-triggered vs fixed windows.

The paper's Tokyo/Cape Town argument: a fixed 3-hour window oversamples
dense regions (stale averages over far more data than needed) and
undersamples sparse ones (unreliable averages). The CONTROL-style
construct emits each group when its AVG's confidence interval is tight.

Workload: regional average sentiment over a geo-skewed stream. Reported
per strategy and per region class (dense = Tokyo-like, sparse = Cape
Town-like):

- freshness: mean delay from a group's first tweet to its emission,
- reliability: fraction of emitted records whose sample mean is within
  the CI target of the region's true mean.

Expected shape: fixed windows are slower for dense groups and unreliable
for sparse ones; confidence emission is fresh AND reliable for dense,
and explicitly flags sparse groups (age-outs) instead of silently
emitting noise.
"""

import random

import pytest

from repro.clock import VirtualClock
from repro.engine.confidence import ConfidenceAggregateOperator, ConfidencePolicy
from repro.engine.types import EvalContext

from benchmarks.conftest import print_table

#: (region, tweets/hour, true mean sentiment)
REGIONS = (
    ("tokyo", 3000.0, +0.30),
    ("london", 900.0, +0.10),
    ("boston", 250.0, -0.05),
    ("capetown", 25.0, +0.20),
)

HOURS = 6.0
CI_TARGET = 0.08


def make_stream(seed=7):
    rng = random.Random(seed)
    rows = []
    for region, rate, mean in REGIONS:
        t = 0.0
        while t < HOURS * 3600.0:
            t += rng.expovariate(rate / 3600.0)
            if t >= HOURS * 3600.0:
                break
            rows.append(
                {
                    "created_at": t,
                    "region": region,
                    # Sentiment labels are -1/0/+1 draws around the mean.
                    "value": max(-1, min(1, round(rng.gauss(mean, 0.9)))),
                }
            )
    rows.sort(key=lambda r: r["created_at"])
    return rows


def fixed_window_emissions(rows, window_seconds):
    """Classic tumbling window GROUP BY region."""
    emissions = []
    current: dict[str, list] = {}
    window_start = 0.0
    first_seen: dict[str, float] = {}

    def flush(end_time):
        for region, values in current.items():
            if values:
                emissions.append(
                    {
                        "region": region,
                        "mean": sum(values) / len(values),
                        "n": len(values),
                        "delay": end_time - first_seen[region],
                    }
                )
        current.clear()
        first_seen.clear()

    for row in rows:
        while row["created_at"] >= window_start + window_seconds:
            flush(window_start + window_seconds)
            window_start += window_seconds
        current.setdefault(row["region"], []).append(row["value"])
        first_seen.setdefault(row["region"], row["created_at"])
    flush(window_start + window_seconds)
    return emissions


def count_window_emissions(rows, window_count):
    """The §2 strawman: emit each group every ``window_count`` of *its own*
    tweets (per-group count windows — the most charitable reading)."""
    emissions = []
    buckets: dict[str, list] = {}
    first_seen: dict[str, float] = {}
    for row in rows:
        region = row["region"]
        bucket = buckets.setdefault(region, [])
        first_seen.setdefault(region, row["created_at"])
        bucket.append(row["value"])
        if len(bucket) >= window_count:
            emissions.append(
                {
                    "region": region,
                    "mean": sum(bucket) / len(bucket),
                    "n": len(bucket),
                    "delay": row["created_at"] - first_seen.pop(region),
                }
            )
            buckets[region] = []
    return emissions


def confidence_emissions(rows, max_age):
    ctx = EvalContext(clock=VirtualClock(start=0.0))
    operator = ConfidenceAggregateOperator(
        rows,
        group_evals=[lambda r, _c: r["region"]],
        value_eval=lambda r, _c: r["value"],
        output_items=[
            ("region", lambda r, _c: r["region"]),
            ("mean", lambda r, _c: r["__agg0"]),
        ],
        ctx=ctx,
        policy=ConfidencePolicy(
            ci_halfwidth=CI_TARGET, max_age_seconds=max_age, min_count=5
        ),
    )
    emissions = []
    for out in operator:
        emissions.append(
            {
                "region": out["region"],
                "mean": out["mean"],
                "n": out["n"],
                "delay": out["created_at"] - out["group_started"],
                "reason": out["emit_reason"],
            }
        )
    return emissions


def summarize(emissions, true_means):
    rows = []
    for region, _rate, true_mean in REGIONS:
        mine = [e for e in emissions if e["region"] == region]
        if not mine:
            rows.append((region, 0, "-", "-", "-"))
            continue
        mean_delay = sum(e["delay"] for e in mine) / len(mine)
        reliable = sum(
            1 for e in mine if abs(e["mean"] - true_mean) <= 2 * CI_TARGET
        ) / len(mine)
        mean_n = sum(e["n"] for e in mine) / len(mine)
        rows.append(
            (
                region,
                len(mine),
                f"{mean_delay / 60:.0f} min",
                f"{mean_n:.0f}",
                f"{reliable:.0%}",
            )
        )
    return rows


def test_confidence_vs_fixed_windows(benchmark):
    rows = make_stream()
    true_means = {region: mean for region, _rate, mean in REGIONS}

    result = {}

    def run():
        result["fixed"] = fixed_window_emissions(rows, 3 * 3600.0)
        result["count"] = count_window_emissions(rows, window_count=300)
        result["confidence"] = confidence_emissions(rows, max_age=3 * 3600.0)
        return result

    benchmark.pedantic(run, rounds=1, iterations=1)

    count_rows = summarize(result["count"], true_means)
    print_table(
        "E4 fixed 300-tweet count window (region, emissions, mean delay, "
        "mean n, within 2x CI target)",
        ["region", "emissions", "delay", "n", "reliable"],
        count_rows,
    )
    # The paper's critique of count windows: sparse groups take ages to
    # fill (stale results). Cape Town never fills a window, or takes hours.
    cape_count = [e for e in result["count"] if e["region"] == "capetown"]
    if cape_count:
        assert min(e["delay"] for e in cape_count) > 3600.0
    else:
        print("capetown never filled a 300-tweet window in 6 hours "
              "(the staleness failure §2 describes)")

    fixed_rows = summarize(result["fixed"], true_means)
    conf_rows = summarize(
        [e for e in result["confidence"]], true_means
    )
    print_table(
        "E4 fixed 3-hour window (region, emissions, mean delay, mean n, "
        "within 2x CI target)",
        ["region", "emissions", "delay", "n", "reliable"],
        fixed_rows,
    )
    print_table(
        "E4 confidence-triggered (same columns)",
        ["region", "emissions", "delay", "n", "reliable"],
        conf_rows,
    )
    flagged = [e for e in result["confidence"] if e["reason"] != "confidence"]
    print(f"confidence strategy flagged {len(flagged)} low-confidence "
          f"emissions (age/eos) instead of reporting them silently")

    # Shape 1: dense region (tokyo) emits far sooner than the 3 h window.
    conf_tokyo = [e for e in result["confidence"] if e["region"] == "tokyo"]
    fixed_tokyo = [e for e in result["fixed"] if e["region"] == "tokyo"]
    mean_delay = lambda es: sum(e["delay"] for e in es) / len(es)
    assert mean_delay(conf_tokyo) < mean_delay(fixed_tokyo) / 4

    # Shape 2: for the sparse region, fixed windows emit records whose n is
    # tiny; confidence-triggered marks them (reason != 'confidence').
    fixed_cape = [e for e in result["fixed"] if e["region"] == "capetown"]
    conf_cape = [e for e in result["confidence"] if e["region"] == "capetown"]
    assert min(e["n"] for e in fixed_cape) < 80  # undersampled silently
    assert all(e["reason"] != "confidence" or e["n"] >= 5 for e in conf_cape)

    # Shape 3: confidence-emitted records hit the CI target by construction.
    confident = [e for e in result["confidence"] if e["reason"] == "confidence"]
    true_hit = sum(
        1 for e in confident
        if abs(e["mean"] - true_means[e["region"]]) <= 2 * CI_TARGET
    )
    assert true_hit / len(confident) > 0.85


@pytest.mark.parametrize("ci", [0.04, 0.08, 0.16])
def test_ablation_ci_width(benchmark, ci):
    """Ablation: tighter targets trade freshness for precision."""
    rows = make_stream()

    def run():
        ctx = EvalContext(clock=VirtualClock(start=0.0))
        operator = ConfidenceAggregateOperator(
            rows,
            group_evals=[lambda r, _c: r["region"]],
            value_eval=lambda r, _c: r["value"],
            output_items=[("region", lambda r, _c: r["region"])],
            ctx=ctx,
            policy=ConfidencePolicy(ci_halfwidth=ci, max_age_seconds=None),
        )
        return [o for o in operator if o["emit_reason"] == "confidence"]

    emissions = benchmark.pedantic(run, rounds=1, iterations=1)
    tokyo = [e for e in emissions if e["region"] == "tokyo"]
    mean_n = sum(e["n"] for e in tokyo) / max(1, len(tokyo))
    print(f"\nE4-ablation ci={ci}: tokyo emissions={len(tokyo)} mean n={mean_n:.0f}")
    assert tokyo
