"""Shared benchmark fixtures.

Scenario generation dominates benchmark setup cost, so scenarios are
session-scoped and shared across benchmark files. Every benchmark prints
the rows/series the corresponding paper artifact shows (run with ``-s`` to
see them); EXPERIMENTS.md records a captured copy.
"""

from __future__ import annotations

import pytest

from repro.twitter.users import UserPopulation
from repro.twitter.workloads import (
    background_chatter,
    earthquake_scenario,
    news_month_scenario,
    soccer_match_scenario,
)

SEED = 2011


@pytest.fixture(scope="session")
def population():
    return UserPopulation(size=3000, seed=SEED)


@pytest.fixture(scope="session")
def soccer(population):
    """The Figure-1 match at full intensity (~40k tweets)."""
    return soccer_match_scenario(seed=SEED, population=population)


@pytest.fixture(scope="session")
def quakes(population):
    return earthquake_scenario(seed=SEED, population=population, intensity=0.5)


@pytest.fixture(scope="session")
def news(population):
    return news_month_scenario(
        seed=SEED, population=population, days=10, n_stories=4, intensity=0.3
    )


@pytest.fixture(scope="session")
def chatter(population):
    return background_chatter(
        seed=SEED, population=population, duration=3600.0, rate=5.0
    )


def print_table(title: str, headers: list[str], rows: list[tuple]) -> None:
    """Render one experiment's result table to stdout."""
    print(f"\n## {title}")
    widths = [
        max(len(str(h)), max((len(str(r[i])) for r in rows), default=0))
        for i, h in enumerate(headers)
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print(line)
    print("  ".join("-" * w for w in widths))
    for row in rows:
        print("  ".join(str(v).ljust(w) for v, w in zip(row, widths)))
