"""E5 — High-latency operators: caching, batching, async iteration.

The paper: web-service calls "optimistically take hundreds of milliseconds
apiece" and the engine responds with caching, batching, and asynchronous
iteration (WSQ/DSQ). This bench runs the same geocode-heavy query under
the four modes and reports *virtual* stall time (what a wall clock would
have measured against the real service), plus requests, batch round
trips, and cache hits.

Expected shape: blocking ≫ cached ≫ batched ≈ async in stall time; the
async pool bounds stalls by its depth; the advantage grows with the Zipf
repetition of profile locations.
"""

import pytest

from repro import EngineConfig, TweeQL
from repro.geo.service import LatencyModel

from benchmarks.conftest import SEED, print_table

SQL = (
    "SELECT latitude(loc) AS lat, longitude(loc) AS lon FROM twitter "
    "WHERE text contains 'soccer' LIMIT 400;"
)

MODES = ("blocking", "cached", "batched", "async")


def run_mode(soccer, mode, cache_capacity=10_000, pool_depth=8, lookahead=64,
             partial_results=False):
    config = EngineConfig(
        latency_mode=mode,
        cache_capacity=cache_capacity,
        pool_depth=pool_depth,
        lookahead=lookahead,
        partial_results=partial_results,
        geocode_latency=LatencyModel(0.3, sigma=0.25),
    )
    session = TweeQL.for_scenarios(soccer, config=config, seed=SEED)
    rows = session.query(SQL).all()
    managed = session.geocode_managed
    service = session.geocode_service
    return {
        "rows": len(rows),
        "lats": [row["lat"] for row in rows],
        "stall_seconds": managed.stats.stall_seconds,
        "requests": service.stats.requests,
        "batch_requests": service.stats.batch_requests,
        "cache_hits": managed.stats.cache_hits,
        "service_busy": service.stats.virtual_seconds_busy,
        "partials": managed.stats.partials,
        "nulls": sum(1 for row in rows if row["lat"] is None),
    }


def test_latency_modes(benchmark, soccer):
    results = {}

    def run_all():
        for mode in MODES:
            results[mode] = run_mode(soccer, mode)
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    print_table(
        "E5 geocode UDF under the four latency strategies (400 tweets, "
        "~300 ms/virtual call)",
        ["mode", "stall (virtual s)", "requests", "batch RTs", "cache hits"],
        [
            (
                mode,
                f"{r['stall_seconds']:.1f}",
                r["requests"],
                r["batch_requests"],
                r["cache_hits"],
            )
            for mode, r in results.items()
        ],
    )

    # All four modes compute identical results.
    for mode in MODES[1:]:
        assert results[mode]["lats"] == results["blocking"]["lats"]

    stall = {mode: r["stall_seconds"] for mode, r in results.items()}
    # Caching removes repeated-location round trips.
    assert stall["cached"] < stall["blocking"] * 0.6
    # Batching amortizes round trips below even the cached cost.
    assert stall["batched"] < stall["cached"] * 0.25
    # Async overlaps requests with stream time: order-of-magnitude saving.
    assert stall["async"] < stall["blocking"] * 0.1


@pytest.mark.parametrize("pool_depth", [1, 4, 16])
def test_ablation_async_pool_depth(benchmark, soccer, pool_depth):
    result = benchmark.pedantic(
        lambda: run_mode(soccer, "async", pool_depth=pool_depth),
        rounds=1, iterations=1,
    )
    print(f"\nE5-ablation pool_depth={pool_depth}: "
          f"stall={result['stall_seconds']:.1f}s "
          f"requests={result['requests']}")
    assert result["rows"] == 400


@pytest.mark.parametrize("cache_capacity", [8, 64, 10_000])
def test_ablation_cache_capacity(benchmark, soccer, cache_capacity):
    result = benchmark.pedantic(
        lambda: run_mode(soccer, "cached", cache_capacity=cache_capacity),
        rounds=1, iterations=1,
    )
    print(f"\nE5-ablation cache_capacity={cache_capacity}: "
          f"stall={result['stall_seconds']:.1f}s hits={result['cache_hits']}")
    assert result["rows"] == 400


def test_partial_results_tradeoff(benchmark, soccer):
    """Ablation: Raman & Hellerstein-style partial results — zero stalls
    in exchange for NULLs on values still in flight. The paper names this
    data model as the complement of asynchronous iteration."""
    results = {}

    def run():
        results["stalling"] = run_mode(soccer, "async", pool_depth=2)
        results["partial"] = run_mode(
            soccer, "async", pool_depth=2, partial_results=True
        )
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "E5 partial-results ablation (async, pool depth 2)",
        ["variant", "stall (virtual s)", "NULL rows", "partials"],
        [
            (
                name,
                f"{r['stall_seconds']:.1f}",
                r["nulls"],
                r["partials"],
            )
            for name, r in results.items()
        ],
    )
    assert results["partial"]["stall_seconds"] < results["stalling"]["stall_seconds"]
    assert results["partial"]["nulls"] >= results["stalling"]["nulls"]


def test_pool_depth_ordering(soccer, benchmark):
    """Deeper pools stall less (until the lookahead window is the limit)."""
    stalls = {}

    def run():
        for depth in (1, 4, 16):
            stalls[depth] = run_mode(soccer, "async", pool_depth=depth)[
                "stall_seconds"
            ]
        return stalls

    benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nE5 pool-depth stalls: {stalls}")
    assert stalls[16] <= stalls[4] <= stalls[1]
