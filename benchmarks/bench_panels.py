"""E7 — The dashboard panels against ground truth.

§3.2/3.3's panels, each scored against what the generator actually did:

- Relevant Tweets: ranked tweets are more on-topic than a random sample.
- Overall Sentiment: the pie tracks the generator's true sentiment mix,
  and recall correction moves it closer.
- Popular Links: the streamed top-3 equals the exact top-3.
- Tweet Map: markers cluster where the users actually live.
"""

import random

import pytest

from repro import TweeQL
from repro.geo.bbox import named_box
from repro.twitinfo import TwitInfoApp

from benchmarks.conftest import SEED, print_table


@pytest.fixture(scope="module")
def tracked(soccer):
    session = TweeQL.for_scenarios(soccer, seed=SEED)
    app = TwitInfoApp(session)
    event = app.track(
        "Soccer", soccer.keywords, start=soccer.start, end=soccer.end
    )
    return session, app, event, soccer


def test_relevant_tweets_quality(benchmark, tracked):
    _session, _app, event, soccer = tracked
    final = soccer.truth.events[-1]
    peak = min(event.peaks, key=lambda p: abs(p.apex_time - final.time))

    panel = benchmark.pedantic(
        lambda: event.relevant(peak.start, peak.end, extra_terms=peak.terms),
        rounds=3, iterations=1,
    )
    window_tweets = list(event.log.scan(peak.start, peak.end))
    rng = random.Random(1)
    sample = rng.sample(window_tweets, min(10, len(window_tweets)))

    def on_topic(tweets):
        return sum(
            1 for t in tweets if "tevez" in t.text.lower() or "3-0" in t.text
        ) / len(tweets)

    ranked_rate = on_topic([entry.tweet for entry in panel])
    random_rate = on_topic(sample)
    print(f"\nE7 relevant tweets on-topic: ranked={ranked_rate:.0%} "
          f"random={random_rate:.0%}")
    assert ranked_rate >= random_rate
    assert ranked_rate >= 0.8


def test_sentiment_pie_tracks_truth(benchmark, tracked):
    session, _app, event, _soccer = tracked
    summary = benchmark.pedantic(event.sentiment_summary, rounds=3, iterations=1)

    truth_positive = truth_negative = 0
    for tweet in event.log.scan():
        label = tweet.ground_truth["sentiment"]
        if label > 0:
            truth_positive += 1
        elif label < 0:
            truth_negative += 1
    true_share = truth_positive / (truth_positive + truth_negative)
    observed_share, _neg = summary.proportions()

    # Calibrate on a small "annotator sample" of event tweets (TwitInfo
    # calibrated against hand-labeled tweets; the generator's ground truth
    # plays the annotators' role here), then invert the confusion matrix.
    from repro.nlp.corpus import LabeledTweet

    annotated = [
        LabeledTweet(text=t.text, label=t.ground_truth["sentiment"])
        for t in list(event.log.scan())[:400]
    ]
    confusion = session.classifier.confusion_matrix(annotated)
    corrected_share, _cneg = summary.confusion_corrected_proportions(confusion)
    print_table(
        "E7 sentiment pie (positive share of polarized tweets)",
        ["truth", "observed", "confusion-corrected"],
        [(f"{true_share:.3f}", f"{observed_share:.3f}", f"{corrected_share:.3f}")],
    )
    # Raw pie has visible classifier bias; the correction must shrink it.
    assert abs(observed_share - true_share) < 0.3
    assert abs(corrected_share - true_share) < abs(observed_share - true_share)
    assert abs(corrected_share - true_share) < 0.1


def test_popular_links_match_exact_counts(benchmark, tracked):
    _session, _app, event, _soccer = tracked
    top = benchmark(lambda: event.links.top(3))
    exact: dict[str, int] = {}
    for tweet in event.log.scan():
        for url in tweet.entities.urls:
            exact[url] = exact.get(url, 0) + 1
    exact_top = sorted(exact.items(), key=lambda kv: (-kv[1], kv[0]))[:3]
    print_table(
        "E7 popular links (panel vs exact recount)",
        ["panel", "count", "exact", "count_"],
        [
            (a.url, a.count, b[0], b[1])
            for a, b in zip(top, exact_top)
        ],
    )
    assert [(l.url, l.count) for l in top] == exact_top


def test_map_clusters_where_users_live(benchmark, tracked):
    _session, app, event, _soccer = tracked
    markers = benchmark(lambda: app.dashboard(event).markers)
    regions = event.map.sentiment_by_region(
        {name: named_box(name) for name in ("nyc", "london", "tokyo")}
    )
    total_in_regions = sum(sum(counts) for counts in regions.values())
    print(f"\nE7 map: {len(markers)} markers; nyc/london/tokyo hold "
          f"{total_in_regions} ({total_in_regions / len(markers):.0%})")
    # The three metro boxes cover a few percent of the earth but a large
    # share of markers — the population skew is visible on the map.
    assert total_in_regions > 0.05 * len(markers)


def test_regional_sentiment_flips_with_scoring_team(benchmark, population):
    """§3.3's Red Sox–Yankees drill-down: per-peak regional sentiment.

    For every home run, the scoring team's metro must be happier than the
    rival's, flipping as the scoring team flips.
    """
    from repro.twitter.workloads import baseball_game_scenario

    scenario = baseball_game_scenario(seed=SEED, population=population)

    def run():
        session = TweeQL.for_scenarios(scenario, seed=SEED)
        app = TwitInfoApp(session)
        event = app.track(
            "Red Sox vs Yankees", scenario.keywords,
            start=scenario.start, end=scenario.end,
        )
        return event

    event = benchmark.pedantic(run, rounds=1, iterations=1)
    boxes = {"nyc": named_box("nyc"), "boston": named_box("boston")}

    def polarity(counts):
        positive, negative, _neutral = counts
        total = positive + negative
        return (positive - negative) / total if total else 0.0

    rows = []
    for truth in scenario.truth.events:
        regions = event.map.sentiment_by_region(
            boxes, truth.time, truth.time + 360
        )
        nyc, boston = polarity(regions["nyc"]), polarity(regions["boston"])
        rows.append((truth.name, f"{nyc:+.2f}", f"{boston:+.2f}"))
        if truth.info["team"] == "yankees":
            assert nyc > boston
        else:
            assert boston > nyc
    print_table(
        "E7 per-peak regional sentiment polarity (Red Sox vs Yankees)",
        ["home run", "nyc", "boston"],
        rows,
    )


def test_peak_search_panel(benchmark, tracked):
    _session, _app, event, _soccer = tracked
    hits = benchmark(event.search_peaks, "tevez")
    assert hits
    assert all("tevez" in " ".join(p.terms).lower() for p in hits)
