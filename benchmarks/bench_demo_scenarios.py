"""E8 — The three canned demo scenarios end to end (§4).

"We will provide three canned examples: a soccer match, a timeline of
earthquakes, and a summary of a month in Barack Obama's life."

Each scenario runs through event creation, logging, every panel, peak
detection, and all three renderers; the bench reports end-to-end tweets
per (real) second and the headline panel numbers.
"""

import json

import pytest

from repro import TweeQL
from repro.twitinfo import TwitInfoApp
from repro.twitinfo.peaks import PeakDetectorParams

from benchmarks.conftest import SEED, print_table


def run_scenario(scenario, bin_seconds, params=None):
    session = TweeQL.for_scenarios(scenario, seed=SEED)
    app = TwitInfoApp(session)
    event = app.track(
        scenario.name, scenario.keywords,
        start=scenario.start, end=scenario.end,
        bin_seconds=bin_seconds, detector_params=params,
    )
    dashboard = app.dashboard(event)
    text = dashboard.render_text()
    html = dashboard.render_html()
    payload = json.loads(dashboard.to_json_text())
    return event, dashboard, (text, html, payload)


CASES = {
    "soccer": dict(bin_seconds=60.0, params=None),
    "earthquakes": dict(bin_seconds=300.0, params=None),
    "news-month": dict(
        bin_seconds=6 * 3600.0,
        params=PeakDetectorParams(tau=1.5, min_count=30.0),
    ),
}


@pytest.mark.parametrize("name", list(CASES))
def test_demo_scenario(benchmark, name, soccer, quakes, news):
    scenario = {"soccer": soccer, "earthquakes": quakes, "news-month": news}[name]
    case = CASES[name]

    event, dashboard, renders = benchmark.pedantic(
        lambda: run_scenario(scenario, case["bin_seconds"], case["params"]),
        rounds=1, iterations=1,
    )
    text, html, payload = renders
    report = event.report()
    print_table(
        f"E8 {name}",
        ["tweets", "peaks", "pos", "neg", "neutral", "links", "geotagged"],
        [
            (
                report.tweets_logged,
                report.peaks,
                report.positive,
                report.negative,
                report.neutral,
                report.distinct_links,
                report.geotagged,
            )
        ],
    )
    assert report.tweets_logged > 500
    assert report.peaks >= 1
    assert text and html.startswith("<!DOCTYPE html>")
    assert payload["timeline"]
    # Every ground-truth event must land inside or near a peak window.
    tolerance = case["bin_seconds"] * 4
    for truth in scenario.truth.events:
        assert any(
            p.start - tolerance <= truth.time < p.end + tolerance
            for p in event.peaks
        ), f"{name}: {truth.name} missed"
