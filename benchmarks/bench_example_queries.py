"""E1 — §2's three example queries: parse, plan, and execute.

The demo's headline capability: the paper's queries run as written.
Benchmarks each stage and prints per-query throughput over the simulated
stream.
"""

import pytest

from repro import TweeQL
from repro.sql import parse

from benchmarks.conftest import SEED, print_table

QUERIES = {
    "q1-sentiment-geocode": (
        "SELECT sentiment(text), latitude(loc), longitude(loc) "
        "FROM twitter WHERE text contains 'obama';"
    ),
    "q2-keyword-bbox": (
        "SELECT text FROM twitter WHERE text contains 'obama' "
        "AND location in [bounding box for NYC];"
    ),
    "q3-regional-avg": (
        "SELECT AVG(sentiment(text)), floor(latitude(loc)) AS lat, "
        "floor(longitude(loc)) AS long FROM twitter "
        "WHERE text contains 'obama' GROUP BY lat, long WINDOW 3 hours;"
    ),
}


@pytest.fixture(scope="module")
def news_session(news):
    return TweeQL.for_scenarios(news, seed=SEED)


def test_parse_throughput(benchmark):
    sql = QUERIES["q3-regional-avg"]

    def parse_all():
        for query in QUERIES.values():
            parse(query)

    benchmark(parse_all)
    assert parse(sql).window is not None


def test_plan_latency(benchmark, news_session):
    benchmark(news_session.plan, QUERIES["q2-keyword-bbox"])


@pytest.mark.parametrize("name", list(QUERIES))
def test_execute_paper_query(benchmark, news_session, name, news):
    rows_out = {}

    def run():
        handle = news_session.query(QUERIES[name])
        rows = handle.all(limit=5000)
        handle.close()
        rows_out["rows"] = rows
        rows_out["stats"] = handle.stats.as_dict()
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    rows = rows_out["rows"]
    assert rows, f"{name} produced no rows"
    print_table(
        f"E1 {name}",
        ["rows_out", "rows_scanned", "stream_tweets"],
        [(len(rows), rows_out["stats"]["rows_scanned"], len(news))],
    )
