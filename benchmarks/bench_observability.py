"""E10 — Observability overhead.

Tracing must be free when off and cheap when on. "Free when off" (the
< 5% acceptance criterion) is proven structurally, not by timing: with
``tracing=False`` the planner adds zero wrappers and attaches no tracer,
so the disabled path executes the exact operator chain it executed
before the feature existed — the only per-query cost is one flag check
at plan time. (Timing off-vs-off on a shared box just measures machine
noise; an earlier version of this bench did, and the "overhead" of two
identical code paths came out at ±13%.) The traced run's cost is
measured and reported for the bench trajectory.
"""

import time

import pytest

from repro import EngineConfig, TweeQL
from repro.engine.sanitizer import SanitizeOperator
from repro.obs import TraceOperator

from benchmarks.conftest import SEED

SQL = (
    "SELECT lower(text) AS t, length(text) AS n FROM twitter "
    "WHERE length(text) > 10;"
)


def _wrapper_count(pipeline, kind=TraceOperator) -> int:
    """Wrappers of ``kind`` in the operator chain (walking child links)."""
    count = 0
    node = pipeline
    while node is not None:
        if isinstance(node, kind):
            count += 1
        # Operators hold their upstream as _child (ScanOperator: _source).
        node = getattr(node, "_child", None) or getattr(node, "_source", None)
    return count


def test_tracing_off_adds_no_wrappers(soccer):
    session = TweeQL.for_scenarios(
        soccer, config=EngineConfig(tracing=False), seed=SEED
    )
    plan = session.plan(SQL)
    assert plan.tracer is None
    assert _wrapper_count(plan.pipeline) == 0


def test_tracing_on_wraps_every_stage(soccer):
    session = TweeQL.for_scenarios(
        soccer, config=EngineConfig(tracing=True), seed=SEED
    )
    plan = session.plan(SQL)
    assert plan.tracer is not None
    assert _wrapper_count(plan.pipeline) >= 2  # at least Scan + Project


@pytest.mark.parametrize(
    "mode", ["off", "on", "on-no-batch-spans"]
)
def test_overhead(benchmark, soccer, mode):
    """E10 — wall time per configuration; 'off' is the baseline."""
    config = EngineConfig(
        tracing=mode != "off",
        trace_batch_spans=mode == "on",
    )

    def run():
        session = TweeQL.for_scenarios(soccer, config=config, seed=SEED)
        return session.query(SQL).all()

    rows = benchmark.pedantic(run, rounds=3, iterations=1)
    assert rows
    benchmark.extra_info["mode"] = mode
    print(f"\nE10 tracing={mode}: {benchmark.stats.stats.mean:.3f}s "
          f"({len(rows)} rows)")


def test_traced_run_overhead_reported(soccer):
    """Traced-vs-untraced cost, printed for the bench trajectory (the
    acceptance bound applies to the disabled path; the enabled path just
    must not be pathological)."""

    def timed(tracing: bool) -> float:
        session = TweeQL.for_scenarios(
            soccer, config=EngineConfig(tracing=tracing), seed=SEED
        )
        start = time.perf_counter()
        session.query(SQL).all()
        return time.perf_counter() - start

    off = on = float("inf")
    for _ in range(3):
        off = min(off, timed(False))
        on = min(on, timed(True))
    print(f"\nE10 traced overhead: off {off:.3f}s, on {on:.3f}s "
          f"→ {on / off - 1:+.1%}")
    assert on < off * 3, "tracing on must stay within 3x of untraced"


def test_sanitize_off_adds_no_wrappers(soccer):
    """TQLSAN mirrors the tracing contract: off means structurally off —
    no SanitizeOperator in the chain, no sanitizer on the plan."""
    session = TweeQL.for_scenarios(
        soccer, config=EngineConfig(sanitize=False), seed=SEED
    )
    plan = session.plan(SQL)
    assert plan.sanitizer is None
    assert _wrapper_count(plan.pipeline, SanitizeOperator) == 0


def test_sanitized_run_overhead_reported(soccer):
    """Sanitized-vs-plain cost, printed for the bench trajectory. The
    acceptance bound is structural (off = zero wrappers, above); the
    enabled path checks every batch boundary and must merely stay
    non-pathological."""

    def timed(sanitize: bool) -> float:
        session = TweeQL.for_scenarios(
            soccer, config=EngineConfig(sanitize=sanitize), seed=SEED
        )
        start = time.perf_counter()
        session.query(SQL).all()
        return time.perf_counter() - start

    off = on = float("inf")
    for _ in range(3):
        off = min(off, timed(False))
        on = min(on, timed(True))
    print(f"\nE10 sanitizer overhead: off {off:.3f}s, on {on:.3f}s "
          f"→ {on / off - 1:+.1%}")
    assert on < off * 3, "sanitize on must stay within 3x of plain"
