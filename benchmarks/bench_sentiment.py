"""E10 — The classification framework: sentiment quality and speed.

TweeQL's "classification framework, used primarily for sentiment
analysis": distant-supervision training on emoticon-labeled tweets,
evaluation on composer ground truth (the stand-in for human labels), and
classification throughput (the UDF sits on the hot path of every
sentiment query).
"""

import pytest

from repro.nlp.corpus import training_corpus
from repro.nlp.corpus import test_corpus as heldout_corpus
from repro.nlp.sentiment import SentimentClassifier

from benchmarks.conftest import print_table

TRAIN_SIZE = 4000
TEST_SIZE = 1500


@pytest.fixture(scope="module")
def data():
    return (
        training_corpus(size=TRAIN_SIZE, seed=41),
        heldout_corpus(size=TEST_SIZE, seed=42),
    )


def test_training_speed(benchmark, data):
    train, _test = data

    def fit():
        classifier = SentimentClassifier()
        classifier.train(train)
        return classifier

    classifier = benchmark(fit)
    assert classifier.vocabulary_size > 200


def test_accuracy_table(benchmark, data):
    train, test = data
    classifier = SentimentClassifier()
    classifier.train(train)
    metrics = benchmark.pedantic(
        lambda: classifier.evaluate(test), rounds=1, iterations=1
    )
    print_table(
        "E10 sentiment quality on ground-truth labels "
        f"(train={TRAIN_SIZE} emoticon-labeled, test={TEST_SIZE})",
        ["accuracy", "recall+", "recall-", "recall0"],
        [
            (
                f"{metrics['accuracy']:.3f}",
                f"{metrics['recall_positive']:.3f}",
                f"{metrics['recall_negative']:.3f}",
                f"{metrics['recall_neutral']:.3f}",
            )
        ],
    )
    assert metrics["accuracy"] > 0.6


def test_classification_throughput(benchmark, data):
    train, test = data
    classifier = SentimentClassifier()
    classifier.train(train)
    texts = [e.text for e in test]

    def classify_all():
        return [classifier.classify(t) for t in texts]

    labels = benchmark(classify_all)
    per_second = len(texts) / benchmark.stats.stats.mean
    print(f"\nE10 classify throughput: {per_second:,.0f} tweets/s")
    assert len(labels) == len(texts)
    assert per_second > 5_000


@pytest.mark.parametrize("ngram", [1, 2])
def test_ablation_ngram(benchmark, data, ngram):
    """Unigram vs unigram+bigram features.

    Finding: bigrams *hurt* under the fixed neutral band — every sentiment
    phrase now fires twice (its words and their pair), inflating log-odds
    magnitude and flooding the neutral class into the polar ones. The
    default stays unigram; re-calibrating the band per feature set is what
    a production system would do.
    """
    train, test = data

    def fit_and_eval():
        classifier = SentimentClassifier(ngram=ngram)
        classifier.train(train)
        return classifier.evaluate(test), classifier.vocabulary_size

    metrics, vocabulary = benchmark.pedantic(fit_and_eval, rounds=1, iterations=1)
    print(f"\nE10-ablation ngram={ngram}: accuracy={metrics['accuracy']:.3f} "
          f"vocab={vocabulary}")
    assert metrics["accuracy"] > 0.5


@pytest.mark.parametrize("train_size", [250, 1000, 4000])
def test_ablation_training_size(benchmark, train_size):
    """Learning curve: more distant supervision → better accuracy."""
    train = training_corpus(size=train_size, seed=43)
    test = heldout_corpus(size=800, seed=44)

    def fit_and_eval():
        classifier = SentimentClassifier()
        classifier.train(train)
        return classifier.evaluate(test)

    metrics = benchmark.pedantic(fit_and_eval, rounds=1, iterations=1)
    print(f"\nE10-ablation train={train_size}: "
          f"accuracy={metrics['accuracy']:.3f}")
    assert metrics["accuracy"] > 0.5
