"""Fidelity harness overhead: two passes must cost less than two runs.

:class:`FidelityRun` replays a scenario twice (firehose + sample) and
scores the digests against each other. The sample pass only pushes
``rate`` of the tweets through TwitInfo, so the whole harness should
cost well under **2x** a plain single-stream run of the same event —
the gate this bench asserts. If digesting or scoring ever starts to
dominate, this is the bench that catches it.
"""

import time

import pytest

from repro.clock import VirtualClock
from repro.engine.session import EngineConfig, TweeQL
from repro.fidelity.harness import FidelityRun, build_scenario
from repro.twitinfo.app import TwitInfoApp
from repro.twitinfo.peaks import PeakDetectorParams
from repro.twitter.stream import Firehose, StreamingAPI

from benchmarks.conftest import SEED

RATE = 0.05


@pytest.fixture(scope="module")
def botflood():
    """The bursty bot-flood scenario at a bench-friendly size (~20k tweets)."""
    return build_scenario("botflood", seed=SEED, population_size=1000,
                          intensity=0.5)


def _plain_run(scenario):
    """One lossless single-stream TwitInfo pass — the 1x baseline."""
    clock = VirtualClock(start=scenario.start)
    api = StreamingAPI(
        Firehose(list(scenario.tweets)), clock=clock, delivery_ratio=1.0,
        seed=SEED,
    )
    session = TweeQL(api=api, clock=clock, config=EngineConfig(), seed=SEED)
    app = TwitInfoApp(session)
    tracked = app.create_event(
        name=scenario.name,
        keywords=scenario.keywords,
        detector_params=PeakDetectorParams.for_sampled_stream(1.0),
    )
    app.run_event(tracked)
    return tracked


def _harness_run(scenario):
    return FidelityRun(scenario, rate=RATE, seed=SEED).execute()


def test_fidelity_harness_throughput(benchmark, botflood):
    """Trajectory entry: full fidelity runs per second."""
    report = benchmark.pedantic(
        lambda: _harness_run(botflood), rounds=2, iterations=1
    )
    assert 0 < report.firehose.tweets <= len(botflood.tweets)
    benchmark.extra_info["tweets"] = len(botflood.tweets)
    benchmark.extra_info["rate"] = RATE
    print(f"\nfidelity harness: {len(botflood.tweets)} tweets @ rate {RATE} → "
          f"{benchmark.stats.stats.mean:.2f}s/run "
          f"(overall score {report.scores.overall:.3f})")


def test_harness_overhead_below_2x(botflood):
    """The acceptance gate: harness wall time < 2x one plain stream pass.

    Interleaved best-of-3 min timing, same rationale as the multitenant
    bench: noise only ever slows a run down, so the min converges on the
    true cost, and alternating sides keeps a load spike from biasing one
    of them.
    """
    # Warm both paths (tokenizer tables, sentiment lexicon, etc.) before
    # any timing is trusted.
    tracked = _plain_run(botflood)
    report = _harness_run(botflood)
    assert len(tracked.log) == report.firehose.tweets  # same event, same log

    plain = harness = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        _plain_run(botflood)
        plain = min(plain, time.perf_counter() - start)
        start = time.perf_counter()
        _harness_run(botflood)
        harness = min(harness, time.perf_counter() - start)

    overhead = harness / plain if plain else float("inf")
    print(f"\nfidelity overhead: plain {plain:.2f}s, harness {harness:.2f}s "
          f"→ {overhead:.2f}x")
    assert overhead < 2.0, (
        f"fidelity harness should cost < 2x a plain single-stream run, "
        f"measured {overhead:.2f}x"
    )


if __name__ == "__main__":
    pytest.main([__file__, "-q", "-s"])
