"""E12 — Multi-tenant shared scan vs N independent sessions.

The scaling argument for the shared-scan layer: a TwitInfo-style service
tracking 8 events pays for 8 full firehose connections and 8 scans when
each query runs alone, but one connection and one scan when they ride a
:class:`SharedScanGroup`. This bench runs the same 8 tenant queries both
ways over the Figure-1 match and asserts the aggregate-throughput win.

Lossless delivery is pinned so the two sides are row-for-row comparable
(the equivalence the tests prove is re-checked here before timing is
trusted).
"""

import time

import pytest

from repro import TweeQL

from benchmarks.conftest import SEED

#: Eight tenants sharing one filter prefix, with varied residual work —
#: the shape a dashboard tracking one event for eight users produces.
TENANT_SQLS = [
    "SELECT text FROM twitter WHERE text contains 'soccer';",
    "SELECT lower(text) AS t FROM twitter WHERE text contains 'soccer';",
    "SELECT length(text) AS n, text FROM twitter WHERE text contains 'soccer';",
    "SELECT screen_name, followers FROM twitter WHERE text contains 'soccer';",
    "SELECT hour(created_at) AS h, text FROM twitter "
    "WHERE text contains 'soccer';",
    "SELECT sentiment(text) AS s FROM twitter WHERE text contains 'soccer';",
    "SELECT COUNT(*) AS n FROM twitter WHERE text contains 'soccer' "
    "WINDOW 5 minutes;",
    "SELECT AVG(followers) AS f, lang FROM twitter "
    "WHERE text contains 'soccer' GROUP BY lang WINDOW 5 minutes;",
]


def _session(soccer):
    return TweeQL.for_scenarios(soccer, delivery_ratio=1.0, seed=SEED)


def _run_shared(soccer):
    session = _session(soccer)
    with session.shared() as group:
        handles = [group.query(sql) for sql in TENANT_SQLS]
        return [handle.all() for handle in handles]


def _run_independent(soccer):
    results = []
    for sql in TENANT_SQLS:
        session = _session(soccer)
        handle = session.query(sql)
        results.append(handle.all())
        handle.close()
    return results


def test_shared_scan_throughput(benchmark, soccer):
    """Trajectory entry: aggregate tuples/second with 8 shared tenants."""
    results = benchmark.pedantic(lambda: _run_shared(soccer), rounds=2, iterations=1)
    assert all(results)
    # Aggregate throughput: 8 tenants' views of the stream per wall second.
    tuples_per_second = len(TENANT_SQLS) * len(soccer) / benchmark.stats.stats.mean
    benchmark.extra_info["tenants"] = len(TENANT_SQLS)
    benchmark.extra_info["tuples_per_second"] = round(tuples_per_second)
    print(f"\nE12 shared: {len(TENANT_SQLS)} tenants x {len(soccer)} tweets → "
          f"{tuples_per_second:,.0f} tenant-tweets/s (wall)")


def test_independent_sessions_throughput(benchmark, soccer):
    """The baseline the speedup gate compares against."""
    results = benchmark.pedantic(
        lambda: _run_independent(soccer), rounds=2, iterations=1
    )
    assert all(results)
    tuples_per_second = len(TENANT_SQLS) * len(soccer) / benchmark.stats.stats.mean
    benchmark.extra_info["tenants"] = len(TENANT_SQLS)
    benchmark.extra_info["tuples_per_second"] = round(tuples_per_second)
    print(f"\nE12 independent: {len(TENANT_SQLS)} sessions x {len(soccer)} "
          f"tweets → {tuples_per_second:,.0f} tenant-tweets/s (wall)")


def test_shared_scan_speedup(soccer):
    """The >= 2x acceptance criterion: 8 tenants on one scan beat 8
    independent sessions on aggregate throughput.

    No parallelism gate: the win is *work elimination* (1 scan instead of
    8, shared filter evaluation), not thread-level parallelism, so it
    survives the GIL and single-core hosts. Interleaved best-of-3 min
    timing — noise only ever slows a run down, so the min converges on
    the true cost, and alternating sides keeps a load spike from biasing
    one of them.
    """
    shared_rows = _run_shared(soccer)
    independent_rows = _run_independent(soccer)

    def strip(results):
        return [
            [
                {k: v for k, v in row.items() if not k.startswith("__")}
                for row in rows
            ]
            for rows in results
        ]

    assert strip(shared_rows) == strip(independent_rows)

    shared = independent = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        _run_shared(soccer)
        shared = min(shared, time.perf_counter() - start)
        start = time.perf_counter()
        _run_independent(soccer)
        independent = min(independent, time.perf_counter() - start)

    speedup = independent / shared if shared else float("inf")
    print(f"\nE12 speedup: independent {independent:.2f}s, "
          f"shared {shared:.2f}s → {speedup:.2f}x aggregate throughput "
          f"({len(TENANT_SQLS)} tenants)")
    assert speedup >= 2.0, (
        f"expected >= 2x aggregate throughput from the shared scan, "
        f"measured {speedup:.2f}x"
    )


if __name__ == "__main__":
    pytest.main([__file__, "-q", "-s"])
