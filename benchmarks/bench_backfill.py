"""E12 — The hybrid tier's two performance promises.

1. **Instant backfill**: serving the first N event rows from the
   historical store must beat waiting on the live stream by >= 10x. In a
   real deployment the live stream arrives in real time, so the live
   cost is the *stream* time between the first and Nth delivered row —
   here that is virtual-clock seconds, which the simulator exposes
   directly. The backfill cost is the wall-clock time the store takes to
   hand back the same rows (its virtual cost is zero: the clock never
   advances). Both are reported; the gate compares them.
2. **Cheap archival**: the StorageWriter tap on the live path must cost
   < 5% wall clock versus the same query with no store configured
   (best-of-rounds to shave scheduler noise). The gate prices the
   *synchronous* tap — the buffer-append the live thread actually pays —
   by deferring the drain thread; a real deployment absorbs the drain's
   CPU into the stream's network-wait gaps, which the virtual clock
   collapses to zero, so wall clock with the drain running concurrently
   is reported alongside but not gated.

Writes ``BENCH_backfill.json`` (repo root, or ``$BENCH_OUTPUT``) and
leaves the populated store at ``bench_backfill_store.db`` next to it —
CI uploads both, so every build ships an inspectable archive.
"""

import json
import os
import pathlib
import time

from repro import EngineConfig, TweeQL
from repro.storage import HistoricalStore

from benchmarks.conftest import SEED, print_table

FETCH_ROWS = 1500
OVERHEAD_ROUNDS = 5
LIVE_SQL = (
    "SELECT tweet_id, text, created_at FROM twitter "
    "WHERE text CONTAINS 'tevez';"
)


def _output_dir() -> pathlib.Path:
    return pathlib.Path(os.environ.get("BENCH_OUTPUT", "."))


def _store_path() -> str:
    return str(_output_dir() / "bench_backfill_store.db")


def _populated_store(soccer) -> str:
    """Archive the full match once; reuse the file across measurements."""
    path = _store_path()
    with HistoricalStore(path) as probe:
        if probe.watermark() is not None and probe.watermark() >= soccer.end:
            return path  # already archived by an earlier test in this run
    session = TweeQL.for_scenarios(
        soccer, config=EngineConfig(storage_path=path), seed=SEED
    )
    session.query("SELECT tweet_id FROM twitter;").all()
    session.close()
    return path


def test_backfill_beats_live_wait_10x(soccer):
    path = _populated_store(soccer)

    # Live: the analyst waits stream time for N rows to arrive.
    live = TweeQL.for_scenarios(soccer, seed=SEED)
    handle = live.query(LIVE_SQL)
    rows = handle.fetch(FETCH_ROWS)
    live_wait = rows[-1]["created_at"] - soccer.start
    handle.close()
    assert len(rows) == FETCH_ROWS
    assert live_wait > 0

    # Backfill: the store serves the same rows in wall-clock time, with
    # the virtual clock untouched.
    hybrid = TweeQL.for_scenarios(
        soccer,
        config=EngineConfig(storage_path=path, backfill=True),
        seed=SEED,
    )
    clock_before = hybrid.clock.now
    wall_start = time.perf_counter()
    handle = hybrid.query(LIVE_SQL)
    backfilled = handle.fetch(FETCH_ROWS)
    backfill_seconds = time.perf_counter() - wall_start
    handle.close()
    assert len(backfilled) == FETCH_ROWS
    assert hybrid.clock.now == clock_before  # zero virtual wait
    hybrid.close()

    speedup = live_wait / backfill_seconds
    print_table(
        f"E12a — time to first {FETCH_ROWS} event rows",
        ["path", "analyst wait (s)", "speedup"],
        [
            ("live stream", f"{live_wait:.1f}", "1.0x"),
            ("backfill", f"{backfill_seconds:.4f}", f"{speedup:.0f}x"),
        ],
    )
    _write_json("first_rows", {
        "fetch_rows": FETCH_ROWS,
        "live_stream_wait_seconds": round(live_wait, 3),
        "backfill_wall_seconds": round(backfill_seconds, 6),
        "speedup": round(speedup, 1),
    })
    assert speedup >= 10.0, (
        f"backfill only {speedup:.1f}x faster than the live wait"
    )


def test_storage_writer_overhead_under_5_percent(soccer, tmp_path):
    from repro.storage import StorageWriter

    def run_plain():
        session = TweeQL.for_scenarios(soccer, seed=SEED)
        start = time.perf_counter()
        rows = session.query(LIVE_SQL).all()
        return time.perf_counter() - start, len(rows)

    def run_tapped(round_index, deferred):
        store = HistoricalStore(
            str(tmp_path / f"tap{deferred}{round_index}.db")
        )
        writer = StorageWriter(store, start=not deferred)
        session = TweeQL.for_scenarios(soccer, seed=SEED)
        session.api.tap = writer.write
        start = time.perf_counter()
        rows = session.query(LIVE_SQL).all()
        elapsed = time.perf_counter() - start
        assert writer.dropped == 0
        writer.stop()
        store.close()
        return elapsed, len(rows)

    plain_times, tap_times, drain_times = [], [], []
    for round_index in range(OVERHEAD_ROUNDS):
        plain_seconds, plain_rows = run_plain()
        tap_seconds, tap_rows = run_tapped(round_index, deferred=True)
        drain_seconds, drain_rows = run_tapped(round_index, deferred=False)
        assert plain_rows == tap_rows == drain_rows
        plain_times.append(plain_seconds)
        tap_times.append(tap_seconds)
        drain_times.append(drain_seconds)

    overhead = min(tap_times) / min(plain_times)
    concurrent = min(drain_times) / min(plain_times)
    print_table(
        "E12b — live-path wall clock with and without the archival tap",
        ["configuration", "best seconds", "overhead"],
        [
            ("no store", f"{min(plain_times):.4f}", "1.000x"),
            ("tap only", f"{min(tap_times):.4f}", f"{overhead:.3f}x"),
            ("tap + concurrent drain", f"{min(drain_times):.4f}",
             f"{concurrent:.3f}x"),
        ],
    )
    _write_json("writer_overhead", {
        "rounds": OVERHEAD_ROUNDS,
        "plain_seconds": round(min(plain_times), 6),
        "tap_seconds": round(min(tap_times), 6),
        "concurrent_drain_seconds": round(min(drain_times), 6),
        "tap_overhead": round(overhead, 4),
        "concurrent_drain_overhead": round(concurrent, 4),
    })
    assert overhead < 1.05, (
        f"archival tap costs {(overhead - 1) * 100:.1f}% on the live path"
    )


def _write_json(key: str, payload: dict) -> None:
    out = _output_dir() / "BENCH_backfill.json"
    data = {}
    if out.exists():
        data = json.loads(out.read_text())
    data[key] = payload
    out.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
