"""E6 — Peak detection precision/recall against generator ground truth.

The demo paper defers evaluation of the peak detector to the TwitInfo
CHI'11 companion, which scored detected peaks against human-annotated
events for soccer games and earthquakes. Our generator's retained event
list plays the annotators' role.

Reported per scenario: precision (detected peaks near a true event),
recall (true events covered by a peak), and label recovery (the event's
expected terms — scorer + score, place + magnitude, story object — appear
among the peak's key terms). The CHI'11 paper reported high recall with
moderate precision (kickoff-style false positives); the same shape should
appear here.
"""

import pytest

from repro import TweeQL
from repro.twitinfo import TwitInfoApp
from repro.twitinfo.peaks import PeakDetector, PeakDetectorParams

from benchmarks.conftest import SEED, print_table


def score_scenario(scenario, bin_seconds, params=None, tolerance=600.0):
    session = TweeQL.for_scenarios(scenario, seed=SEED)
    app = TwitInfoApp(session)
    event = app.track(
        scenario.name,
        scenario.keywords,
        start=scenario.start,
        end=scenario.end,
        bin_seconds=bin_seconds,
        detector_params=params,
    )
    truths = scenario.truth.events
    matched_truths = set()
    true_positives = 0
    for peak in event.peaks:
        near = [
            t for t in truths
            if peak.start - tolerance <= t.time < peak.end + tolerance
        ]
        if near:
            true_positives += 1
            matched_truths.update(t.event_id for t in near)
    precision = true_positives / len(event.peaks) if event.peaks else 0.0
    recall = len(matched_truths) / len(truths) if truths else 1.0

    labels_recovered = 0
    for truth in truths:
        peak = min(
            event.peaks, key=lambda p: abs(p.apex_time - truth.time),
            default=None,
        )
        if peak is None:
            continue
        if any(term in peak.terms for term in truth.expected_terms):
            labels_recovered += 1
    label_rate = labels_recovered / len(truths) if truths else 1.0
    return {
        "peaks": len(event.peaks),
        "events": len(truths),
        "precision": precision,
        "recall": recall,
        "labels": label_rate,
    }


def test_peak_detection_all_scenarios(benchmark, soccer, quakes, news):
    specs = [
        ("soccer", soccer, 60.0, 600.0),
        ("earthquakes", quakes, 300.0, 1800.0),
        ("news-month", news, 6 * 3600.0, 12 * 3600.0),
    ]
    results = {}

    def run():
        for name, scenario, bin_seconds, tolerance in specs:
            params = None
            if name == "news-month":
                params = PeakDetectorParams(tau=1.5, min_count=30.0)
            results[name] = score_scenario(
                scenario, bin_seconds, params=params, tolerance=tolerance
            )
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)

    print_table(
        "E6 peak detection vs ground truth (cf. TwitInfo CHI'11 Table 1)",
        ["scenario", "events", "peaks", "precision", "recall", "labels"],
        [
            (
                name,
                r["events"],
                r["peaks"],
                f"{r['precision']:.2f}",
                f"{r['recall']:.2f}",
                f"{r['labels']:.2f}",
            )
            for name, r in results.items()
        ],
    )
    # The CHI'11 shape: full recall on goals/quakes, moderate precision.
    assert results["soccer"]["recall"] == 1.0
    assert results["earthquakes"]["recall"] >= 0.75
    assert results["soccer"]["precision"] >= 0.4
    # Labels: goal peaks carry scorer/score; quake peaks place/magnitude.
    assert results["soccer"]["labels"] == 1.0
    assert results["earthquakes"]["labels"] >= 0.75


@pytest.mark.parametrize("tau", [1.0, 2.0, 4.0])
def test_ablation_tau(benchmark, soccer, tau):
    """Threshold sweep: precision rises and recall falls with tau."""
    result = benchmark.pedantic(
        lambda: score_scenario(
            soccer, 60.0, params=PeakDetectorParams(tau=tau)
        ),
        rounds=1, iterations=1,
    )
    print(f"\nE6-ablation tau={tau}: peaks={result['peaks']} "
          f"precision={result['precision']:.2f} recall={result['recall']:.2f}")
    if tau <= 2.0:
        assert result["recall"] == 1.0


@pytest.mark.parametrize("alpha", [0.05, 0.125, 0.5])
def test_ablation_alpha(benchmark, soccer, alpha):
    """EWMA factor sweep: all reasonable alphas keep full goal recall."""
    result = benchmark.pedantic(
        lambda: score_scenario(
            soccer, 60.0, params=PeakDetectorParams(alpha=alpha)
        ),
        rounds=1, iterations=1,
    )
    print(f"\nE6-ablation alpha={alpha}: peaks={result['peaks']} "
          f"precision={result['precision']:.2f} recall={result['recall']:.2f}")
    assert result["recall"] == 1.0


def test_sql_meandev_agrees_with_detector(benchmark, soccer):
    """Cross-validation: peak detection written in pure TweeQL (windowed
    count INTO STREAM, then the stateful meandev UDF — exactly the
    composition the paper describes) flags the same goal minutes as the
    TwitInfo detector."""
    session = TweeQL.for_scenarios(soccer, seed=SEED)

    def run():
        session.query(
            "SELECT COUNT(*) AS n FROM twitter WHERE text contains 'soccer' "
            "OR text contains 'manchester' OR text contains 'liverpool' "
            "OR text contains 'football' OR text contains 'premierleague' "
            "WINDOW 1 minutes INTO STREAM volume;"
        )
        rows = session.query(
            "SELECT meandev(n) AS score, n, window_start FROM volume;"
        ).all()
        return [r for r in rows if r["score"] is not None and r["score"] > 2.0]

    spikes = benchmark.pedantic(run, rounds=1, iterations=1)
    covered = sum(
        1 for goal in soccer.truth.events
        if any(abs(s["window_start"] - goal.time) <= 180 for s in spikes)
    )
    print(f"\nE6 SQL-only detection: {len(spikes)} spiking minutes, "
          f"{covered}/{len(soccer.truth.events)} goals covered")
    assert covered == len(soccer.truth.events)


def test_detector_throughput(benchmark):
    """Raw detector speed on a long synthetic bin stream."""
    import random

    rng = random.Random(5)
    bins = [(i * 60.0, rng.expovariate(1 / 50.0)) for i in range(50_000)]

    def run():
        return PeakDetector().run(bins)

    peaks = benchmark(run)
    assert isinstance(peaks, list)
