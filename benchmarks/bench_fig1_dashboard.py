"""F1 — Figure 1: the TwitInfo soccer dashboard.

Regenerates the paper's one figure: the Manchester City vs. Liverpool
dashboard with flagged peaks and key terms. Benchmarks the end-to-end
build (stream → panels → peaks → labels → render) and checks the
figure's annotated behaviour: the final goal's peak carries '3-0' and
'tevez'.
"""

import pytest

from repro import TweeQL
from repro.twitinfo import TwitInfoApp

from benchmarks.conftest import SEED, print_table


@pytest.fixture(scope="module")
def built(soccer):
    session = TweeQL.for_scenarios(soccer, seed=SEED)
    app = TwitInfoApp(session)
    event = app.track(
        "Soccer: Manchester City vs. Liverpool",
        soccer.keywords,
        start=soccer.start,
        end=soccer.end,
    )
    return app, event, soccer


def test_fig1_dashboard_build(benchmark, soccer):
    def build():
        session = TweeQL.for_scenarios(soccer, seed=SEED)
        app = TwitInfoApp(session)
        event = app.track(
            "Soccer: Manchester City vs. Liverpool",
            soccer.keywords,
            start=soccer.start,
            end=soccer.end,
        )
        return app.dashboard(event)

    dashboard = benchmark.pedantic(build, rounds=3, iterations=1)
    assert dashboard.peaks


def test_fig1_shape(benchmark, built):
    """The figure's qualitative content, against ground truth."""
    app, event, soccer = built
    benchmark.pedantic(event.detect_peaks, rounds=1, iterations=1)
    rows = []
    for peak in event.peaks:
        truth = soccer.truth.event_near(peak.apex_time, tolerance=240.0)
        rows.append(
            (
                peak.label,
                f"{peak.apex_count:.0f}",
                ", ".join(peak.terms[:4]),
                truth.name if truth else "-",
            )
        )
    print_table(
        "F1: timeline peaks (flag, apex tweets/min, key terms, ground truth)",
        ["flag", "apex", "terms", "truth"],
        rows,
    )
    dash = app.dashboard(event)
    positive, negative = dash.sentiment.proportions()
    print(f"sentiment pie: {positive:.0%} positive / {negative:.0%} negative")
    print(f"popular links: {[(l.url, l.count) for l in dash.links]}")
    print(f"map markers: {len(dash.markers)}")

    # Every goal covered by a peak.
    for goal in soccer.truth.events:
        assert any(
            p.start - 120 <= goal.time < p.end + 60 for p in event.peaks
        ), goal.name
    # Figure 1's annotation: the 3-0 Tevez goal is flagged and labeled.
    final = soccer.truth.events[-1]
    peak = min(event.peaks, key=lambda p: abs(p.apex_time - final.time))
    assert {"3-0", "tevez"} <= set(peak.terms)
    # Goals by the home side → the crowd skews positive (§3.3's pie).
    assert positive > negative


def test_fig1_render_html(benchmark, built):
    app, event, _soccer = built
    dashboard = app.dashboard(event)
    page = benchmark(dashboard.render_html)
    assert page.startswith("<!DOCTYPE html>")


def test_fig1_drilldown(benchmark, built):
    """Clicking a peak refreshes every panel to the peak's window."""
    app, event, soccer = built
    final = soccer.truth.events[-1]
    peak = min(event.peaks, key=lambda p: abs(p.apex_time - final.time))
    drilled = benchmark(app.dashboard, event, peak.label)
    assert drilled.sentiment.total < app.dashboard(event).sentiment.total
