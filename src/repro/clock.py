"""Virtual time.

The original TweeQL ran against the live Twitter stream and real web
services; latency and window semantics were wall-clock. This reproduction
replaces wall-clock with a :class:`VirtualClock` shared by the simulated
firehose, the simulated web services, and the query executor. Virtual time
makes every experiment deterministic and lets benchmarks measure the *cost
model* (e.g. "300 ms per geocode call") without actually sleeping.

Time values are seconds since the Unix epoch, as floats. The default epoch
is 2011-06-12 00:00:00 UTC — the week of SIGMOD 2011 — purely for flavor in
rendered timestamps.
"""

from __future__ import annotations

import datetime as _dt
import heapq
import itertools
from collections.abc import Callable

#: 2011-06-12 00:00:00 UTC.
DEFAULT_EPOCH = 1307836800.0


class VirtualClock:
    """A monotonically advancing simulated clock.

    The clock only moves when a component calls :meth:`advance` or
    :meth:`advance_to`. Components may schedule callbacks with :meth:`call_at`
    (used by the asynchronous web-service pool); callbacks fire, in timestamp
    order, as the clock sweeps past their deadline.
    """

    def __init__(self, start: float = DEFAULT_EPOCH) -> None:
        self._now = float(start)
        self._pending: list[tuple[float, int, Callable[[], None]]] = []
        self._counter = itertools.count()

    @property
    def now(self) -> float:
        """Current virtual time in seconds since the epoch."""
        return self._now

    def advance(self, seconds: float) -> None:
        """Move the clock forward by ``seconds`` (must be non-negative)."""
        if seconds < 0:
            raise ValueError("cannot advance the clock backwards")
        self.advance_to(self._now + seconds)

    def advance_to(self, timestamp: float) -> None:
        """Move the clock forward to ``timestamp``, firing due callbacks.

        Callbacks scheduled for a time at or before ``timestamp`` run in
        deadline order; each sees :attr:`now` equal to its own deadline, so a
        callback that schedules further work keeps causality.
        """
        if timestamp < self._now:
            raise ValueError(
                f"cannot advance the clock backwards: {timestamp} < {self._now}"
            )
        while self._pending and self._pending[0][0] <= timestamp:
            deadline, _seq, callback = heapq.heappop(self._pending)
            self._now = max(self._now, deadline)
            callback()
        self._now = timestamp

    def call_at(self, timestamp: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run when the clock reaches ``timestamp``.

        Scheduling in the past is allowed; the callback fires on the next
        advance (or :meth:`flush`).
        """
        heapq.heappush(self._pending, (timestamp, next(self._counter), callback))

    def flush(self) -> None:
        """Run every pending callback, advancing time as needed."""
        while self._pending:
            deadline = self._pending[0][0]
            self.advance_to(max(deadline, self._now))

    @property
    def pending_count(self) -> int:
        """Number of callbacks not yet fired."""
        return len(self._pending)

    def next_deadline(self) -> float | None:
        """Earliest pending callback deadline, or None when none is queued.

        Lets a waiter that promised completion at time T make progress when
        the completion was *rescheduled* past T (an async retry chain): if
        advancing to T resolved nothing, advancing to the next deadline
        will.
        """
        return self._pending[0][0] if self._pending else None

    def datetime(self) -> _dt.datetime:
        """Current virtual time as an aware UTC datetime."""
        return _dt.datetime.fromtimestamp(self._now, tz=_dt.timezone.utc)


def format_timestamp(timestamp: float) -> str:
    """Render a virtual timestamp as ``YYYY-MM-DD HH:MM:SS`` UTC."""
    moment = _dt.datetime.fromtimestamp(timestamp, tz=_dt.timezone.utc)
    return moment.strftime("%Y-%m-%d %H:%M:%S")
