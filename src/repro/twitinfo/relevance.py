"""The Relevant Tweets panel.

Section 3.2: "The Relevant Tweets panel lists tweets that fall within the
event's time window. These tweets are sorted by similarity to the event or
peak keywords, so that tweets near the top are most representative of the
selected event. Tweets are colored blue, red, or white depending on whether
their detected sentiment is positive, negative, or neutral."
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.nlp.keywords import KeywordExtractor
from repro.nlp.similarity import rank_by_similarity
from repro.twitter.models import Tweet


@dataclass(frozen=True)
class RelevantTweet:
    """One panel entry: the tweet, its similarity, sentiment, and color."""

    tweet: Tweet
    similarity: float
    sentiment: int

    @property
    def color(self) -> str:
        if self.sentiment > 0:
            return "blue"
        if self.sentiment < 0:
            return "red"
        return "white"


def relevant_tweets(
    tweets: Sequence[Tweet],
    keywords: Sequence[str],
    sentiments: Sequence[int],
    extractor: KeywordExtractor | None = None,
    limit: int = 10,
) -> list[RelevantTweet]:
    """Rank tweets by similarity to the (event or peak) keywords.

    Args:
        tweets: candidate tweets (already time-filtered by the caller).
        keywords: event keywords, or event keywords + peak terms when a
            peak is selected.
        sentiments: classifier labels aligned with ``tweets``.
        extractor: background model for TF-IDF weighting (the labeler's).
        limit: panel size.
    """
    if len(tweets) != len(sentiments):
        raise ValueError("tweets and sentiments must align")
    sentiment_of = {id(tweet): label for tweet, label in zip(tweets, sentiments)}
    ranked = rank_by_similarity(
        tweets,
        keywords,
        text_of=lambda tweet: tweet.text,
        extractor=extractor,
    )
    # Deduplicate near-identical texts (Twitter is full of retweets; a
    # panel of ten copies of one tweet is useless). URLs are stripped from
    # the dedup key: the same reaction with ten different shortened links
    # is still one reaction.
    import re

    panel: list[RelevantTweet] = []
    seen_texts: set[str] = set()
    for tweet, similarity in ranked:
        stripped = re.sub(r"https?://\S+", "", tweet.text.lower())
        stripped = re.sub(r"^rt @\w+:\s*", "", stripped)
        normalized = " ".join(stripped.split())
        if normalized in seen_texts:
            continue
        seen_texts.add(normalized)
        panel.append(
            RelevantTweet(
                tweet=tweet,
                similarity=round(similarity, 6),
                sentiment=sentiment_of[id(tweet)],
            )
        )
        if len(panel) >= limit:
            break
    return panel
