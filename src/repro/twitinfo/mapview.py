"""The Tweet Map panel.

Section 3.3: "The Tweet Map displays tweets that provide geolocation
metadata. The marker for each tweet is colored according to its sentiment,
and clicking on a pin reveals the associated tweet." The motivating
example: clusters around New York and Boston during a Red Sox–Yankees
game, with per-region sentiment differing peak by peak.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

from repro.geo.bbox import BoundingBox


@dataclass(frozen=True)
class MapMarker:
    """One pin: location, sentiment color, and the tweet behind it."""

    lat: float
    lon: float
    sentiment: int  # +1 / 0 / -1
    timestamp: float
    text: str

    @property
    def color(self) -> str:
        """The interface's marker color (blue/red/white as in §3.2)."""
        if self.sentiment > 0:
            return "blue"
        if self.sentiment < 0:
            return "red"
        return "white"


@dataclass
class MapView:
    """Time-indexed geo markers with range and region queries."""

    _markers: list[MapMarker] = field(default_factory=list)
    _times: list[float] = field(default_factory=list)

    def add(self, marker: MapMarker) -> None:
        """Add a marker (markers must arrive in time order)."""
        if self._times and marker.timestamp < self._times[-1]:
            index = bisect.bisect_right(self._times, marker.timestamp)
            self._times.insert(index, marker.timestamp)
            self._markers.insert(index, marker)
            return
        self._times.append(marker.timestamp)
        self._markers.append(marker)

    def __len__(self) -> int:
        return len(self._markers)

    def markers(
        self,
        start: float | None = None,
        end: float | None = None,
        box: BoundingBox | None = None,
        limit: int | None = None,
    ) -> list[MapMarker]:
        """Markers in [start, end), optionally inside a region, time order."""
        lo = 0 if start is None else bisect.bisect_left(self._times, start)
        hi = len(self._times) if end is None else bisect.bisect_left(self._times, end)
        selected = self._markers[lo:hi]
        if box is not None:
            selected = [m for m in selected if box.contains(m.lat, m.lon)]
        return selected[:limit] if limit is not None else selected

    def sentiment_by_region(
        self,
        boxes: dict[str, BoundingBox],
        start: float | None = None,
        end: float | None = None,
    ) -> dict[str, tuple[int, int, int]]:
        """(positive, negative, neutral) marker counts per named region —
        the "opinion differs by geographic region" drill-down."""
        result: dict[str, tuple[int, int, int]] = {}
        for name, box in boxes.items():
            positive = negative = neutral = 0
            for marker in self.markers(start, end, box):
                if marker.sentiment > 0:
                    positive += 1
                elif marker.sentiment < 0:
                    negative += 1
                else:
                    neutral += 1
            result[name] = (positive, negative, neutral)
        return result
