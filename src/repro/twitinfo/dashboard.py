"""Dashboard assembly and rendering.

The Figure-1 interface as a data object plus three renderers:

- :meth:`Dashboard.to_json` — the structure a web front end would consume,
- :meth:`Dashboard.render_text` — a terminal dashboard (timeline
  sparkline, flagged peaks with key terms, colored tweet list, pie
  numbers, links, map cluster counts),
- :meth:`Dashboard.render_html` — a single self-contained HTML page with
  an inline SVG timeline, peak flags, and all panels.
"""

from __future__ import annotations

import html
import json
from dataclasses import dataclass

from repro.clock import format_timestamp
from repro.fidelity.coverage import CoverageEstimate
from repro.twitinfo.event import PeakAnnotation
from repro.twitinfo.links import PopularLink
from repro.twitinfo.mapview import MapMarker
from repro.twitinfo.relevance import RelevantTweet
from repro.twitinfo.sentiment_view import SentimentSummary
from repro.twitinfo.timeline import Timeline


@dataclass
class Dashboard:
    """One rendered view of an event (whole event or one peak)."""

    event_name: str
    keywords: tuple[str, ...]
    window: tuple[float | None, float | None]
    selected_peak: PeakAnnotation | None
    timeline: Timeline
    peaks: list[PeakAnnotation]
    relevant: list[RelevantTweet]
    sentiment: SentimentSummary
    links: list[PopularLink]
    markers: list[MapMarker]
    #: Stream-coverage estimate for the event's query, when the run path
    #: recorded one (None for loaded events or still-running queries).
    coverage: CoverageEstimate | None = None

    # -- structured -----------------------------------------------------------

    def to_json(self) -> dict:
        """JSON-serializable dashboard state."""
        positive_share, negative_share = self.sentiment.proportions()
        return {
            "event": self.event_name,
            "keywords": list(self.keywords),
            "window": list(self.window),
            "selected_peak": self.selected_peak.label if self.selected_peak else None,
            "timeline": [
                {"start": start, "count": count}
                for start, count in self.timeline.bins()
            ],
            "peaks": [
                {
                    "label": peak.label,
                    "start": peak.start,
                    "end": peak.end,
                    "apex_time": peak.apex_time,
                    "apex_count": peak.apex_count,
                    "terms": list(peak.terms),
                }
                for peak in self.peaks
            ],
            "relevant_tweets": [
                {
                    "text": entry.tweet.text,
                    "similarity": entry.similarity,
                    "sentiment": entry.sentiment,
                    "color": entry.color,
                    "created_at": entry.tweet.created_at,
                }
                for entry in self.relevant
            ],
            "sentiment": {
                "positive": self.sentiment.positive,
                "negative": self.sentiment.negative,
                "neutral": self.sentiment.neutral,
                "pie": {"positive": positive_share, "negative": negative_share},
            },
            "popular_links": [
                {"url": link.url, "count": link.count} for link in self.links
            ],
            "map": [
                {
                    "lat": marker.lat,
                    "lon": marker.lon,
                    "color": marker.color,
                    "text": marker.text,
                }
                for marker in self.markers[:200]
            ],
            "coverage": (
                self.coverage.as_dict() if self.coverage is not None else None
            ),
        }

    def to_json_text(self, indent: int = 2) -> str:
        """The JSON dashboard as text."""
        return json.dumps(self.to_json(), indent=indent)

    # -- text -----------------------------------------------------------------

    def render_text(self, width: int = 72) -> str:
        """A terminal rendering of the dashboard."""
        lines: list[str] = []
        title = f"TwitInfo: {self.event_name}"
        if self.selected_peak is not None:
            title += f"  [peak {self.selected_peak.label}]"
        lines.append(title)
        lines.append("=" * len(title))
        lines.append(f"keywords: {', '.join(self.keywords)}")
        start, end = self.window
        if start is not None and end is not None:
            lines.append(
                f"window:   {format_timestamp(start)} → {format_timestamp(end)}"
            )
        lines.append("")
        lines.append("Timeline (tweets/bin):")
        lines.append("  " + self.timeline.sparkline(width - 4))
        lines.append("")
        if self.peaks:
            lines.append("Peaks:")
            for peak in self.peaks:
                terms = ", ".join(peak.terms) or "—"
                marker = "*" if (
                    self.selected_peak and peak.label == self.selected_peak.label
                ) else " "
                lines.append(
                    f" {marker}[{peak.label}] {format_timestamp(peak.apex_time)}"
                    f"  apex {peak.apex_count:.0f}  terms: {terms}"
                )
            lines.append("")
        positive_share, negative_share = self.sentiment.proportions()
        lines.append(
            "Overall sentiment: "
            f"{self.sentiment.positive}+ / {self.sentiment.negative}- / "
            f"{self.sentiment.neutral}·  "
            f"(pie: {positive_share:.0%} positive, {negative_share:.0%} negative)"
        )
        lines.append("")
        if self.links:
            lines.append("Popular links:")
            for link in self.links:
                lines.append(f"  {link.count:>5}  {link.url}")
            lines.append("")
        if self.relevant:
            lines.append("Relevant tweets:")
            for entry in self.relevant:
                mark = {"blue": "+", "red": "-", "white": "·"}[entry.color]
                text = entry.tweet.text
                if len(text) > width - 10:
                    text = text[: width - 11] + "…"
                lines.append(f"  {mark} ({entry.similarity:.2f}) {text}")
            lines.append("")
        lines.append(f"Map: {len(self.markers)} geotagged tweets")
        if self.coverage is not None:
            lines.append(
                f"Coverage: {self.coverage.coverage:.1%} of matching tweets "
                f"delivered (95% CI {self.coverage.ci_low:.1%}–"
                f"{self.coverage.ci_high:.1%})"
            )
        return "\n".join(lines)

    # -- html -----------------------------------------------------------------

    def render_html(self) -> str:
        """A self-contained HTML page with an SVG timeline and all panels."""
        bins = self.timeline.bins()
        svg = self._timeline_svg(bins, width=720, height=160)
        positive_share, negative_share = self.sentiment.proportions()
        peak_rows = "".join(
            f"<tr><td><b>{html.escape(p.label)}</b></td>"
            f"<td>{format_timestamp(p.apex_time)}</td>"
            f"<td>{p.apex_count:.0f}</td>"
            f"<td>{html.escape(', '.join(p.terms))}</td></tr>"
            for p in self.peaks
        )
        tweet_rows = "".join(
            f'<li class="{e.color}">({e.similarity:.2f}) '
            f"{html.escape(e.tweet.text)}</li>"
            for e in self.relevant
        )
        link_rows = "".join(
            f"<li>{l.count} × <code>{html.escape(l.url)}</code></li>"
            for l in self.links
        )
        marker_rows = "".join(
            f'<circle cx="{360 + m.lon * 2:.1f}" cy="{90 - m.lat:.1f}" r="2" '
            f'fill="{"steelblue" if m.color == "blue" else "indianred" if m.color == "red" else "#bbb"}">'
            f"<title>{html.escape(m.text)}</title></circle>"
            for m in self.markers[:500]
        )
        selected = (
            f" — peak {html.escape(self.selected_peak.label)}"
            if self.selected_peak
            else ""
        )
        return f"""<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>TwitInfo: {html.escape(self.event_name)}</title>
<style>
body {{ font-family: Helvetica, Arial, sans-serif; margin: 2em; color: #222; }}
h1 {{ font-size: 1.4em; }} h2 {{ font-size: 1.1em; margin-top: 1.4em; }}
li.blue {{ color: #1f5fa8; }} li.red {{ color: #b03030; }} li.white {{ color: #555; }}
table {{ border-collapse: collapse; }} td {{ padding: 2px 10px; border-bottom: 1px solid #eee; }}
.pie {{ display: inline-block; width: 120px; height: 120px; border-radius: 50%;
  background: conic-gradient(#1f5fa8 0 {positive_share * 360:.0f}deg,
  #b03030 {positive_share * 360:.0f}deg 360deg); }}
</style></head><body>
<h1>TwitInfo: {html.escape(self.event_name)}{selected}</h1>
<p>keywords: {html.escape(', '.join(self.keywords))}</p>
<h2>Event timeline</h2>{svg}
<h2>Peaks</h2><table><tr><th>flag</th><th>apex</th><th>tweets</th><th>key terms</th></tr>{peak_rows}</table>
<h2>Overall sentiment</h2>
<div class="pie"></div>
<p>{self.sentiment.positive} positive / {self.sentiment.negative} negative /
{self.sentiment.neutral} neutral ({positive_share:.0%} / {negative_share:.0%} of polarized)</p>
<h2>Popular links</h2><ol>{link_rows}</ol>
<h2>Relevant tweets</h2><ul>{tweet_rows}</ul>
<h2>Tweet map ({len(self.markers)} geotagged)</h2>
<svg width="720" height="200" viewBox="0 0 720 180" style="background:#eef4f8">{marker_rows}</svg>
</body></html>"""

    def _timeline_svg(
        self, bins: list[tuple[float, int]], width: int, height: int
    ) -> str:
        if not bins:
            return "<svg width='720' height='160'></svg>"
        top = max(count for _s, count in bins) or 1
        t0 = bins[0][0]
        t1 = bins[-1][0] + self.timeline.bin_seconds
        span = max(1.0, t1 - t0)

        def x(t: float) -> float:
            return (t - t0) / span * (width - 20) + 10

        def y(c: float) -> float:
            return height - 20 - (c / top) * (height - 40)

        points = " ".join(
            f"{x(start + self.timeline.bin_seconds / 2):.1f},{y(count):.1f}"
            for start, count in bins
        )
        flags = "".join(
            f'<g><line x1="{x(p.apex_time):.1f}" y1="{y(p.apex_count):.1f}" '
            f'x2="{x(p.apex_time):.1f}" y2="14" stroke="#b03030"/>'
            f'<text x="{x(p.apex_time) + 3:.1f}" y="12" font-size="11" '
            f'fill="#b03030">{html.escape(p.label)}</text></g>'
            for p in self.peaks
        )
        return (
            f'<svg width="{width}" height="{height}" '
            f'style="background:#fafafa;border:1px solid #ddd">'
            f'<polyline points="{points}" fill="none" stroke="#1f5fa8" '
            f'stroke-width="1.5"/>{flags}</svg>'
        )
