"""Event definitions.

Section 3.1: "TwitInfo users define an event by specifying a Twitter
keyword query … Users give the event a human-readable name … as well as an
optional time window. When users are done entering the information,
TwitInfo saves the event and begins logging tweets matching the query."
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class EventDefinition:
    """A TwitInfo event specification.

    Attributes:
        name: human-readable name ("Soccer: Manchester City vs. Liverpool").
        keywords: the tracked keyword query terms.
        start/end: optional time window; None means unbounded on that side.
        bin_seconds: timeline bin width (TwitInfo binned by the minute for
            games, coarser for long events).
    """

    name: str
    keywords: tuple[str, ...]
    start: float | None = None
    end: float | None = None
    bin_seconds: float = 60.0

    def __post_init__(self) -> None:
        if not self.keywords:
            raise ValueError("an event needs at least one keyword")
        if any(not k.strip() for k in self.keywords):
            raise ValueError("keywords must be non-empty")
        if (
            self.start is not None
            and self.end is not None
            and self.end <= self.start
        ):
            raise ValueError("event end must be after start")
        if self.bin_seconds <= 0:
            raise ValueError("bin_seconds must be positive")
        object.__setattr__(
            self, "keywords", tuple(k.strip() for k in self.keywords)
        )

    def to_tweeql(self, into: str | None = None) -> str:
        """The TweeQL query that logs this event's tweets.

        Exactly the shape the paper shows: keyword containment filters,
        OR-ed together, optionally bounded by the event window.
        """
        predicate = " OR ".join(
            "text contains '{}'".format(keyword.replace("'", "''"))
            for keyword in self.keywords
        )
        clauses = [f"({predicate})"]
        if self.start is not None:
            clauses.append(f"created_at >= {self.start:.0f}")
        if self.end is not None:
            clauses.append(f"created_at < {self.end:.0f}")
        sql = f"SELECT * FROM twitter WHERE {' AND '.join(clauses)}"
        if into:
            sql += f" INTO {into}"
        return sql + ";"

    def in_window(self, timestamp: float) -> bool:
        """Whether a timestamp falls inside the event's (optional) window."""
        if self.start is not None and timestamp < self.start:
            return False
        if self.end is not None and timestamp >= self.end:
            return False
        return True


@dataclass
class PeakAnnotation:
    """A detected peak joined with its automatic labels (Figure 1's flags
    and the key-term list to the right of the timeline)."""

    label: str
    start: float
    end: float
    apex_time: float
    apex_count: float
    terms: tuple[str, ...] = field(default_factory=tuple)

    def matches_search(self, needle: str) -> bool:
        """Text search over key terms (the interface's peak search box)."""
        folded = needle.casefold()
        return any(folded in term.casefold() for term in self.terms)
