"""The Popular Links panel.

Section 3.3: "Twitter users share links as a story unfolds. The Popular
Links panel aggregates the top three URLs extracted from tweets in the
timeframe being explored."

:class:`LinkAggregator` keeps exact per-URL counts with timestamps (an
event page's link set is small) so any timeframe can be queried; a
:class:`~repro.storage.topk.SpaceSaving` sketch guards the memory of very
long-running events by capping the distinct-URL set it tracks exactly.
"""

from __future__ import annotations

import bisect
from collections import defaultdict
from dataclasses import dataclass, field

from repro.storage.topk import SpaceSaving


@dataclass(frozen=True)
class PopularLink:
    """One ranked URL with its count in the queried timeframe."""

    url: str
    count: int


@dataclass
class LinkAggregator:
    """Time-indexed URL counts with top-k queries over any timeframe.

    Attributes:
        exact_urls: number of distinct URLs tracked exactly; once exceeded,
            new URLs only feed the Space-Saving sketch (whose top-k then
            answers whole-event queries approximately).
    """

    exact_urls: int = 10_000
    _times: dict[str, list[float]] = field(default_factory=lambda: defaultdict(list))
    _sketch: SpaceSaving = field(default_factory=lambda: SpaceSaving(capacity=512))

    def add(self, url: str, timestamp: float) -> None:
        """Record one URL mention at a time (must arrive in time order
        per URL for range queries to be exact)."""
        self._sketch.add(url)
        if url in self._times or len(self._times) < self.exact_urls:
            self._times[url].append(timestamp)

    @property
    def distinct(self) -> int:
        """Distinct URLs tracked exactly."""
        return len(self._times)

    def top(
        self, k: int = 3, start: float | None = None, end: float | None = None
    ) -> list[PopularLink]:
        """Top-``k`` URLs within [start, end) (whole event when omitted)."""
        ranked: list[PopularLink] = []
        for url, times in self._times.items():
            lo = 0 if start is None else bisect.bisect_left(times, start)
            hi = len(times) if end is None else bisect.bisect_left(times, end)
            count = hi - lo
            if count > 0:
                ranked.append(PopularLink(url=url, count=count))
        ranked.sort(key=lambda link: (-link.count, link.url))
        return ranked[:k]

    def top_sketched(self, k: int = 3) -> list[PopularLink]:
        """Whole-event top-``k`` from the bounded-memory sketch."""
        return [
            PopularLink(url=str(item.item), count=item.count)
            for item in self._sketch.top(k)
        ]
