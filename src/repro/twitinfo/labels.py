"""Automatic peak labeling.

Section 3.2: peaks "appear to the right of the timeline along with
automatically-generated key terms that appear frequently in tweets during
the peak. For example … TwitInfo automatically tags one of the goals … and
annotates it … with representative terms in the tweets like '3-0' (the new
score) and 'Tevez' (the soccer player who scored)."

The labeler scores terms inside the peak window by TF-IDF against the
event's background traffic (see :mod:`repro.nlp.keywords`), additionally
suppressing the event's own tracked keywords — "soccer" is frequent in
every window of a soccer event and tells the user nothing about *this*
peak.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.nlp.keywords import KeywordExtractor, ScoredTerm
from repro.twitinfo.event import EventDefinition, PeakAnnotation
from repro.twitinfo.peaks import Peak


class PeakLabeler:
    """Maintains the event's background model and labels peaks.

    Feed every event tweet through :meth:`observe`; call :meth:`annotate`
    with a peak and the texts inside its window.
    """

    def __init__(self, event: EventDefinition, terms_per_peak: int = 5) -> None:
        self._event = event
        self._extractor = KeywordExtractor()
        self._terms_per_peak = terms_per_peak
        self._suppressed = {k.lower() for k in event.keywords}

    @property
    def extractor(self) -> KeywordExtractor:
        """The underlying background model (shared with relevance ranking)."""
        return self._extractor

    def observe(self, text: str) -> None:
        """Add one event tweet to the background model."""
        self._extractor.observe(text)

    def observe_all(self, texts: Iterable[str]) -> None:
        self._extractor.observe_all(texts)

    def key_terms(self, texts: Sequence[str]) -> list[ScoredTerm]:
        """Top TF-IDF terms for a window, minus the tracked keywords."""
        scored = self._extractor.extract(
            texts, k=self._terms_per_peak + len(self._suppressed)
        )
        filtered = [
            term for term in scored if term.term not in self._suppressed
        ]
        return filtered[: self._terms_per_peak]

    def annotate(self, peak: Peak, texts: Sequence[str]) -> PeakAnnotation:
        """Build the flagged, labeled peak for the interface."""
        terms = tuple(term.term for term in self.key_terms(texts))
        return PeakAnnotation(
            label=peak.label,
            start=peak.start,
            end=peak.end,
            apex_time=peak.apex_time,
            apex_count=peak.apex_count,
            terms=terms,
        )
