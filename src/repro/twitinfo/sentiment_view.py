"""The Overall Sentiment panel.

Section 3.3: "The Overall Sentiment panel displays a piechart representing
the total proportion of positive and negative tweets during the event."

The companion TwitInfo paper additionally corrects the raw counts for the
classifier's unequal per-class recall (a classifier that finds negatives
more reliably than positives would skew every pie negative); the
:class:`SentimentSummary` supports that correction when recall estimates
are supplied.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class SentimentSummary:
    """Counts of classified tweets and derived pie proportions."""

    positive: int = 0
    negative: int = 0
    neutral: int = 0

    def add(self, label: int) -> None:
        """Count one classified tweet (+1 / -1 / 0)."""
        if label > 0:
            self.positive += 1
        elif label < 0:
            self.negative += 1
        else:
            self.neutral += 1

    @property
    def total(self) -> int:
        return self.positive + self.negative + self.neutral

    @property
    def classified(self) -> int:
        """Tweets that expressed a polarity."""
        return self.positive + self.negative

    def proportions(self) -> tuple[float, float]:
        """(positive, negative) shares of polarized tweets — the pie chart.

        (0.0, 0.0) when nothing was polarized.
        """
        if not self.classified:
            return (0.0, 0.0)
        return (
            self.positive / self.classified,
            self.negative / self.classified,
        )

    def corrected_proportions(
        self, recall_positive: float, recall_negative: float
    ) -> tuple[float, float]:
        """Recall-corrected pie shares.

        If the classifier only recognizes a fraction r⁺ of true positives
        and r⁻ of true negatives, the observed counts understate each class
        by that factor; dividing by recall re-inflates them before
        normalizing (the TwitInfo CHI'11 correction).
        """
        if recall_positive <= 0 or recall_negative <= 0:
            raise ValueError("recall estimates must be positive")
        adjusted_positive = self.positive / recall_positive
        adjusted_negative = self.negative / recall_negative
        denominator = adjusted_positive + adjusted_negative
        if denominator == 0:
            return (0.0, 0.0)
        return (
            adjusted_positive / denominator,
            adjusted_negative / denominator,
        )

    def confusion_corrected_proportions(
        self, confusion: list[list[float]]
    ) -> tuple[float, float]:
        """De-biased pie shares using a full confusion matrix.

        ``confusion`` is row-normalized P(predicted | true) over
        (positive, negative, neutral) — see
        :meth:`repro.nlp.sentiment.SentimentClassifier.confusion_matrix`.
        The observed label counts satisfy ``observed = confusionᵀ · true``;
        inverting recovers estimated true counts, correcting both missed
        detections (recall) *and* false positives (precision) — the failure
        mode simple recall scaling cannot fix.

        Estimated negative counts are clamped at zero before normalizing.
        """
        import numpy

        matrix = numpy.asarray(confusion, dtype=float).T
        observed = numpy.asarray(
            [self.positive, self.negative, self.neutral], dtype=float
        )
        try:
            estimated = numpy.linalg.solve(matrix, observed)
        except numpy.linalg.LinAlgError:
            return self.proportions()
        estimated = numpy.clip(estimated, 0.0, None)
        polarized = estimated[0] + estimated[1]
        if polarized <= 0:
            return (0.0, 0.0)
        return (
            float(estimated[0] / polarized),
            float(estimated[1] / polarized),
        )

    def merged(self, other: "SentimentSummary") -> "SentimentSummary":
        """Combine two summaries (e.g. across shards)."""
        return SentimentSummary(
            positive=self.positive + other.positive,
            negative=self.negative + other.negative,
            neutral=self.neutral + other.neutral,
        )
