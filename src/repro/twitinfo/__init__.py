"""TwitInfo: event timelines over the TweeQL stream processor.

The application of Section 3 of the paper:

- :mod:`repro.twitinfo.event` — event definitions (keywords, name, window),
- :mod:`repro.twitinfo.timeline` — tweet-volume binning,
- :mod:`repro.twitinfo.peaks` — streaming mean-deviation peak detection,
- :mod:`repro.twitinfo.labels` — automatic key terms per peak,
- :mod:`repro.twitinfo.sentiment_view` — the Overall Sentiment pie,
- :mod:`repro.twitinfo.links` — the Popular Links panel,
- :mod:`repro.twitinfo.mapview` — the sentiment-colored Tweet Map,
- :mod:`repro.twitinfo.relevance` — the Relevant Tweets ranking,
- :mod:`repro.twitinfo.dashboard` — panel assembly and rendering,
- :mod:`repro.twitinfo.app` — the application gluing it to TweeQL.
"""

from repro.twitinfo.app import EventReport, TwitInfoApp
from repro.twitinfo.event import EventDefinition
from repro.twitinfo.peaks import Peak, PeakDetector
from repro.twitinfo.timeline import Timeline

__all__ = [
    "EventReport",
    "TwitInfoApp",
    "EventDefinition",
    "Peak",
    "PeakDetector",
    "Timeline",
]
