"""Streaming peak detection.

The paper: "TwitInfo's peak detection algorithm is a stateful TweeQL UDF
that performs streaming mean deviation detection over the aggregate tweet
count." The companion TwitInfo paper (CHI 2011) spells the algorithm out;
it adapts TCP's round-trip-time estimator:

- keep exponentially weighted estimates of the per-bin tweet count's mean
  and mean deviation (update factor ``alpha``, TCP's classic 0.125);
- flag a peak when a bin exceeds the mean by more than ``tau`` mean
  deviations;
- while the count keeps climbing, track the apex; the peak window ends
  when the count falls back to the pre-peak mean (or the stream moves on
  longer than ``max_duration_bins``);
- during a flagged peak, updates to the mean/deviation estimates use a
  larger update factor so the detector recovers quickly after a burst
  (otherwise one goal suppresses detection of the next).

Peaks are labeled "A", "B", … in detection order, exactly like the flags
in Figure 1 of the demo paper.
"""

from __future__ import annotations

import string
from dataclasses import dataclass, field


@dataclass
class Peak:
    """One detected peak.

    Attributes:
        label: "A", "B", … in detection order ("AA" after "Z").
        start: bin timestamp where the peak began (first flagged bin).
        apex_time: bin timestamp of the maximum count.
        apex_count: that maximum count.
        end: bin timestamp where the peak window closed (exclusive).
        onset_mean: the running mean just before detection — the baseline
            the spike rose from.
        score: deviation score at detection ((count − mean) / meandev).
    """

    label: str
    start: float
    apex_time: float
    apex_count: float
    end: float
    onset_mean: float
    score: float
    closed: bool = False

    @property
    def window(self) -> tuple[float, float]:
        """[start, end) time range of the peak."""
        return (self.start, self.end)

    def contains(self, timestamp: float) -> bool:
        return self.start <= timestamp < self.end


def _peak_label(index: int) -> str:
    """0 → 'A', 25 → 'Z', 26 → 'AA', …"""
    letters = string.ascii_uppercase
    label = ""
    index += 1
    while index > 0:
        index, remainder = divmod(index - 1, 26)
        label = letters[remainder] + label
    return label


@dataclass
class PeakDetectorParams:
    """Tunable knobs (ablated in benchmark E6).

    Attributes:
        alpha: EWMA update factor outside peaks (TCP's 0.125).
        peak_alpha: update factor while inside a peak window (faster, so
            the baseline catches up and consecutive events both register).
        tau: detection threshold in mean deviations.
        min_count: bins below this count never open a peak (suppresses
            flapping on near-zero traffic).
        max_duration_bins: hard cap on a peak window's length.
    """

    alpha: float = 0.125
    peak_alpha: float = 0.5
    tau: float = 2.0
    min_count: float = 10.0
    max_duration_bins: int = 30

    def __post_init__(self) -> None:
        if not 0 < self.alpha <= 1 or not 0 < self.peak_alpha <= 1:
            raise ValueError("alpha values must be in (0, 1]")
        if self.tau <= 0:
            raise ValueError("tau must be positive")
        if self.max_duration_bins <= 0:
            raise ValueError("max_duration_bins must be positive")


@dataclass
class PeakDetector:
    """Streaming mean-deviation peak detector over binned counts.

    Feed bins in time order with :meth:`update`; it returns the
    :class:`Peak` *opened* by that bin, if any. :attr:`peaks` accumulates
    every peak found; open peaks are finalized by later bins or
    :meth:`finish`.
    """

    params: PeakDetectorParams = field(default_factory=PeakDetectorParams)
    bin_seconds: float = 60.0

    def __post_init__(self) -> None:
        self._mean: float | None = None
        self._meandev: float | None = None
        self._open: Peak | None = None
        self._open_bins = 0
        self._last_count: float | None = None
        self.peaks: list[Peak] = []

    @property
    def mean(self) -> float | None:
        """Current baseline estimate (None before the first bin)."""
        return self._mean

    @property
    def meandev(self) -> float | None:
        """Current mean-deviation estimate."""
        return self._meandev

    def update(self, bin_start: float, count: float) -> Peak | None:
        """Consume one time bin; returns a newly *opened* peak, or None."""
        params = self.params
        opened: Peak | None = None
        closed_now = False

        if self._mean is None or self._meandev is None:
            # Bootstrap from the first bin, like the CHI'11 algorithm.
            self._mean = count
            self._meandev = max(1.0, count / 2.0)
            self._last_count = count
            return None

        deviation_score = (count - self._mean) / self._meandev if self._meandev else 0.0

        if self._open is None:
            if deviation_score > params.tau and count >= params.min_count:
                opened = Peak(
                    label=_peak_label(len(self.peaks)),
                    start=bin_start,
                    apex_time=bin_start,
                    apex_count=count,
                    end=bin_start + self.bin_seconds,
                    onset_mean=self._mean,
                    score=deviation_score,
                )
                self._open = opened
                self._open_bins = 1
                self.peaks.append(opened)
        else:
            peak = self._open
            self._open_bins += 1
            if count > peak.apex_count:
                peak.apex_count = count
                peak.apex_time = bin_start
            over_cap = self._open_bins >= params.max_duration_bins
            receded = count <= max(peak.onset_mean, params.min_count / 2)
            declining = (
                self._last_count is not None
                and count < self._last_count
                and count <= peak.onset_mean + (peak.apex_count - peak.onset_mean) * 0.15
            )
            if receded or declining or over_cap:
                peak.end = bin_start + self.bin_seconds
                peak.closed = True
                self._open = None
                closed_now = True
            else:
                peak.end = bin_start + self.bin_seconds

        # Update the running estimates; faster inside a peak window. The
        # bin that *closes* a peak is still part of the burst (its count
        # triggered the close), so it too is absorbed at peak_alpha —
        # otherwise the slow alpha leaves the baseline inflated and a
        # quick second burst scores against the wrong mean.
        alpha = (
            params.peak_alpha
            if (self._open is not None or closed_now)
            else params.alpha
        )
        deviation = abs(count - self._mean)
        self._meandev = alpha * deviation + (1 - alpha) * self._meandev
        # Floor at one tweet of deviation: a perfectly flat synthetic stream
        # must not make an epsilon bump score astronomically.
        self._meandev = max(self._meandev, 1.0)
        self._mean = alpha * count + (1 - alpha) * self._mean
        self._last_count = count
        return opened

    def finish(self) -> None:
        """Close any still-open peak at end of stream."""
        if self._open is not None:
            self._open.closed = True
            self._open = None

    def run(self, bins: list[tuple[float, float]]) -> list[Peak]:
        """Convenience: run over (bin_start, count) pairs and finish."""
        for bin_start, count in bins:
            self.update(bin_start, count)
        self.finish()
        return self.peaks
