"""Streaming peak detection.

The paper: "TwitInfo's peak detection algorithm is a stateful TweeQL UDF
that performs streaming mean deviation detection over the aggregate tweet
count." The companion TwitInfo paper (CHI 2011) spells the algorithm out;
it adapts TCP's round-trip-time estimator:

- keep exponentially weighted estimates of the per-bin tweet count's mean
  and mean deviation (update factor ``alpha``, TCP's classic 0.125);
- flag a peak when a bin exceeds the mean by more than ``tau`` mean
  deviations;
- while the count keeps climbing, track the apex; the peak window ends
  when the count falls back to the pre-peak mean (or the stream moves on
  longer than ``max_duration_bins``);
- during a flagged peak, updates to the mean/deviation estimates use a
  larger update factor so the detector recovers quickly after a burst
  (otherwise one goal suppresses detection of the next).

Peaks are labeled "A", "B", … in detection order, exactly like the flags
in Figure 1 of the demo paper.
"""

from __future__ import annotations

import string
from dataclasses import dataclass, field, replace


@dataclass
class Peak:
    """One detected peak.

    Attributes:
        label: "A", "B", … in detection order ("AA" after "Z").
        start: bin timestamp where the peak began (first flagged bin).
        apex_time: bin timestamp of the maximum count.
        apex_count: that maximum count.
        end: bin timestamp where the peak window closed (exclusive).
        onset_mean: the running mean just before detection — the baseline
            the spike rose from.
        score: deviation score at detection ((count − mean) / meandev).
    """

    label: str
    start: float
    apex_time: float
    apex_count: float
    end: float
    onset_mean: float
    score: float
    closed: bool = False

    @property
    def window(self) -> tuple[float, float]:
        """[start, end) time range of the peak."""
        return (self.start, self.end)

    def contains(self, timestamp: float) -> bool:
        return self.start <= timestamp < self.end


def _peak_label(index: int) -> str:
    """0 → 'A', 25 → 'Z', 26 → 'AA', …"""
    letters = string.ascii_uppercase
    label = ""
    index += 1
    while index > 0:
        index, remainder = divmod(index - 1, 26)
        label = letters[remainder] + label
    return label


@dataclass
class PeakDetectorParams:
    """Tunable knobs (ablated in benchmark E6).

    Attributes:
        alpha: EWMA update factor outside peaks (TCP's 0.125).
        peak_alpha: update factor while inside a peak window (faster, so
            the baseline catches up and consecutive events both register).
        tau: detection threshold in mean deviations.
        min_count: bins below this count never open a peak (suppresses
            flapping on near-zero traffic).
        max_duration_bins: hard cap on a peak window's length.
        min_support: number of *consecutive* qualifying bins required
            before a peak opens. 1 (the default) opens on the first
            qualifying bin, exactly the CHI'11 behaviour; 2+ makes the
            detector ignore single-bin spikes — the phantom peaks a
            thinned (sampled) stream's shot noise produces.
        close_grace_bins: number of extra consecutive "should close" bins
            tolerated before the window actually closes. 0 (the default)
            closes immediately; 1+ rides out single-bin dips — the split
            peaks sampling jitter carves out of one real burst. The
            ``max_duration_bins`` cap always closes immediately.
        min_lift: candidate bins must also exceed ``min_lift`` × the
            onset mean. 1.0 (the default) is implied by the tau test and
            changes nothing; 1.5 rejects the upper-tail Poisson bins a
            busy-but-flat stream throws (on a mean of 50, a 3-sigma bin
            is only ~1.4× the mean — noise, not an event).
    """

    alpha: float = 0.125
    peak_alpha: float = 0.5
    tau: float = 2.0
    min_count: float = 10.0
    max_duration_bins: int = 30
    min_support: int = 1
    close_grace_bins: int = 0
    min_lift: float = 1.0

    def __post_init__(self) -> None:
        if not 0 < self.alpha <= 1 or not 0 < self.peak_alpha <= 1:
            raise ValueError("alpha values must be in (0, 1]")
        if self.tau <= 0:
            raise ValueError("tau must be positive")
        if self.max_duration_bins <= 0:
            raise ValueError("max_duration_bins must be positive")
        if self.min_support < 1:
            raise ValueError("min_support must be at least 1")
        if self.close_grace_bins < 0:
            raise ValueError("close_grace_bins must be non-negative")
        if self.min_lift < 1.0:
            raise ValueError("min_lift must be at least 1.0")

    @classmethod
    def for_sampled_stream(
        cls, rate: float, base: "PeakDetectorParams | None" = None
    ) -> "PeakDetectorParams":
        """Parameters hardened for a stream thinned to ``rate``.

        Scales ``min_count`` by the sampling rate (a 1% sample of a
        1000-tweet burst is ~10 tweets) with a floor of 3, and turns on
        minimum support + close hysteresis so shot noise neither phantoms
        nor splits peaks. At ``rate=1.0`` the hysteresis knobs are still
        applied (so a firehose pass and a sampled pass run the *same*
        detector, differing only in ``min_count``).
        """
        if not 0.0 < rate <= 1.0:
            raise ValueError("rate must be in (0, 1]")
        base = base if base is not None else cls()
        return replace(
            base,
            min_count=max(3.0, base.min_count * rate),
            min_support=2,
            close_grace_bins=2,
            min_lift=1.5,
        )


@dataclass
class PeakDetector:
    """Streaming mean-deviation peak detector over binned counts.

    Feed bins in time order with :meth:`update`; it returns the
    :class:`Peak` *opened* by that bin, if any. :attr:`peaks` accumulates
    every peak found; open peaks are finalized by later bins or
    :meth:`finish`.
    """

    params: PeakDetectorParams = field(default_factory=PeakDetectorParams)
    bin_seconds: float = 60.0

    def __post_init__(self) -> None:
        self._mean: float | None = None
        self._meandev: float | None = None
        self._open: Peak | None = None
        self._open_bins = 0
        self._last_count: float | None = None
        self.peaks: list[Peak] = []
        # min_support > 1 state: candidate bins seen so far, plus the
        # baseline frozen at the first candidate (qualification must not
        # chase a mean that the burst itself is dragging upward).
        self._pending: list[tuple[float, float]] = []
        self._pending_mean = 0.0
        self._pending_meandev = 1.0
        self._pending_score = 0.0
        # Consecutive "should close" bins currently being forgiven.
        self._close_run = 0

    @property
    def mean(self) -> float | None:
        """Current baseline estimate (None before the first bin)."""
        return self._mean

    @property
    def meandev(self) -> float | None:
        """Current mean-deviation estimate."""
        return self._meandev

    def update(self, bin_start: float, count: float) -> Peak | None:
        """Consume one time bin; returns a newly *opened* peak, or None."""
        params = self.params
        opened: Peak | None = None
        closed_now = False

        if self._mean is None or self._meandev is None:
            # Bootstrap from the first bin, like the CHI'11 algorithm.
            self._mean = count
            self._meandev = max(1.0, count / 2.0)
            self._last_count = count
            return None

        deviation_score = (count - self._mean) / self._meandev if self._meandev else 0.0

        if self._open is None and self._pending:
            # A candidate burst is accumulating support. Qualify against
            # the baseline frozen at the first candidate bin.
            # Schmitt-trigger thresholds: entering took a full tau; staying
            # a candidate only takes tau/2. A decaying burst's second bin
            # rarely re-clears the entry bar on a heavily thinned stream,
            # but genuinely sustained bursts comfortably clear half of it.
            sustained = (
                count >= params.min_count
                and count >= self._pending_mean * params.min_lift
                and self._pending_meandev > 0
                and (count - self._pending_mean) / self._pending_meandev
                > params.tau / 2.0
            )
            if sustained:
                self._pending.append((bin_start, count))
                if len(self._pending) >= params.min_support:
                    first_start, _ = self._pending[0]
                    apex_time, apex_count = max(
                        self._pending, key=lambda item: (item[1], -item[0])
                    )
                    opened = Peak(
                        label=_peak_label(len(self.peaks)),
                        start=first_start,
                        apex_time=apex_time,
                        apex_count=apex_count,
                        end=bin_start + self.bin_seconds,
                        onset_mean=self._pending_mean,
                        score=self._pending_score,
                    )
                    self._open = opened
                    self._open_bins = len(self._pending)
                    self._close_run = 0
                    self._pending = []
                    self.peaks.append(opened)
            else:
                # The spike did not sustain: shot noise, not a peak.
                self._pending = []
        elif self._open is None:
            if (
                deviation_score > params.tau
                and count >= params.min_count
                and count >= self._mean * params.min_lift
            ):
                if params.min_support <= 1:
                    opened = Peak(
                        label=_peak_label(len(self.peaks)),
                        start=bin_start,
                        apex_time=bin_start,
                        apex_count=count,
                        end=bin_start + self.bin_seconds,
                        onset_mean=self._mean,
                        score=deviation_score,
                    )
                    self._open = opened
                    self._open_bins = 1
                    self._close_run = 0
                    self.peaks.append(opened)
                else:
                    self._pending = [(bin_start, count)]
                    self._pending_mean = self._mean
                    self._pending_meandev = self._meandev
                    self._pending_score = deviation_score
        else:
            peak = self._open
            self._open_bins += 1
            if count > peak.apex_count:
                peak.apex_count = count
                peak.apex_time = bin_start
            over_cap = self._open_bins >= params.max_duration_bins
            receded = count <= max(peak.onset_mean, params.min_count / 2)
            declining = (
                self._last_count is not None
                and count < self._last_count
                and count <= peak.onset_mean + (peak.apex_count - peak.onset_mean) * 0.15
            )
            peak.end = bin_start + self.bin_seconds
            if over_cap:
                peak.closed = True
                self._open = None
                closed_now = True
            elif receded or declining:
                # Hysteresis: forgive up to close_grace_bins consecutive
                # dips before really closing (a thinned stream's noise
                # must not split one burst into several windows).
                self._close_run += 1
                if self._close_run > params.close_grace_bins:
                    peak.closed = True
                    self._open = None
                    closed_now = True
            else:
                self._close_run = 0

        # Update the running estimates; faster inside a peak window. The
        # bin that *closes* a peak is still part of the burst (its count
        # triggered the close), so it too is absorbed at peak_alpha —
        # otherwise the slow alpha leaves the baseline inflated and a
        # quick second burst scores against the wrong mean.
        # Pending candidate bins are treated as burst bins too: whether
        # they graduate into a peak or dissolve as noise, their counts
        # should not drag the slow baseline.
        alpha = (
            params.peak_alpha
            if (self._open is not None or closed_now or self._pending)
            else params.alpha
        )
        deviation = abs(count - self._mean)
        self._meandev = alpha * deviation + (1 - alpha) * self._meandev
        # Floor at one tweet of deviation: a perfectly flat synthetic stream
        # must not make an epsilon bump score astronomically.
        self._meandev = max(self._meandev, 1.0)
        self._mean = alpha * count + (1 - alpha) * self._mean
        self._last_count = count
        return opened

    def finish(self) -> None:
        """Close any still-open peak at end of stream."""
        if self._open is not None:
            self._open.closed = True
            self._open = None
        # A candidate run that never reached min_support is not a peak.
        self._pending = []

    def run(self, bins: list[tuple[float, float]]) -> list[Peak]:
        """Convenience: run over (bin_start, count) pairs and finish."""
        for bin_start, count in bins:
            self.update(bin_start, count)
        self.finish()
        return self.peaks
