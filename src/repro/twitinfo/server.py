"""The TwitInfo web application server.

The paper: "Once users have created an event, they can monitor the event
in realtime by navigating to a web page that TwitInfo creates for the
event." This module serves exactly that — a dependency-free
``http.server`` application over a :class:`~repro.twitinfo.app.TwitInfoApp`:

- ``GET /``                         — index of tracked events,
- ``GET /event/<name>``             — the event's dashboard (HTML),
- ``GET /event/<name>?peak=F``      — drilled into one peak,
- ``GET /event/<name>.json``        — the dashboard as JSON (the API a
  richer front end would poll),
- ``GET /event/<name>/peaks?q=term``— peak search by key term (JSON),
- ``GET /metrics``                  — Prometheus-style text exposition of
  every tracked event's counters plus the engine's service stats,
- ``GET /health.json``              — engine-health snapshots persisted
  per virtual-time window into the historical store (filter with
  ``?name=<metric>``; per event at ``/event/<name>/health.json``),
- ``POST /track`` — create and run a new event from form fields ``name``,
  ``keywords`` (comma-separated), optional ``bin_seconds`` — §4's "track
  new terms of interest".

Use :class:`TwitInfoServer` as a context manager in tests/examples; it
runs on a background thread bound to an ephemeral localhost port.
"""

from __future__ import annotations

import html
import json
import threading
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.twitinfo.app import TwitInfoApp


def _make_handler(app: TwitInfoApp):
    class Handler(BaseHTTPRequestHandler):
        server_version = "TwitInfo/0.1"

        def log_message(self, *args) -> None:  # silence test output
            pass

        def _send(self, status: int, body: str, content_type: str) -> None:
            payload = body.encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", f"{content_type}; charset=utf-8")
            self.send_header("Content-Length", str(len(payload)))
            self.end_headers()
            self.wfile.write(payload)

        def _send_json(self, status: int, data) -> None:
            self._send(status, json.dumps(data), "application/json")

        def do_GET(self) -> None:  # noqa: N802 (http.server API)
            parsed = urllib.parse.urlparse(self.path)
            params = urllib.parse.parse_qs(parsed.query)
            parts = [p for p in parsed.path.split("/") if p]
            try:
                if not parts:
                    self._index()
                elif parts[0] == "metrics" and len(parts) == 1:
                    self._metrics()
                elif parts[0] == "health.json" and len(parts) == 1:
                    self._health(None, params)
                elif parts[0] == "event" and len(parts) >= 2:
                    name = urllib.parse.unquote(parts[1])
                    if len(parts) == 3 and parts[2] == "peaks":
                        self._peaks(name, params)
                    elif len(parts) == 3 and parts[2] == "health.json":
                        self._health(name, params)
                    elif name.endswith(".json"):
                        self._dashboard(name[: -len(".json")], params, as_json=True)
                    else:
                        self._dashboard(name, params, as_json=False)
                else:
                    self._send_json(404, {"error": "not found"})
            except KeyError as exc:
                self._send_json(404, {"error": str(exc)})

        def do_POST(self) -> None:  # noqa: N802 (http.server API)
            parsed = urllib.parse.urlparse(self.path)
            if parsed.path.rstrip("/") != "/track":
                self._send_json(404, {"error": "not found"})
                return
            length = int(self.headers.get("Content-Length", "0"))
            body = self.rfile.read(length).decode("utf-8")
            form = urllib.parse.parse_qs(body)
            name = form.get("name", [""])[0].strip()
            keywords = tuple(
                k.strip()
                for k in form.get("keywords", [""])[0].split(",")
                if k.strip()
            )
            if not name or not keywords:
                self._send_json(
                    400, {"error": "fields 'name' and 'keywords' are required"}
                )
                return
            try:
                bin_seconds = float(form.get("bin_seconds", ["60"])[0])
                tracked = app.track(name, keywords, bin_seconds=bin_seconds)
            except ValueError as exc:
                self._send_json(400, {"error": str(exc)})
                return
            self._send_json(
                201,
                {
                    "event": name,
                    "url": f"/event/{urllib.parse.quote(name)}",
                    **tracked.report().as_dict(),
                },
            )

        def _index(self) -> None:
            items = "".join(
                f'<li><a href="/event/{urllib.parse.quote(name)}">'
                f"{html.escape(name)}</a> "
                f"({len(tracked.log)} tweets, {len(tracked.peaks)} peaks)</li>"
                for name, tracked in app.events.items()
            )
            form = (
                '<h2>Track new terms of interest</h2>'
                '<form method="POST" action="/track">'
                'name <input name="name"> '
                'keywords (comma-separated) <input name="keywords"> '
                '<button type="submit">track</button></form>'
            )
            self._send(
                200,
                "<!DOCTYPE html><html><head><title>TwitInfo</title></head>"
                f"<body><h1>TwitInfo events</h1><ul>{items}</ul>{form}"
                '<p><a href="/metrics">metrics</a></p>'
                "</body></html>",
                "text/html",
            )

        def _metrics(self) -> None:
            from repro.obs import app_metrics, render_prometheus

            body = render_prometheus(app_metrics(app))
            payload = body.encode("utf-8")
            self.send_response(200)
            self.send_header(
                "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
            )
            self.send_header("Content-Length", str(len(payload)))
            self.end_headers()
            self.wfile.write(payload)

        def _resolve(self, name: str):
            tracked = app.events.get(name)
            if tracked is None:
                raise KeyError(f"no event named {name!r}")
            return tracked

        def _dashboard(self, name: str, params: dict, as_json: bool) -> None:
            tracked = self._resolve(name)
            peak_label = params.get("peak", [None])[0]
            dashboard = app.dashboard(tracked, peak_label=peak_label)
            if as_json:
                self._send_json(200, dashboard.to_json())
            else:
                self._send(200, dashboard.render_html(), "text/html")

        def _health(self, name: str | None, params: dict) -> None:
            """Engine-health history from the historical store.

            ``/health.json`` returns every stored metrics snapshot;
            ``/event/<name>/health.json`` only the named event's windows.
            ``?name=<metric>`` filters to one metric series. 404s when
            the session has no historical store configured.
            """
            store = getattr(app.session, "store", None)
            if store is None:
                self._send_json(
                    404,
                    {"error": "no historical store (set storage_path)"},
                )
                return
            metric = params.get("name", [None])[0]
            self._send_json(
                200, store.metrics_series(label=name, name=metric)
            )

        def _peaks(self, name: str, params: dict) -> None:
            tracked = self._resolve(name)
            needle = params.get("q", [""])[0]
            hits = tracked.search_peaks(needle) if needle else tracked.peaks
            self._send_json(
                200,
                [
                    {
                        "label": p.label,
                        "apex_time": p.apex_time,
                        "apex_count": p.apex_count,
                        "terms": list(p.terms),
                    }
                    for p in hits
                ],
            )

    return Handler


class TwitInfoServer:
    """A background-thread TwitInfo web server.

    Example::

        with TwitInfoServer(app) as server:
            page = urllib.request.urlopen(server.url + "/event/Soccer").read()
    """

    def __init__(self, app: TwitInfoApp, host: str = "127.0.0.1", port: int = 0):
        self._httpd = ThreadingHTTPServer((host, port), _make_handler(app))
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, daemon=True
        )

    @property
    def url(self) -> str:
        host, port = self._httpd.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> "TwitInfoServer":
        self._thread.start()
        return self

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()

    def __enter__(self) -> "TwitInfoServer":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.stop()
