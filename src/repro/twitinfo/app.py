"""The TwitInfo application.

Glues the panels to the TweeQL stream processor exactly the way Section 3
describes: an event definition becomes a keyword TweeQL query; matching
tweets are logged; the timeline, peak detector, labeler, sentiment counts,
link aggregator, and map fill in as tweets stream through; and
:meth:`TwitInfoApp.dashboard` assembles the Figure-1 interface for the
whole event or for one selected peak (the timeline-as-filter drill-down).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.session import TweeQL
from repro.fidelity.coverage import CoverageEstimate
from repro.storage.tweetlog import MemoryTweetLog
from repro.twitinfo.dashboard import Dashboard
from repro.twitinfo.event import EventDefinition, PeakAnnotation
from repro.twitinfo.labels import PeakLabeler
from repro.twitinfo.links import LinkAggregator
from repro.twitinfo.mapview import MapMarker, MapView
from repro.twitinfo.peaks import Peak, PeakDetector, PeakDetectorParams
from repro.twitinfo.relevance import RelevantTweet, relevant_tweets
from repro.twitinfo.sentiment_view import SentimentSummary
from repro.twitinfo.timeline import Timeline
from repro.twitter.models import Tweet


def _connection_coverage(connections: object) -> CoverageEstimate | None:
    """Coverage estimate from a run's stream connections, if it had any.

    ``delivered / matched`` over every connection the query opened: the
    fraction of filter-matching tweets the (possibly lossy, possibly
    disconnect-ridden) stream actually handed the application.
    """
    stats = [connection.stats for connection in connections]  # type: ignore[attr-defined]
    if not stats:
        return None
    return CoverageEstimate.from_counts(
        observed=sum(s.delivered for s in stats),
        eligible=sum(s.matched for s in stats),
    )


@dataclass
class LiveSnapshot:
    """One update from :meth:`TwitInfoApp.monitor`."""

    stream_time: float
    tweets_seen: int
    new_peaks: list[PeakAnnotation]
    total_peaks: int
    final: bool = False


@dataclass
class EventReport:
    """Summary numbers for one tracked event."""

    name: str
    tweets_logged: int
    peaks: int
    positive: int
    negative: int
    neutral: int
    distinct_links: int
    geotagged: int

    def as_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "tweets_logged": self.tweets_logged,
            "peaks": self.peaks,
            "positive": self.positive,
            "negative": self.negative,
            "neutral": self.neutral,
            "distinct_links": self.distinct_links,
            "geotagged": self.geotagged,
        }


class TrackedEvent:
    """One event being tracked: the log plus every live panel's state."""

    def __init__(
        self,
        definition: EventDefinition,
        detector_params: PeakDetectorParams | None = None,
    ) -> None:
        self.definition = definition
        self.log = MemoryTweetLog()
        self.timeline = Timeline(bin_seconds=definition.bin_seconds)
        self.labeler = PeakLabeler(definition)
        self.sentiments: dict[int, int] = {}  # tweet_id → label
        self.links = LinkAggregator()
        self.map = MapView()
        self.detector = PeakDetector(
            params=detector_params or PeakDetectorParams(),
            bin_seconds=definition.bin_seconds,
        )
        self.peaks: list[PeakAnnotation] = []
        #: Stream-coverage estimate for this event's query, set after the
        #: query drains (delivered vs. matched on its stream connection).
        #: None while running, or when the run path exposes no connection.
        self.coverage: CoverageEstimate | None = None
        self._raw_peaks: list[Peak] = []
        self._fed_to_index: int | None = None
        self._annotated_labels: set[str] = set()

    def ingest(self, tweet: Tweet, sentiment: int) -> None:
        """Process one matching tweet through every panel."""
        self.log.append(tweet)
        self.timeline.add(tweet.created_at)
        self.labeler.observe(tweet.text)
        self.sentiments[tweet.tweet_id] = sentiment
        assert tweet.entities is not None
        for url in tweet.entities.urls:
            self.links.add(url, tweet.created_at)
        if tweet.geo is not None:
            self.map.add(
                MapMarker(
                    lat=tweet.geo[0],
                    lon=tweet.geo[1],
                    sentiment=sentiment,
                    timestamp=tweet.created_at,
                    text=tweet.text,
                )
            )

    # -- live (incremental) peak detection ------------------------------------

    def feed_closed_bins(self, upto_time: float) -> list[PeakAnnotation]:
        """Feed every timeline bin that closed before ``upto_time`` to the
        live detector; returns annotations for peaks that closed.

        This is the "monitor the event in realtime" path (§3.2): the
        detector state advances as stream time does, and a peak becomes
        visible (flag + key terms) as soon as its window ends.
        """
        import math

        bin_seconds = self.definition.bin_seconds
        if math.isinf(upto_time):
            last_full = max(self.timeline._counts, default=0)
        else:
            last_full = math.floor(upto_time / bin_seconds) - 1
        if self._fed_to_index is None:
            if not self.timeline._counts:
                return []
            self._fed_to_index = min(self.timeline._counts) - 1
        newly_closed: list[PeakAnnotation] = []
        counts = self.timeline._counts
        index = self._fed_to_index + 1
        while index <= last_full:
            self.detector.update(
                self.timeline.bin_start(index), float(counts.get(index, 0))
            )
            index += 1
        self._fed_to_index = max(self._fed_to_index, last_full)
        for peak in self.detector.peaks:
            if peak.closed and peak.label not in self._annotated_labels:
                texts = [t.text for t in self.log.scan(peak.start, peak.end)]
                annotation = self.labeler.annotate(peak, texts)
                self._annotated_labels.add(peak.label)
                self.peaks.append(annotation)
                newly_closed.append(annotation)
        return newly_closed

    def finish_live(self) -> list[PeakAnnotation]:
        """Close out the live detector at end of stream."""
        closed = self.feed_closed_bins(float("inf"))
        self.detector.finish()
        return closed + self.feed_closed_bins(float("inf"))

    def detect_peaks(self) -> list[PeakAnnotation]:
        """Run (batch) peak detection over the timeline and label each peak.

        Replaces any annotations accumulated by the live path — the batch
        detector sees the complete gap-filled timeline, which is the
        authoritative view once the event is over.
        """
        detector = PeakDetector(
            params=self.detector.params, bin_seconds=self.definition.bin_seconds
        )
        raw = detector.run(self.timeline.bins())
        self._raw_peaks = raw
        annotated = []
        for peak in raw:
            texts = [t.text for t in self.log.scan(peak.start, peak.end)]
            annotated.append(self.labeler.annotate(peak, texts))
        self.peaks = annotated
        self._annotated_labels = {p.label for p in annotated}
        return annotated

    def sentiment_summary(
        self, start: float | None = None, end: float | None = None
    ) -> SentimentSummary:
        """Pie-chart counts for the event or a timeframe."""
        summary = SentimentSummary()
        for tweet in self.log.scan(start, end):
            summary.add(self.sentiments[tweet.tweet_id])
        return summary

    def relevant(
        self,
        start: float | None = None,
        end: float | None = None,
        extra_terms: tuple[str, ...] = (),
        limit: int = 10,
    ) -> list[RelevantTweet]:
        """The Relevant Tweets panel for a timeframe."""
        tweets = list(self.log.scan(start, end))
        labels = [self.sentiments[t.tweet_id] for t in tweets]
        keywords = tuple(self.definition.keywords) + extra_terms
        return relevant_tweets(
            tweets, keywords, labels, extractor=self.labeler.extractor,
            limit=limit,
        )

    def search_peaks(self, needle: str) -> list[PeakAnnotation]:
        """Text search over peak key terms (§3.2's peak search)."""
        return [p for p in self.peaks if p.matches_search(needle)]

    def report(self) -> EventReport:
        """Headline numbers for the event."""
        summary = self.sentiment_summary()
        return EventReport(
            name=self.definition.name,
            tweets_logged=len(self.log),
            peaks=len(self.peaks),
            positive=summary.positive,
            negative=summary.negative,
            neutral=summary.neutral,
            distinct_links=self.links.distinct,
            geotagged=len(self.map),
        )


class TwitInfoApp:
    """The TwitInfo web application, minus the browser.

    Args:
        session: the TweeQL session whose ``twitter`` source the events
            will track.
    """

    def __init__(self, session: TweeQL) -> None:
        self.session = session
        self.events: dict[str, TrackedEvent] = {}
        #: Shared-scan groups this app has opened (``shared_scan`` mode /
        #: :meth:`track_many`); ``/metrics`` absorbs each as ``shared.<i>``.
        self.shared_groups: list = []

    def create_event(
        self,
        name: str,
        keywords: tuple[str, ...] | list[str],
        start: float | None = None,
        end: float | None = None,
        bin_seconds: float = 60.0,
        detector_params: PeakDetectorParams | None = None,
    ) -> TrackedEvent:
        """Define an event and begin logging (§3.1)."""
        definition = EventDefinition(
            name=name,
            keywords=tuple(keywords),
            start=start,
            end=end,
            bin_seconds=bin_seconds,
        )
        tracked = TrackedEvent(definition, detector_params=detector_params)
        self.events[name] = tracked
        return tracked

    def run_event(self, tracked: TrackedEvent, limit: int | None = None) -> EventReport:
        """Drain the event's TweeQL query and build every panel.

        The query is exactly ``definition.to_tweeql()`` — keyword filters
        OR-ed for the API's ``track`` endpoint, window bounds applied
        locally. Sentiment uses the session's classifier (the same one the
        ``sentiment()`` UDF calls). With ``EngineConfig.shared_scan`` the
        query runs as the sole tenant of a shared-scan group instead of
        opening its own filtered connection.
        """
        return self.run_events([tracked], limit=limit)[0]

    def run_events(
        self,
        tracked_list: list[TrackedEvent],
        limit: int | None = None,
        shared: bool | None = None,
    ) -> list[EventReport]:
        """Run several events' queries; one shared scan when ``shared``.

        ``shared=None`` follows ``EngineConfig.shared_scan``. In shared
        mode every event's query is admitted as a tenant of one
        :class:`~repro.engine.multitenant.SharedScanGroup` — one Firehose
        connection and one scan for the whole batch of events, rather than
        one filtered connection each (the 2011 API would have run out of
        connections at 4 events). Panels are row-for-row identical either
        way under lossless delivery.
        """
        if shared is None:
            shared = getattr(self.session.config, "shared_scan", False)
        classify = self.session.classifier.classify

        def ingest(tracked: TrackedEvent, handle) -> None:
            count = 0
            for row in handle:
                tweet: Tweet = row["__tweet__"]
                tracked.ingest(tweet, classify(tweet.text))
                count += 1
                if limit is not None and count >= limit:
                    break
            handle.close()

        if shared and tracked_list:
            group = self.session.shared()
            self.shared_groups.append(group)
            handles = [
                group.query(t.definition.to_tweeql()) for t in tracked_list
            ]
            try:
                for tracked, handle in zip(tracked_list, handles):
                    ingest(tracked, handle)
            finally:
                group.close()
            # All tenants ride the one shared connection, so they share its
            # delivery accounting (and therefore its coverage estimate).
            shared_coverage = _connection_coverage(group.connections)
            for tracked in tracked_list:
                tracked.coverage = shared_coverage
        else:
            for tracked in tracked_list:
                handle = self.session.query(tracked.definition.to_tweeql())
                ingest(tracked, handle)
                tracked.coverage = _connection_coverage(
                    getattr(handle, "connections", ())
                )
        reports = []
        for tracked in tracked_list:
            tracked.detect_peaks()
            reports.append(tracked.report())
        self._persist_health(tracked_list)
        return reports

    def _persist_health(self, tracked_list: list[TrackedEvent]) -> None:
        """Archive a metrics snapshot per event into the historical store.

        With ``EngineConfig.storage_path`` set, each completed event run
        stores the app's flat metrics registry keyed by the event's
        virtual-time window (its definition bounds, falling back to the
        observed timeline span), so the dashboard can chart engine health
        over an event's life (``/health.json``).
        """
        store = getattr(self.session, "store", None)
        if store is None or not tracked_list:
            return
        from repro.obs.metrics import app_metrics

        flat = app_metrics(self).flat()
        for tracked in tracked_list:
            definition = tracked.definition
            window_start = definition.start
            window_end = definition.end
            bounds = tracked.timeline.bounds()
            if window_start is None:
                window_start = (
                    bounds[0] if bounds is not None else self.session.clock.now
                )
            if window_end is None:
                window_end = (
                    bounds[1] if bounds is not None else self.session.clock.now
                )
            store.record_metrics(
                window_start, window_end, flat, label=definition.name
            )

    def track(
        self,
        name: str,
        keywords: tuple[str, ...] | list[str],
        start: float | None = None,
        end: float | None = None,
        bin_seconds: float = 60.0,
        detector_params: PeakDetectorParams | None = None,
    ) -> TrackedEvent:
        """create_event + run_event in one call (the common path)."""
        tracked = self.create_event(
            name, keywords, start=start, end=end, bin_seconds=bin_seconds,
            detector_params=detector_params,
        )
        self.run_event(tracked)
        return tracked

    def track_many(
        self,
        events: dict[str, tuple[str, ...] | list[str]],
        start: float | None = None,
        end: float | None = None,
        bin_seconds: float = 60.0,
        detector_params: PeakDetectorParams | None = None,
    ) -> list[TrackedEvent]:
        """Track N events on **one** shared scan (name → keywords).

        The multi-tenant counterpart of :meth:`track`: every event is
        admitted onto a single shared-scan group, so the whole dashboard
        costs one stream connection and one pass over the firehose no
        matter how many events it tracks.
        """
        tracked_list = [
            self.create_event(
                name, keywords, start=start, end=end,
                bin_seconds=bin_seconds, detector_params=detector_params,
            )
            for name, keywords in events.items()
        ]
        self.run_events(tracked_list, shared=True)
        return tracked_list

    def monitor(
        self,
        tracked: TrackedEvent,
        snapshot_every: int = 500,
        limit: int | None = None,
    ):
        """Track an event *live*: yields :class:`LiveSnapshot` updates.

        Runs the event's TweeQL query incrementally; every
        ``snapshot_every`` ingested tweets, closed timeline bins are fed to
        the streaming detector, and a snapshot reports any peaks whose
        windows just ended (flag + key terms, available while the event is
        still running — §3.2's realtime monitoring). A final snapshot
        flushes the detector at end of stream.
        """
        classify = self.session.classifier.classify
        handle = self.session.query(tracked.definition.to_tweeql())
        seen = 0
        try:
            for row in handle:
                tweet: Tweet = row["__tweet__"]
                tracked.ingest(tweet, classify(tweet.text))
                seen += 1
                if seen % snapshot_every == 0:
                    new_peaks = tracked.feed_closed_bins(tweet.created_at)
                    yield LiveSnapshot(
                        stream_time=tweet.created_at,
                        tweets_seen=seen,
                        new_peaks=new_peaks,
                        total_peaks=len(tracked.peaks),
                    )
                if limit is not None and seen >= limit:
                    break
        finally:
            handle.close()
        tracked.coverage = _connection_coverage(
            getattr(handle, "connections", ())
        )
        final_peaks = tracked.finish_live()
        yield LiveSnapshot(
            stream_time=self.session.clock.now,
            tweets_seen=seen,
            new_peaks=final_peaks,
            total_peaks=len(tracked.peaks),
            final=True,
        )

    # -- persistence -------------------------------------------------------------

    def save_event(self, tracked: TrackedEvent, path: str) -> None:
        """Persist an event (definition + logged tweets) to a SQLite file."""
        from repro.storage.tweetlog import SqliteTweetLog

        with SqliteTweetLog(path) as db:
            db.set_meta(
                "event",
                {
                    "name": tracked.definition.name,
                    "keywords": list(tracked.definition.keywords),
                    "start": tracked.definition.start,
                    "end": tracked.definition.end,
                    "bin_seconds": tracked.definition.bin_seconds,
                },
            )
            db.extend(list(tracked.log.scan()))

    def load_event(self, path: str) -> TrackedEvent:
        """Rebuild a tracked event saved by :meth:`save_event`.

        Tweets are re-ingested through the panels (sentiment re-classified
        with the session's classifier) and peaks re-detected, so a loaded
        event behaves identically to a freshly tracked one.
        """
        from repro.storage.tweetlog import SqliteTweetLog

        classify = self.session.classifier.classify
        with SqliteTweetLog(path) as db:
            meta = db.get_meta("event")
            if meta is None:
                raise KeyError(f"{path!r} holds no saved event")
            definition = EventDefinition(
                name=meta["name"],
                keywords=tuple(meta["keywords"]),
                start=meta["start"],
                end=meta["end"],
                bin_seconds=meta["bin_seconds"],
            )
            tracked = TrackedEvent(definition)
            for tweet in db.scan():
                tracked.ingest(tweet, classify(tweet.text))
        tracked.detect_peaks()
        self.events[definition.name] = tracked
        return tracked

    def dashboard(
        self, tracked: TrackedEvent, peak_label: str | None = None
    ) -> Dashboard:
        """Assemble the Figure-1 dashboard.

        With ``peak_label``, every panel is filtered to that peak's window
        — "when the user clicks on a peak, the other interface elements …
        refresh to show only tweets in the time period of that peak."
        """
        start = tracked.definition.start
        end = tracked.definition.end
        selected: PeakAnnotation | None = None
        extra_terms: tuple[str, ...] = ()
        if peak_label is not None:
            selected = next(
                (p for p in tracked.peaks if p.label == peak_label), None
            )
            if selected is None:
                raise KeyError(
                    f"no peak {peak_label!r} in event {tracked.definition.name!r}"
                )
            start, end = selected.start, selected.end
            extra_terms = selected.terms
        return self._assemble(tracked, start, end, selected, extra_terms)

    def dashboard_range(
        self, tracked: TrackedEvent, start: float, end: float
    ) -> Dashboard:
        """Every panel filtered to an arbitrary [start, end) time range —
        the generalization of peak drill-down (drag-select on the
        timeline)."""
        if end <= start:
            raise ValueError("range end must be after start")
        return self._assemble(tracked, start, end, selected=None, extra_terms=())

    def _assemble(
        self,
        tracked: TrackedEvent,
        start: float | None,
        end: float | None,
        selected: PeakAnnotation | None,
        extra_terms: tuple[str, ...],
    ) -> Dashboard:
        summary = tracked.sentiment_summary(start, end)
        return Dashboard(
            event_name=tracked.definition.name,
            keywords=tracked.definition.keywords,
            window=(start, end),
            selected_peak=selected,
            timeline=tracked.timeline,
            peaks=list(tracked.peaks),
            relevant=tracked.relevant(start, end, extra_terms=extra_terms),
            sentiment=summary,
            links=tracked.links.top(3, start, end),
            markers=tracked.map.markers(start, end),
            coverage=tracked.coverage,
        )
