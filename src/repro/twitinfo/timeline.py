"""Tweet-volume timeline.

Section 3.2: "The event timeline reports tweet activity by volume. The
more tweets that match the query during a period of time, the higher the
y-axis value on the timeline for that period."

:class:`Timeline` accumulates per-bin counts incrementally (tweets arrive
in time order from the stream) and exposes the closed bins to the peak
detector and renderers.
"""

from __future__ import annotations

import math
from collections.abc import Iterator
from dataclasses import dataclass, field

#: Longest run of gap bins materialized per lull. A week-long quiet spell
#: at 1-second bins would otherwise expand to ~600k zero tuples; real
#: gaps in the demo scenarios are orders of magnitude shorter, so capped
#: runs never change what the peak detector sees in practice.
MAX_GAP_RUN = 10_000


@dataclass
class Timeline:
    """Streaming per-bin tweet counts.

    Attributes:
        bin_seconds: bin width.
        origin: bins are aligned to multiples of ``bin_seconds`` from this
            origin (0.0 aligns to the epoch).
    """

    bin_seconds: float = 60.0
    origin: float = 0.0
    _counts: dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.bin_seconds <= 0:
            raise ValueError("bin_seconds must be positive")

    def _bin_index(self, timestamp: float) -> int:
        return math.floor((timestamp - self.origin) / self.bin_seconds)

    def bin_start(self, index: int) -> float:
        """Timestamp of a bin's left edge."""
        return self.origin + index * self.bin_seconds

    def add(self, timestamp: float, count: int = 1) -> None:
        """Count one tweet (or ``count`` of them) at ``timestamp``."""
        index = self._bin_index(timestamp)
        self._counts[index] = self._counts.get(index, 0) + count

    @property
    def total(self) -> int:
        """Total tweets counted."""
        return sum(self._counts.values())

    def bounds(self) -> tuple[float, float] | None:
        """(first bin's start, last bin's end) — the populated span.

        None for an empty timeline.
        """
        if not self._counts:
            return None
        lo = min(self._counts)
        hi = max(self._counts)
        return self.bin_start(lo), self.bin_start(hi) + self.bin_seconds

    def __len__(self) -> int:
        return len(self._counts)

    def iter_bins(
        self, fill_gaps: bool = True, max_gap_run: int | None = MAX_GAP_RUN
    ) -> Iterator[tuple[float, int]]:
        """Lazily yield (bin_start, count) in time order.

        With ``fill_gaps``, empty bins between the first and last
        populated bin are included with count 0 — the peak detector must
        see quiet minutes, or a lull looks like a time warp. Gap runs are
        generated lazily and truncated to ``max_gap_run`` zero bins per
        lull (pass ``None`` for unbounded), so a week of silence at
        1-second bins cannot materialize hundreds of thousands of tuples.
        """
        if not self._counts:
            return
        indices = sorted(self._counts)
        if not fill_gaps:
            for i in indices:
                yield self.bin_start(i), self._counts[i]
            return
        previous = indices[0] - 1
        for i in indices:
            gap = i - previous - 1
            if max_gap_run is not None:
                gap = min(gap, max_gap_run)
            for k in range(i - gap, i):
                yield self.bin_start(k), 0
            yield self.bin_start(i), self._counts[i]
            previous = i

    def bins(
        self, fill_gaps: bool = True, max_gap_run: int | None = MAX_GAP_RUN
    ) -> list[tuple[float, int]]:
        """(bin_start, count) in time order (see :meth:`iter_bins`)."""
        return list(self.iter_bins(fill_gaps, max_gap_run=max_gap_run))

    def count_between(self, start: float, end: float) -> int:
        """Total count across bins intersecting [start, end)."""
        lo = self._bin_index(start)
        hi = self._bin_index(end - 1e-9)
        if hi - lo + 1 > len(self._counts):
            # Sparse path: a wide range over few populated bins sums the
            # dict instead of walking every index in the range.
            return sum(
                count for i, count in self._counts.items() if lo <= i <= hi
            )
        return sum(self._counts.get(i, 0) for i in range(lo, hi + 1))

    def max_count(self) -> int:
        """The busiest bin's count (0 when empty)."""
        return max(self._counts.values(), default=0)

    def sparkline(self, width: int = 60) -> str:
        """A unicode sparkline of the timeline (for the text dashboard)."""
        bins = self.bins()
        if not bins:
            return ""
        blocks = " ▁▂▃▄▅▆▇█"
        counts = [count for _start, count in bins]
        # Downsample to `width` columns by max-pooling.
        if len(counts) > width:
            stride = len(counts) / width
            pooled = [
                max(counts[int(i * stride) : max(int(i * stride) + 1, int((i + 1) * stride))])
                for i in range(width)
            ]
        else:
            pooled = counts
        top = max(pooled) or 1
        return "".join(
            blocks[min(len(blocks) - 1, round(c / top * (len(blocks) - 1)))]
            for c in pooled
        )
