"""Seeded randomness utilities.

Every stochastic component in the reproduction draws from a
:class:`random.Random` instance that is derived deterministically from an
explicit seed, so that workloads, services, and benchmarks are reproducible
bit-for-bit across runs and machines.

The helpers here provide:

- :func:`derive` — fork an independent, deterministic child generator from a
  parent seed and a string label, so subsystems do not perturb one another's
  random sequences when the call order changes.
- :func:`zipf_sample` — bounded Zipf sampling used for user activity and
  location-string popularity.
- :func:`lognormal` — latency model sampling.
"""

from __future__ import annotations

import hashlib
import math
import random
from collections.abc import Sequence
from typing import TypeVar

T = TypeVar("T")

DEFAULT_SEED = 20110612  # SIGMOD 2011 started June 12, 2011.


def derive(seed: int, label: str) -> random.Random:
    """Create an independent generator from ``seed`` and a string ``label``.

    Uses SHA-256 over the seed and label so that distinct labels give
    uncorrelated streams and the mapping is stable across Python versions
    (unlike ``hash()``, which is salted).
    """
    digest = hashlib.sha256(f"{seed}:{label}".encode()).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


def zipf_ranks(n: int, exponent: float = 1.0) -> list[float]:
    """Return the Zipf probability mass for ranks ``1..n``.

    Args:
        n: number of ranks; must be positive.
        exponent: Zipf skew parameter ``s``; larger is more skewed.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    weights = [1.0 / (rank**exponent) for rank in range(1, n + 1)]
    total = sum(weights)
    return [w / total for w in weights]


def zipf_sample(rng: random.Random, n: int, exponent: float = 1.0) -> int:
    """Sample a rank in ``[0, n)`` from a bounded Zipf distribution.

    Rank 0 is the most popular. Uses inverse-CDF sampling over the exact
    normalized mass, which is O(n) per call; callers that sample heavily
    should precompute with :func:`zipf_chooser`.
    """
    return zipf_chooser(rng, n, exponent)()


def zipf_chooser(rng: random.Random, n: int, exponent: float = 1.0):
    """Return a zero-argument callable sampling Zipf ranks in ``[0, n)``.

    Precomputes the CDF once, so each draw is O(log n).
    """
    probs = zipf_ranks(n, exponent)
    cdf: list[float] = []
    acc = 0.0
    for p in probs:
        acc += p
        cdf.append(acc)

    import bisect

    def choose() -> int:
        return min(bisect.bisect_left(cdf, rng.random()), n - 1)

    return choose


def lognormal(rng: random.Random, mean: float, sigma: float = 0.5) -> float:
    """Sample a lognormal value whose *mean* is ``mean``.

    ``random.lognormvariate`` is parameterized by the underlying normal's
    ``mu``; this helper solves for ``mu`` so the distribution's expectation
    equals ``mean``, which makes latency configuration intuitive
    ("mean 300 ms").
    """
    if mean <= 0:
        raise ValueError("mean must be positive")
    mu = math.log(mean) - sigma * sigma / 2.0
    return rng.lognormvariate(mu, sigma)


def weighted_choice(
    rng: random.Random, items: Sequence[T], weights: Sequence[float]
) -> T:
    """Choose one item with the given (unnormalized) weights."""
    if len(items) != len(weights):
        raise ValueError("items and weights must have equal length")
    if not items:
        raise ValueError("cannot choose from an empty sequence")
    return rng.choices(list(items), weights=list(weights), k=1)[0]
