"""Exception hierarchy for the TweeQL/TwitInfo reproduction.

All library-raised exceptions derive from :class:`TweeQLError` so callers can
catch one base class at the API boundary.  Subsystems refine it:

- :class:`ParseError` and :class:`LexError` for the SQL front end,
- :class:`PlanError` and :class:`ExecutionError` for the engine,
- :class:`SanitizerError` for runtime invariant violations (``TWEEQL_SAN``),
- :class:`StreamError` for the simulated Twitter API,
- :class:`ServiceError` for simulated remote web services,
- :class:`GeocodeError` for geocoding lookups.
"""

from __future__ import annotations

from typing import Any


class TweeQLError(Exception):
    """Base class for every error raised by this library.

    Attributes:
        code: stable diagnostic code (``TQL…``) when the error came through
            the static analyzer, else None. See ``docs/ANALYSIS.md``.
        diagnostic: the full :class:`repro.sql.analysis.Diagnostic` record
            (with source span and hint) when available.
    """

    code: str | None = None
    diagnostic: Any = None


class LexError(TweeQLError):
    """Raised when the lexer encounters an unrecognizable character sequence.

    Attributes:
        position: character offset in the query string where lexing failed.
    """

    code = "TQL001"

    def __init__(self, message: str, position: int | None = None) -> None:
        super().__init__(message)
        self.position = position


class ParseError(TweeQLError):
    """Raised when a query is lexically valid but syntactically malformed.

    Attributes:
        token: text of the offending token, if known.
        position: character offset of the offending token.
        end: offset one past the offending token's last character (caret
            rendering); defaults to ``position + 1`` when unknown.
    """

    code = "TQL002"

    def __init__(
        self,
        message: str,
        token: str | None = None,
        position: int | None = None,
        end: int | None = None,
    ) -> None:
        super().__init__(message)
        self.token = token
        self.position = position
        if end is None and position is not None:
            end = position + max(1, len(token or ""))
        self.end = end


class PlanError(TweeQLError):
    """Raised when a syntactically valid query cannot be planned.

    Examples: unknown stream source, unknown function name, aggregate used
    without a window, GROUP BY referencing an unprojected alias.

    Errors surfaced by the static analyzer carry ``code`` (a stable
    ``TQL2xx`` identifier) and ``diagnostic`` (the structured record with
    the source span); errors raised deep inside planning may not.
    """

    def __init__(self, message: str, *, code: str | None = None) -> None:
        super().__init__(message)
        if code is not None:
            self.code = code


class ExecutionError(TweeQLError):
    """Raised when a planned query fails at runtime."""


def _rebuild_sanitizer_error(
    message: str,
    code: str,
    operator: str | None,
    lane: str | None,
    hint: str | None,
    batch_seq: int | None,
) -> "SanitizerError":
    """Reconstruct a :class:`SanitizerError` on the far side of a pickle."""
    return SanitizerError(
        message, code=code, operator=operator, lane=lane, hint=hint,
        batch_seq=batch_seq,
    )


class SanitizerError(ExecutionError):
    """Raised when the runtime invariant sanitizer detects a violation.

    Carries a stable ``TQL9xx`` code (catalogued in ``docs/ANALYSIS.md``
    and ``docs/SANITIZER.md``), the offending operator/lane, the batch
    sequence number when one is implicated, a repro hint, and — when the
    plan was traced — the sanitizer's instant span for the violation.
    Picklable so the process shard backend can ship a worker-side
    violation back through the merge (the span, which holds live engine
    state, is dropped in transit).
    """

    def __init__(
        self,
        message: str,
        *,
        code: str = "TQL900",
        operator: str | None = None,
        lane: str | None = None,
        hint: str | None = None,
        span: Any = None,
        batch_seq: int | None = None,
    ) -> None:
        super().__init__(message)
        self.code = code
        self.operator = operator
        self.lane = lane
        self.hint = hint
        self.span = span
        self.batch_seq = batch_seq

    def __reduce__(self) -> Any:
        return (
            _rebuild_sanitizer_error,
            (
                self.args[0] if self.args else "",
                self.code or "TQL900",
                self.operator,
                self.lane,
                self.hint,
                self.batch_seq,
            ),
        )


class AdmissionError(PlanError):
    """Raised when a shared-scan group refuses to admit a query.

    Carries a stable ``TQL4xx`` code: ``TQL401`` when the group is at its
    ``max_tenants`` capacity, ``TQL402`` when the statement's shape cannot
    ride a shared scan (joins, ``INTO STREAM``, ``now()``, or a different
    source), ``TQL403`` when the group already started streaming or is
    closed. See :mod:`repro.engine.multitenant`.
    """


class UnknownFunctionError(PlanError):
    """Raised when a query references a function not in the registry."""

    code = "TQL202"

    def __init__(self, name: str, hint: str | None = None) -> None:
        suffix = f" ({hint})" if hint else ""
        super().__init__(f"unknown function: {name!r}{suffix}")
        self.name = name
        self.hint = hint


class UnknownSourceError(PlanError):
    """Raised when a query's FROM clause names an unregistered source."""

    code = "TQL212"

    def __init__(self, name: str, available: tuple[str, ...] = ()) -> None:
        hint = f" (available: {', '.join(available)})" if available else ""
        super().__init__(f"unknown stream source: {name!r}{hint}")
        self.name = name
        self.available = available


class UnknownFieldError(PlanError):
    """Raised when an expression references a field absent from the schema.

    Every raise site must pass ``available`` so the message always carries
    the did-you-mean hint (tested in ``tests/engine/test_error_hints.py``).
    """

    code = "TQL201"

    def __init__(self, name: str, available: tuple[str, ...] = ()) -> None:
        hint = f" (available: {', '.join(available)})" if available else ""
        super().__init__(f"unknown field: {name!r}{hint}")
        self.name = name
        self.available = available


class StreamError(TweeQLError):
    """Raised by the simulated Twitter streaming API.

    Examples: more than one filter type on a single connection, connecting
    to an exhausted stream, exceeding the connection limit.
    """


class RateLimitError(StreamError):
    """Raised when a simulated API client exceeds its request budget."""

    def __init__(self, message: str, retry_after: float | None = None) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class ServiceError(TweeQLError):
    """Raised by a simulated remote web service (transient failure, etc.).

    Attributes:
        retry_after: server-suggested wait in (virtual) seconds before the
            next attempt, when the failure carried one (HTTP Retry-After).
            The retry layer's backoff treats it as a floor on the wait; see
            :class:`repro.engine.resilience.RetryPolicy`.
    """

    def __init__(self, message: str, retry_after: float | None = None) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class CircuitOpenError(ServiceError):
    """Raised when a circuit breaker short-circuits a call without trying.

    ``retry_after`` carries the time until the breaker's half-open probe is
    permitted, so a retry loop that honors it naturally waits out the open
    window instead of hammering a service that is known to be down.
    """

    def __init__(self, service: str, retry_after: float | None = None) -> None:
        super().__init__(
            f"{service}: circuit breaker is open", retry_after=retry_after
        )
        self.service = service


class GeocodeError(ServiceError):
    """Raised when a location string cannot be geocoded."""

    def __init__(self, location: str) -> None:
        super().__init__(f"could not geocode location: {location!r}")
        self.location = location


class StorageError(TweeQLError):
    """Raised by persistence backends (tweet log, caches)."""
