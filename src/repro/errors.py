"""Exception hierarchy for the TweeQL/TwitInfo reproduction.

All library-raised exceptions derive from :class:`TweeQLError` so callers can
catch one base class at the API boundary.  Subsystems refine it:

- :class:`ParseError` and :class:`LexError` for the SQL front end,
- :class:`PlanError` and :class:`ExecutionError` for the engine,
- :class:`StreamError` for the simulated Twitter API,
- :class:`ServiceError` for simulated remote web services,
- :class:`GeocodeError` for geocoding lookups.
"""

from __future__ import annotations


class TweeQLError(Exception):
    """Base class for every error raised by this library."""


class LexError(TweeQLError):
    """Raised when the lexer encounters an unrecognizable character sequence.

    Attributes:
        position: character offset in the query string where lexing failed.
    """

    def __init__(self, message: str, position: int | None = None) -> None:
        super().__init__(message)
        self.position = position


class ParseError(TweeQLError):
    """Raised when a query is lexically valid but syntactically malformed.

    Attributes:
        token: text of the offending token, if known.
        position: character offset of the offending token.
    """

    def __init__(
        self,
        message: str,
        token: str | None = None,
        position: int | None = None,
    ) -> None:
        super().__init__(message)
        self.token = token
        self.position = position


class PlanError(TweeQLError):
    """Raised when a syntactically valid query cannot be planned.

    Examples: unknown stream source, unknown function name, aggregate used
    without a window, GROUP BY referencing an unprojected alias.
    """


class ExecutionError(TweeQLError):
    """Raised when a planned query fails at runtime."""


class UnknownFunctionError(PlanError):
    """Raised when a query references a function not in the registry."""

    def __init__(self, name: str) -> None:
        super().__init__(f"unknown function: {name!r}")
        self.name = name


class UnknownSourceError(PlanError):
    """Raised when a query's FROM clause names an unregistered source."""

    def __init__(self, name: str) -> None:
        super().__init__(f"unknown stream source: {name!r}")
        self.name = name


class UnknownFieldError(PlanError):
    """Raised when an expression references a field absent from the schema."""

    def __init__(self, name: str, available: tuple[str, ...] = ()) -> None:
        hint = f" (available: {', '.join(available)})" if available else ""
        super().__init__(f"unknown field: {name!r}{hint}")
        self.name = name
        self.available = available


class StreamError(TweeQLError):
    """Raised by the simulated Twitter streaming API.

    Examples: more than one filter type on a single connection, connecting
    to an exhausted stream, exceeding the connection limit.
    """


class RateLimitError(StreamError):
    """Raised when a simulated API client exceeds its request budget."""

    def __init__(self, message: str, retry_after: float | None = None) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class ServiceError(TweeQLError):
    """Raised by a simulated remote web service (transient failure, etc.)."""


class GeocodeError(ServiceError):
    """Raised when a location string cannot be geocoded."""

    def __init__(self, location: str) -> None:
        super().__init__(f"could not geocode location: {location!r}")
        self.location = location


class StorageError(TweeQLError):
    """Raised by persistence backends (tweet log, caches)."""
