"""Named-entity extraction (the simulated OpenCalais).

The paper: "Another UDF takes tweet text, passes it to OpenCalais, and
returns named entities mentioned in the text." OpenCalais is a remote
service; our stand-in is a gazetteer/lexicon matcher over the synthetic
vocabulary wrapped — like the geocoder — in the simulated web-service shell
(see :mod:`repro.geo.service`), so the executor sees the same API shape and
latency profile.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.geo.gazetteer import Gazetteer, default_gazetteer
from repro.twitter.vocabulary import KNOWN_ORGANIZATIONS, KNOWN_PEOPLE


@dataclass(frozen=True)
class Entity:
    """One extracted entity."""

    text: str
    type: str  # "Person" | "Organization" | "City"

    def __str__(self) -> str:
        return f"{self.text}/{self.type}"


class EntityExtractor:
    """Lexicon-based NER over people, organizations, and gazetteer cities."""

    def __init__(self, gazetteer: Gazetteer | None = None) -> None:
        gazetteer = gazetteer or default_gazetteer()
        patterns: list[tuple[re.Pattern[str], str, str]] = []
        for person in KNOWN_PEOPLE:
            patterns.append((_word_pattern(person), person, "Person"))
        for organization in KNOWN_ORGANIZATIONS:
            patterns.append((_word_pattern(organization), organization, "Organization"))
        for city in gazetteer.cities:
            patterns.append((_word_pattern(city.name), city.name, "City"))
        # Longest names first so "manchester city" beats "manchester".
        patterns.sort(key=lambda entry: len(entry[1]), reverse=True)
        self._patterns = patterns

    def extract(self, text: str) -> list[Entity]:
        """Entities mentioned in ``text``, deduplicated, longest-match-first.

        A shorter entity fully covered by an already-matched longer one is
        suppressed ("manchester city" absorbs "manchester").
        """
        found: list[Entity] = []
        covered: list[tuple[int, int]] = []
        for pattern, canonical, entity_type in self._patterns:
            for match in pattern.finditer(text):
                span = match.span()
                if any(span[0] >= s and span[1] <= e for s, e in covered):
                    continue
                covered.append(span)
                entity = Entity(text=canonical, type=entity_type)
                if entity not in found:
                    found.append(entity)
        return found

    def __call__(self, text: str) -> list[str]:
        """Service-resolver form: entity strings for one text."""
        return [str(entity) for entity in self.extract(text)]


def _word_pattern(name: str) -> re.Pattern[str]:
    return re.compile(rf"\b{re.escape(name)}\b", re.IGNORECASE)
