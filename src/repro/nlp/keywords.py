"""Key-term extraction for peak labeling.

TwitInfo annotates each detected peak "with automatically-generated key
terms that appear frequently in tweets during the peak" — e.g. '3-0' and
'Tevez' for a goal. The standard formulation (and the one the TwitInfo
paper describes) is TF-IDF: a term scores highly when frequent *within the
peak* and rare in the event's background traffic.

:class:`KeywordExtractor` maintains background document frequencies
incrementally (streaming-friendly) and scores any window of tweets against
them.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Sequence
from dataclasses import dataclass
import math

from repro.nlp.tokenize import content_tokens


@dataclass(frozen=True)
class ScoredTerm:
    """One extracted term with its TF-IDF score."""

    term: str
    score: float
    frequency: int


class KeywordExtractor:
    """Incremental background model + windowed TF-IDF scoring.

    Feed every event tweet through :meth:`observe` as it arrives; call
    :meth:`extract` with the texts of a peak window to get its labels.
    """

    def __init__(self) -> None:
        self._document_frequency: Counter[str] = Counter()
        self._documents = 0

    def observe(self, text: str) -> None:
        """Add one tweet to the background model."""
        self._documents += 1
        self._document_frequency.update(set(content_tokens(text)))

    def observe_all(self, texts: Iterable[str]) -> None:
        for text in texts:
            self.observe(text)

    @property
    def documents(self) -> int:
        """Background corpus size."""
        return self._documents

    def idf(self, term: str) -> float:
        """Smoothed inverse document frequency of ``term``."""
        df = self._document_frequency.get(term, 0)
        return math.log((self._documents + 1) / (df + 1)) + 1.0

    def extract(
        self,
        texts: Sequence[str],
        k: int = 5,
        min_frequency: int = 2,
    ) -> list[ScoredTerm]:
        """Top-``k`` TF-IDF terms for a window of tweets.

        Args:
            texts: tweet bodies inside the window (the peak).
            k: number of terms to return.
            min_frequency: drop terms appearing in fewer than this many
                window tweets (suppresses one-off noise).
        """
        term_frequency: Counter[str] = Counter()
        for text in texts:
            term_frequency.update(set(content_tokens(text)))
        scored = [
            ScoredTerm(
                term=term,
                score=frequency * self.idf(term),
                frequency=frequency,
            )
            for term, frequency in term_frequency.items()
            if frequency >= min_frequency
        ]
        scored.sort(key=lambda s: (-s.score, s.term))
        return scored[:k]
