"""Tweet-aware tokenization.

Tweets are not newswire: they carry hashtags, @-mentions, URLs, emoticons,
and score strings like "3-0" that downstream features care about. The
tokenizer:

- lowercases,
- replaces URLs with nothing (the links panel extracts them separately),
- keeps hashtag bodies as plain tokens (``#mcfc`` → ``mcfc``),
- drops @-mentions (they name accounts, not content),
- keeps emoticons as standalone tokens,
- keeps hyphenated number patterns (``3-0``) intact — TwitInfo's peak
  labels depend on them,
- splits the rest on non-word characters.
"""

from __future__ import annotations

import re

#: Emoticons recognized as standalone tokens.
EMOTICONS: frozenset[str] = frozenset(
    {":)", ":-)", ":D", ";)", "=)", "<3", ":(", ":-(", ":'(", "D:", "=("}
)

POSITIVE_EMOTICONS: frozenset[str] = frozenset({":)", ":-)", ":D", ";)", "=)", "<3"})
NEGATIVE_EMOTICONS: frozenset[str] = frozenset({":(", ":-(", ":'(", "D:", "=("})

_URL_RE = re.compile(r"https?://\S+")
_MENTION_RE = re.compile(r"@\w+")
_EMOTICON_RE = re.compile(
    "|".join(re.escape(e) for e in sorted(EMOTICONS, key=len, reverse=True))
)
_SCORE_RE = re.compile(r"\b\d+-\d+\b")
_WORD_RE = re.compile(r"[a-z0-9']+")

#: Function words excluded from keyword extraction and similarity.
STOPWORDS: frozenset[str] = frozenset(
    """a about after again all also am an and any are as at be because been
    before being between both but by can cannot could did do does doing down
    during each few for from further had has have having he her here hers him
    his how i if in into is it its itself just like me more most my myself no
    nor not now of off on once only or other our ours out over own re s same
    she so some such t than that the their theirs them then there these they
    this those through to too under until up very was we were what when where
    which while who whom why will with you your yours yourself
    rt via amp im dont cant wont didnt doesnt isnt arent thats whats gonna
    gotta lol omg wow hey ok okay yeah yes no right really think know get got
    one two going go day today day""".split()
)


def tokenize(text: str, keep_emoticons: bool = True) -> list[str]:
    """Tokenize tweet text into lowercase tokens.

    Args:
        text: raw tweet body.
        keep_emoticons: include emoticons as tokens (the sentiment pipeline
            strips them from *training* features because they are the
            distant-supervision labels).
    """
    emoticons = _EMOTICON_RE.findall(text) if keep_emoticons else []
    stripped = _URL_RE.sub(" ", text)
    stripped = _MENTION_RE.sub(" ", stripped)
    stripped = _EMOTICON_RE.sub(" ", stripped)
    lowered = stripped.lower().replace("#", " ")
    scores = _SCORE_RE.findall(lowered)
    without_scores = _SCORE_RE.sub(" ", lowered)
    words = _WORD_RE.findall(without_scores)
    return words + scores + emoticons


def content_tokens(text: str) -> list[str]:
    """Tokens with stopwords and emoticons removed — the keyword features."""
    return [
        token
        for token in tokenize(text, keep_emoticons=False)
        if token not in STOPWORDS and len(token) > 1
    ]
