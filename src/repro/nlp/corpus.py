"""Distant-supervision training corpus.

The original TweeQL sentiment classifier was trained the way Go et al.'s
"Twitter sentiment" work popularized: collect tweets containing positive or
negative emoticons, label them by the emoticon, and strip the emoticon from
the features. This module generates such a corpus from the same text
composers that drive the workloads, so the classifier's training
distribution matches what queries will classify — with held-out test data
labeled by the *generator's* ground truth rather than the emoticon
heuristic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro import rng as rng_mod
from repro.nlp.tokenize import EMOTICONS
from repro.twitter import text as text_mod
from repro.twitter import vocabulary as V


@dataclass(frozen=True)
class LabeledTweet:
    """One training/test example: raw text and its true label (-1/0/+1)."""

    text: str
    label: int


def _compose_any(rng: random.Random) -> tuple[str, int]:
    """Draw a tweet from the full mix of composers."""
    roll = rng.random()
    if roll < 0.45:
        return text_mod.compose_chatter(rng)
    if roll < 0.60:
        scorer = rng.choice(V.SOCCER_PLAYERS_HOME + V.SOCCER_PLAYERS_AWAY)
        score = f"{rng.randint(0, 4)}-{rng.randint(0, 4)}"
        return text_mod.compose_soccer_goal(
            rng, scorer, score, "manchester city", supporters_positive=0.5
        )
    if roll < 0.72:
        return text_mod.compose_soccer_play(rng, rng.choice(V.SOCCER_KEYWORDS))
    if roll < 0.85:
        place = rng.choice(("Tokyo", "Santiago", "Padang", "California"))
        return text_mod.compose_earthquake(rng, place, 4.0 + 3.0 * rng.random())
    verb, obj = rng.choice(V.NEWS_STORIES)
    return text_mod.compose_news(rng, verb, obj, positive=0.3, negative=0.3)


def has_emoticon_label(text: str) -> int | None:
    """Distant-supervision label from emoticons; None when ambiguous/absent."""
    from repro.nlp.tokenize import NEGATIVE_EMOTICONS, POSITIVE_EMOTICONS

    has_positive = any(e in text for e in POSITIVE_EMOTICONS)
    has_negative = any(e in text for e in NEGATIVE_EMOTICONS)
    if has_positive and not has_negative:
        return 1
    if has_negative and not has_positive:
        return -1
    return None


def training_corpus(
    size: int = 4000, seed: int = rng_mod.DEFAULT_SEED
) -> list[LabeledTweet]:
    """Emoticon-labeled training examples (positive/negative only).

    Draws composed tweets until ``size`` of them carry an unambiguous
    emoticon label. The emoticon provides the label; features are extracted
    with emoticons stripped (the classifier does that).
    """
    rng = rng_mod.derive(seed, "corpus:train")
    examples: list[LabeledTweet] = []
    while len(examples) < size:
        text, _true = _compose_any(rng)
        label = has_emoticon_label(text)
        if label is not None:
            examples.append(LabeledTweet(text=text, label=label))
    return examples


def test_corpus(
    size: int = 1000, seed: int = rng_mod.DEFAULT_SEED
) -> list[LabeledTweet]:
    """Ground-truth-labeled held-out examples (includes neutrals).

    Labels come from the composer (what the author *meant*), not from
    emoticons, so accuracy numbers measure real generalization — including
    on tweets whose only sentiment cue is phrasing.
    """
    rng = rng_mod.derive(seed, "corpus:test")
    examples: list[LabeledTweet] = []
    while len(examples) < size:
        text, true_label = _compose_any(rng)
        examples.append(LabeledTweet(text=text, label=true_label))
    return examples


def strip_emoticons(text: str) -> str:
    """Remove every known emoticon from ``text`` (training-feature hygiene)."""
    for emoticon in EMOTICONS:
        text = text.replace(emoticon, " ")
    return text
