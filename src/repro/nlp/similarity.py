"""Cosine-similarity ranking.

TwitInfo's Relevant Tweets panel sorts tweets "by similarity to the event
or peak keywords, so that tweets near the top are most representative".
This module implements that ranking: bag-of-words cosine between each tweet
and the keyword query, with TF-IDF weighting when an extractor's background
model is available.
"""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Sequence
from typing import TypeVar, Callable

from repro.nlp.keywords import KeywordExtractor
from repro.nlp.tokenize import content_tokens

T = TypeVar("T")


def _vectorize(
    tokens: Sequence[str], extractor: KeywordExtractor | None
) -> dict[str, float]:
    counts = Counter(tokens)
    if extractor is None:
        return dict(counts)
    return {term: count * extractor.idf(term) for term, count in counts.items()}


def cosine_similarity(
    left: dict[str, float], right: dict[str, float]
) -> float:
    """Cosine between two sparse weight vectors (0.0 when either is empty)."""
    if not left or not right:
        return 0.0
    if len(right) < len(left):
        left, right = right, left
    dot = sum(weight * right.get(term, 0.0) for term, weight in left.items())
    if dot == 0.0:
        return 0.0
    norm_left = math.sqrt(sum(w * w for w in left.values()))
    norm_right = math.sqrt(sum(w * w for w in right.values()))
    return dot / (norm_left * norm_right)


def rank_by_similarity(
    items: Sequence[T],
    keywords: Sequence[str],
    text_of: Callable[[T], str],
    extractor: KeywordExtractor | None = None,
    limit: int | None = None,
) -> list[tuple[T, float]]:
    """Rank items by cosine similarity of their text to the keywords.

    Args:
        items: anything with extractable text (tweets, rows…).
        keywords: the event or peak keywords.
        text_of: text accessor for an item.
        extractor: optional background model for TF-IDF weighting.
        limit: truncate the ranking.

    Returns (item, similarity) pairs, best first; ties broken by input
    order (stable sort), so earlier tweets win among equals.
    """
    query_vector = _vectorize(
        [token for keyword in keywords for token in content_tokens(keyword)]
        or [k.lower() for k in keywords],
        extractor,
    )
    scored = [
        (item, cosine_similarity(
            _vectorize(content_tokens(text_of(item)), extractor), query_vector
        ))
        for item in items
    ]
    scored.sort(key=lambda pair: -pair[1])
    return scored[:limit] if limit is not None else scored
