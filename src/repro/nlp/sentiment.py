"""Sentiment classification.

TweeQL's classification framework "used primarily for sentiment analysis".
The classifier is a multinomial Naive Bayes over tweet tokens, trained with
emoticon distant supervision (see :mod:`repro.nlp.corpus`), with:

- emoticons stripped from training features (they are the labels),
- a high-precision emoticon rule at inference time (an emoticon in live
  text is the strongest signal there is),
- a neutral band: when the log-odds magnitude is below a threshold, the
  tweet is labeled neutral (0) — this is how a binary-trained classifier
  produces the positive/negative/neutral labels TwitInfo's pie chart and
  tweet coloring use.

Labels are integers: +1 positive, -1 negative, 0 neutral.
"""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Sequence

from repro.nlp.corpus import (
    LabeledTweet,
    strip_emoticons,
    training_corpus,
)
from repro.nlp.tokenize import (
    NEGATIVE_EMOTICONS,
    POSITIVE_EMOTICONS,
    tokenize,
)

POSITIVE, NEUTRAL, NEGATIVE = 1, 0, -1


class SentimentClassifier:
    """Multinomial Naive Bayes with an emoticon rule and a neutral band.

    Args:
        neutral_band: label neutral when |log-odds| is below this value.
        smoothing: Laplace smoothing constant for token likelihoods.
        ngram: 1 for unigram features, 2 to add adjacent-token bigrams
            ("so happy", "what a") — bigrams capture negation and
            intensity phrasing unigrams miss (ablated in benchmark E10).
    """

    def __init__(
        self,
        neutral_band: float = 2.0,
        smoothing: float = 1.0,
        ngram: int = 1,
    ) -> None:
        if smoothing <= 0:
            raise ValueError("smoothing must be positive")
        if ngram not in (1, 2):
            raise ValueError("ngram must be 1 or 2")
        self.neutral_band = neutral_band
        self._smoothing = smoothing
        self._ngram = ngram
        self._log_prior: dict[int, float] = {}
        self._log_likelihood: dict[int, dict[str, float]] = {}
        self._default_ll: dict[int, float] = {}
        self._vocabulary: set[str] = set()
        self._trained = False

    # -- training -------------------------------------------------------------

    def _features(self, text: str) -> list[str]:
        """Tokens (and bigrams when ``ngram=2``) with emoticons stripped."""
        tokens = tokenize(strip_emoticons(text), keep_emoticons=False)
        if self._ngram == 1:
            return tokens
        bigrams = [
            f"{a}_{b}" for a, b in zip(tokens, tokens[1:])
        ]
        return tokens + bigrams

    def train(self, examples: Sequence[LabeledTweet]) -> None:
        """Fit on emoticon-labeled examples (labels must be +1/-1)."""
        token_counts: dict[int, Counter[str]] = {POSITIVE: Counter(), NEGATIVE: Counter()}
        class_counts: Counter[int] = Counter()
        for example in examples:
            if example.label not in (POSITIVE, NEGATIVE):
                raise ValueError(
                    "training labels must be +1 or -1 (neutral emerges from "
                    "the confidence band)"
                )
            class_counts[example.label] += 1
            tokens = self._features(example.text)
            token_counts[example.label].update(tokens)
            self._vocabulary.update(tokens)
        if not class_counts[POSITIVE] or not class_counts[NEGATIVE]:
            raise ValueError("training data must include both classes")

        total_examples = sum(class_counts.values())
        vocab_size = max(1, len(self._vocabulary))
        for label in (POSITIVE, NEGATIVE):
            self._log_prior[label] = math.log(class_counts[label] / total_examples)
            total_tokens = sum(token_counts[label].values())
            denominator = total_tokens + self._smoothing * vocab_size
            self._log_likelihood[label] = {
                token: math.log((count + self._smoothing) / denominator)
                for token, count in token_counts[label].items()
            }
            self._default_ll[label] = math.log(self._smoothing / denominator)
        self._trained = True

    @property
    def vocabulary_size(self) -> int:
        """Number of distinct training tokens."""
        return len(self._vocabulary)

    # -- inference ------------------------------------------------------------

    def log_odds(self, text: str) -> float:
        """log P(positive | text) − log P(negative | text) (NB estimate)."""
        if not self._trained:
            raise RuntimeError("classifier is not trained; call train() first")
        tokens = self._features(text)
        score = self._log_prior[POSITIVE] - self._log_prior[NEGATIVE]
        for token in tokens:
            if token not in self._vocabulary:
                continue  # unseen tokens carry no signal either way
            positive_ll = self._log_likelihood[POSITIVE].get(
                token, self._default_ll[POSITIVE]
            )
            negative_ll = self._log_likelihood[NEGATIVE].get(
                token, self._default_ll[NEGATIVE]
            )
            score += positive_ll - negative_ll
        return score

    def classify(self, text: str) -> int:
        """Label a tweet: +1 / -1 / 0.

        The emoticon rule fires first: an unambiguous emoticon decides the
        label outright. Otherwise NB log-odds with the neutral band.
        """
        has_positive = any(e in text for e in POSITIVE_EMOTICONS)
        has_negative = any(e in text for e in NEGATIVE_EMOTICONS)
        if has_positive and not has_negative:
            return POSITIVE
        if has_negative and not has_positive:
            return NEGATIVE
        odds = self.log_odds(text)
        if odds > self.neutral_band:
            return POSITIVE
        if odds < -self.neutral_band:
            return NEGATIVE
        return NEUTRAL

    def score(self, text: str) -> float:
        """Signed confidence squashed to [-1, 1] (0 ≈ neutral)."""
        has_positive = any(e in text for e in POSITIVE_EMOTICONS)
        has_negative = any(e in text for e in NEGATIVE_EMOTICONS)
        if has_positive and not has_negative:
            return 1.0
        if has_negative and not has_positive:
            return -1.0
        return math.tanh(self.log_odds(text) / 4.0)

    # -- persistence ------------------------------------------------------------

    def to_dict(self) -> dict:
        """Serializable model state (JSON-safe)."""
        if not self._trained:
            raise RuntimeError("cannot serialize an untrained classifier")
        return {
            "format": "tweeql-nb-v1",
            "neutral_band": self.neutral_band,
            "smoothing": self._smoothing,
            "ngram": self._ngram,
            "log_prior": {str(k): v for k, v in self._log_prior.items()},
            "log_likelihood": {
                str(label): table
                for label, table in self._log_likelihood.items()
            },
            "default_ll": {str(k): v for k, v in self._default_ll.items()},
            "vocabulary": sorted(self._vocabulary),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SentimentClassifier":
        """Rebuild a trained classifier from :meth:`to_dict` output."""
        if payload.get("format") != "tweeql-nb-v1":
            raise ValueError(f"unknown classifier format: {payload.get('format')!r}")
        classifier = cls(
            neutral_band=payload["neutral_band"],
            smoothing=payload["smoothing"],
            ngram=payload.get("ngram", 1),
        )
        classifier._log_prior = {int(k): v for k, v in payload["log_prior"].items()}
        classifier._log_likelihood = {
            int(label): dict(table)
            for label, table in payload["log_likelihood"].items()
        }
        classifier._default_ll = {
            int(k): v for k, v in payload["default_ll"].items()
        }
        classifier._vocabulary = set(payload["vocabulary"])
        classifier._trained = True
        return classifier

    def save(self, path: str) -> None:
        """Write the trained model to a JSON file."""
        import json

        with open(path, "w", encoding="utf-8") as f:
            json.dump(self.to_dict(), f)

    @classmethod
    def load(cls, path: str) -> "SentimentClassifier":
        """Load a model previously written by :meth:`save`."""
        import json

        with open(path, encoding="utf-8") as f:
            return cls.from_dict(json.load(f))

    def confusion_matrix(
        self, examples: Sequence[LabeledTweet]
    ) -> list[list[float]]:
        """Row-normalized confusion matrix P(predicted | true).

        Rows and columns are ordered (positive, negative, neutral). Used by
        :meth:`repro.twitinfo.sentiment_view.SentimentSummary.confusion_corrected_proportions`
        to de-bias aggregate counts, the way TwitInfo calibrated its pie
        against a hand-labeled sample.
        """
        order = (POSITIVE, NEGATIVE, NEUTRAL)
        index = {label: i for i, label in enumerate(order)}
        counts = [[0.0] * 3 for _ in range(3)]
        for example in examples:
            predicted = self.classify(example.text)
            counts[index[example.label]][index[predicted]] += 1.0
        for row in counts:
            total = sum(row)
            if total == 0:
                row[:] = [1 / 3, 1 / 3, 1 / 3]
            else:
                row[:] = [value / total for value in row]
        return counts

    def evaluate(self, examples: Sequence[LabeledTweet]) -> dict[str, float]:
        """Accuracy plus per-class recall on labeled examples."""
        correct = 0
        per_class_total: Counter[int] = Counter()
        per_class_correct: Counter[int] = Counter()
        for example in examples:
            predicted = self.classify(example.text)
            per_class_total[example.label] += 1
            if predicted == example.label:
                correct += 1
                per_class_correct[example.label] += 1
        total = len(examples)
        return {
            "accuracy": correct / total if total else 0.0,
            "recall_positive": _ratio(per_class_correct[1], per_class_total[1]),
            "recall_negative": _ratio(per_class_correct[-1], per_class_total[-1]),
            "recall_neutral": _ratio(per_class_correct[0], per_class_total[0]),
        }


def _ratio(numerator: int, denominator: int) -> float:
    return numerator / denominator if denominator else 0.0


_default_cache: dict[tuple[int, int], SentimentClassifier] = {}


def train_default_classifier(
    corpus_size: int = 4000, seed: int | None = None
) -> SentimentClassifier:
    """Train (and memoize) the default classifier used by sessions."""
    from repro import rng as rng_mod

    actual_seed = rng_mod.DEFAULT_SEED if seed is None else seed
    key = (corpus_size, actual_seed)
    if key not in _default_cache:
        classifier = SentimentClassifier()
        classifier.train(training_corpus(size=corpus_size, seed=actual_seed))
        _default_cache[key] = classifier
    return _default_cache[key]
