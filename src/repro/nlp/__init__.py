"""Text analytics substrate.

TweeQL's "classification framework, used primarily for sentiment analysis"
plus the text machinery TwitInfo's panels need:

- :mod:`repro.nlp.tokenize` — tweet-aware tokenization,
- :mod:`repro.nlp.corpus` — emoticon distant-supervision training data,
- :mod:`repro.nlp.sentiment` — the Naive Bayes classifier,
- :mod:`repro.nlp.keywords` — TF-IDF key-term extraction (peak labels),
- :mod:`repro.nlp.similarity` — cosine ranking (relevant tweets),
- :mod:`repro.nlp.entities` — OpenCalais-style named-entity extraction.
"""

from repro.nlp.entities import Entity, EntityExtractor
from repro.nlp.keywords import KeywordExtractor
from repro.nlp.sentiment import SentimentClassifier, train_default_classifier
from repro.nlp.similarity import cosine_similarity, rank_by_similarity
from repro.nlp.tokenize import STOPWORDS, tokenize

__all__ = [
    "Entity",
    "EntityExtractor",
    "KeywordExtractor",
    "SentimentClassifier",
    "train_default_classifier",
    "cosine_similarity",
    "rank_by_similarity",
    "STOPWORDS",
    "tokenize",
]
