"""Tweet and user records.

These mirror the fields of the 2011 Twitter API objects that TweeQL's
``twitter`` stream schema exposed: tweet text, creation time, user name,
free-text profile location, optional exact geotag, and derived entities
(hashtags, mentions, URLs).

``Tweet.ground_truth`` carries generator-side labels (true sentiment, the
scenario event that caused the tweet, true coordinates) that the *engine
never sees* — they exist so tests and benchmarks can score detectors against
reality, playing the role of the human annotators in the TwitInfo
evaluation.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any

_HASHTAG_RE = re.compile(r"#(\w+)")
_MENTION_RE = re.compile(r"@(\w+)")
_URL_RE = re.compile(r"https?://\S+")


@dataclass(frozen=True)
class User:
    """A Twitter account.

    Attributes:
        user_id: numeric account id.
        screen_name: handle without the leading ``@``.
        location: free-text profile location ("" when unset). Messy on
            purpose: real profile locations were messy, and geocoding them
            is one of the paper's motivating UDFs.
        home: the true (lat, lon) the generator placed this user at —
            ground truth, not visible through the API schema.
        geo_enabled: whether this user's tweets may carry exact geotags.
        followers: follower count (drives retweet-ish text patterns).
        lang: BCP-47 language code; the simulation is English-only but the
            field is kept for schema fidelity.
    """

    user_id: int
    screen_name: str
    location: str = ""
    home: tuple[float, float] | None = None
    geo_enabled: bool = False
    followers: int = 0
    lang: str = "en"


@dataclass(frozen=True)
class TweetEntities:
    """Entities parsed from tweet text (the API pre-parsed these)."""

    hashtags: tuple[str, ...] = ()
    mentions: tuple[str, ...] = ()
    urls: tuple[str, ...] = ()

    @classmethod
    def from_text(cls, text: str) -> "TweetEntities":
        """Extract hashtags, mentions, and URLs from raw tweet text."""
        return cls(
            hashtags=tuple(m.group(1).lower() for m in _HASHTAG_RE.finditer(text)),
            mentions=tuple(m.group(1) for m in _MENTION_RE.finditer(text)),
            urls=tuple(m.group(0).rstrip(".,;!?)") for m in _URL_RE.finditer(text)),
        )


@dataclass(frozen=True)
class Tweet:
    """One tweet as delivered by the streaming API.

    Attributes:
        tweet_id: unique, increasing id (Twitter ids were roughly
            time-ordered; the simulator's strictly are).
        created_at: virtual timestamp, seconds since epoch.
        user: the author.
        text: the tweet body (<= 140 characters, as in 2011).
        geo: exact (lat, lon) geotag when the user opted in, else None.
        entities: pre-parsed hashtags/mentions/URLs.
        ground_truth: generator-side labels (dict; keys include
            ``sentiment`` in {-1, 0, +1}, ``topic``, ``event_id``,
            ``coords``). Hidden from the query schema.
    """

    tweet_id: int
    created_at: float
    user: User
    text: str
    geo: tuple[float, float] | None = None
    entities: TweetEntities | None = None
    ground_truth: dict[str, Any] = field(default_factory=dict, hash=False)

    def __post_init__(self) -> None:
        if self.entities is None:
            object.__setattr__(self, "entities", TweetEntities.from_text(self.text))

    @property
    def location(self) -> str:
        """The author's free-text profile location."""
        return self.user.location

    @property
    def screen_name(self) -> str:
        """The author's handle."""
        return self.user.screen_name

    def contains(self, needle: str) -> bool:
        """Case-insensitive substring test on the tweet text.

        This is the semantics of TweeQL's ``text contains 'obama'``.
        """
        return needle.casefold() in self.text.casefold()

    def matches_any_keyword(self, keywords: tuple[str, ...]) -> bool:
        """True when any keyword appears in the text (API ``track`` rule)."""
        folded = self.text.casefold()
        return any(k.casefold() in folded for k in keywords)

    def to_row(self) -> dict[str, Any]:
        """Project this tweet onto TweeQL's ``twitter`` stream schema.

        The schema matches the columns the paper's example queries use:
        ``text``, ``loc`` (profile location), ``created_at``, ``user_id``,
        ``screen_name``, ``geo_lat``/``geo_lon`` (exact geotag or None),
        ``location`` (the geotag as a (lat, lon) pair — what the paper's
        ``location in [bounding box …]`` predicate tests), ``lang``,
        ``followers``, and the raw tweet object under ``__tweet__`` for
        UDFs that need entity access.
        """
        geo_lat, geo_lon = self.geo if self.geo is not None else (None, None)
        return {
            "tweet_id": self.tweet_id,
            "text": self.text,
            "loc": self.user.location,
            "created_at": self.created_at,
            "user_id": self.user.user_id,
            "screen_name": self.user.screen_name,
            "geo_lat": geo_lat,
            "geo_lon": geo_lon,
            "location": self.geo,
            "lang": self.user.lang,
            "followers": self.user.followers,
            "__tweet__": self,
        }


#: Column names of the ``twitter`` stream schema, in order.
TWITTER_SCHEMA: tuple[str, ...] = (
    "tweet_id",
    "text",
    "loc",
    "created_at",
    "user_id",
    "screen_name",
    "geo_lat",
    "geo_lon",
    "location",
    "lang",
    "followers",
)
