"""Scenario workload generators.

Section 4 of the paper commits the demo to three canned TwitInfo scenarios —
"a soccer match, a timeline of earthquakes, and a summary of a month in
Barack Obama's life" — and the TweeQL examples track keywords like "obama"
against background traffic. This module generates all of them as
deterministic, seeded streams of :class:`~repro.twitter.models.Tweet`
objects with retained ground truth:

- every tweet carries its true sentiment, topic, and causal event id;
- every scenario carries a list of :class:`ScenarioEvent` records (goal
  times and scorers, quake onsets and magnitudes, news-story days) against
  which peak detection and labeling are scored — these play the role of the
  human annotators in the TwitInfo CHI'11 evaluation.

Tweet arrivals are non-homogeneous Poisson processes built from
piecewise-constant rate tracks: a background-chatter track, a topical base
track, and a burst track per event (sharp onset, staged decay — the shape
of real reaction spikes on Twitter).
"""

from __future__ import annotations

import random
from collections.abc import Callable, Iterator
from dataclasses import dataclass, field
from typing import Any

from repro import rng as rng_mod
from repro.clock import DEFAULT_EPOCH
from repro.twitter import text as text_mod
from repro.twitter import vocabulary as V
from repro.twitter.models import Tweet, User
from repro.twitter.users import UserPopulation

#: A composer returns (text, true_sentiment) for a tweet at a given time.
Composer = Callable[[random.Random, float], tuple[str, int]]


@dataclass(frozen=True)
class ScenarioEvent:
    """Ground truth for one real-world moment within a scenario.

    Attributes:
        event_id: unique within the scenario.
        name: human-readable description ("GOAL Tevez 1-0").
        time: the instant the event happened (virtual seconds).
        start/end: the window in which reaction tweets were generated.
        expected_terms: tokens a good peak labeler should surface for this
            event (the paper's "3-0", "Tevez" example).
        info: extra scenario-specific facts (magnitude, place, score…).
    """

    event_id: int
    name: str
    time: float
    start: float
    end: float
    expected_terms: tuple[str, ...] = ()
    info: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class GroundTruth:
    """Everything a scorer needs about a scenario's reality."""

    events: tuple[ScenarioEvent, ...]

    def event_near(self, time: float, tolerance: float) -> ScenarioEvent | None:
        """The event whose instant lies within ``tolerance`` of ``time``."""
        best: ScenarioEvent | None = None
        best_gap = tolerance
        for event in self.events:
            gap = abs(event.time - time)
            if gap <= best_gap:
                best, best_gap = event, gap
        return best


@dataclass
class Scenario:
    """A generated workload: tweets in timestamp order plus ground truth.

    Attributes:
        name: scenario label ("soccer", "earthquakes", "news-month").
        keywords: the ``track`` keywords a TwitInfo event for this scenario
            would use.
        start/end: the covered virtual time span.
        tweets: all tweets, sorted by ``created_at``, ids assigned in order.
        truth: the retained ground truth.
    """

    name: str
    keywords: tuple[str, ...]
    start: float
    end: float
    tweets: list[Tweet]
    truth: GroundTruth

    def stream(self) -> Iterator[Tweet]:
        """Iterate tweets in timestamp order."""
        return iter(self.tweets)

    def __len__(self) -> int:
        return len(self.tweets)


# ---------------------------------------------------------------------------
# Poisson-track machinery
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _Track:
    """One piecewise-constant-rate Poisson arrival track."""

    start: float
    end: float
    rate: float  # tweets per second
    topic: str
    event_id: int | None
    compose: Composer
    localized: tuple[float, float, float] | None = None  # lat, lon, radius


def _arrivals(rng: random.Random, track: _Track) -> Iterator[float]:
    """Exponential inter-arrival sampling over the track's span."""
    if track.rate <= 0:
        return
    t = track.start
    while True:
        t += rng.expovariate(track.rate)
        if t >= track.end:
            return
        yield t


def _burst_tracks(
    onset: float,
    peak_rate: float,
    topic: str,
    event_id: int,
    compose: Composer,
    stages: tuple[tuple[float, float], ...] = ((60, 1.0), (120, 0.4), (180, 0.15)),
    localized: tuple[float, float, float] | None = None,
) -> list[_Track]:
    """A reaction burst: staged decay from ``peak_rate`` starting at onset.

    ``stages`` is a sequence of (duration_seconds, rate_multiplier).
    """
    tracks: list[_Track] = []
    t = onset
    for duration, multiplier in stages:
        tracks.append(
            _Track(
                start=t,
                end=t + duration,
                rate=peak_rate * multiplier,
                topic=topic,
                event_id=event_id,
                compose=compose,
                localized=localized,
            )
        )
        t += duration
    return tracks


#: Fraction of topical (non-chatter) tweets that are retweets of a recent
#: tweet on the same topic — 2011 event streams were thick with RTs.
RETWEET_RATE = 0.12

#: How many recent topical tweets are retweet candidates.
_RETWEET_POOL = 50


def _materialize(
    name: str,
    keywords: tuple[str, ...],
    start: float,
    end: float,
    tracks: list[_Track],
    events: tuple[ScenarioEvent, ...],
    population: UserPopulation,
    seed: int,
    retweet_rate: float = RETWEET_RATE,
) -> Scenario:
    """Sample every track, sort arrivals, and mint Tweet objects."""
    from collections import deque

    arrivals_rng = rng_mod.derive(seed, f"{name}:arrivals")
    text_rng = rng_mod.derive(seed, f"{name}:text")
    author_rng = rng_mod.derive(seed, f"{name}:authors")
    retweet_rng = rng_mod.derive(seed, f"{name}:retweets")

    drawn: list[tuple[float, _Track]] = []
    for track in tracks:
        for t in _arrivals(arrivals_rng, track):
            drawn.append((t, track))
    drawn.sort(key=lambda pair: pair[0])

    tweets: list[Tweet] = []
    recent_topical: deque[Tweet] = deque(maxlen=_RETWEET_POOL)
    for index, (t, track) in enumerate(drawn):
        if track.localized is not None:
            lat, lon, radius = track.localized
            author: User = population.sample_author_near(
                author_rng, lat, lon, radius
            )
        else:
            author = population.sample_author(author_rng)

        original: Tweet | None = None
        if (
            track.topic != "chatter"
            and recent_topical
            and retweet_rng.random() < retweet_rate
        ):
            original = retweet_rng.choice(list(recent_topical))
        if original is not None:
            body = f"RT @{original.screen_name}: {original.text}"
            if len(body) > 140:
                body = body[:139] + "…"
            truth = dict(original.ground_truth)
            truth["coords"] = author.home
            truth["retweet_of"] = original.tweet_id
        else:
            composed, sentiment = track.compose(text_rng, t)
            body = composed
            truth = {
                "sentiment": sentiment,
                "topic": track.topic,
                "event_id": track.event_id,
                "coords": author.home,
            }
        tweet = Tweet(
            tweet_id=index + 1,
            created_at=t,
            user=author,
            text=body,
            geo=population.geotag_for(author_rng, author),
            ground_truth=truth,
        )
        tweets.append(tweet)
        if track.topic != "chatter" and original is None:
            recent_topical.append(tweet)
    return Scenario(
        name=name,
        keywords=keywords,
        start=start,
        end=end,
        tweets=tweets,
        truth=GroundTruth(events=events),
    )


def _chatter_tracks(start: float, end: float, rate: float) -> list[_Track]:
    """Background chatter with a mild diurnal swing (hourly steps)."""
    import math

    tracks: list[_Track] = []
    hour = 3600.0
    t = start
    while t < end:
        segment_end = min(t + hour, end)
        # Diurnal factor in [0.6, 1.4]: a sine with 24 h period.
        phase = ((t - DEFAULT_EPOCH) % (24 * hour)) / (24 * hour)
        factor = 1.0 + 0.4 * math.sin(2 * math.pi * (phase - 0.25))
        tracks.append(
            _Track(
                start=t,
                end=segment_end,
                rate=rate * factor,
                topic="chatter",
                event_id=None,
                compose=lambda rng, _t: text_mod.compose_chatter(rng),
            )
        )
        t = segment_end
    return tracks


# ---------------------------------------------------------------------------
# Scenario: soccer match (Figure 1 — Manchester City vs Liverpool)
# ---------------------------------------------------------------------------


def soccer_match_scenario(
    seed: int = rng_mod.DEFAULT_SEED,
    population: UserPopulation | None = None,
    kickoff: float = DEFAULT_EPOCH + 3600.0,
    intensity: float = 1.0,
    goals: tuple[tuple[int, str, str], ...] = (
        (13, "tevez", "1-0"),
        (52, "silva", "2-0"),
        (78, "tevez", "3-0"),
    ),
) -> Scenario:
    """The paper's Figure 1 workload: a soccer match with goal spikes.

    Args:
        seed: determinism seed.
        population: author pool; a default 5000-user population when None.
        kickoff: virtual time of kickoff.
        intensity: global rate multiplier (scale workloads down for fast
            tests, up for throughput benches).
        goals: (minute, scorer, new_score) tuples; the default reproduces
            the paper's annotated example, where Tevez's goal making it 3-0
            is peak "F" labeled with "3-0" and "Tevez".
    """
    population = population or UserPopulation(seed=seed)
    start = kickoff - 1800.0  # half an hour of build-up
    full_time = kickoff + 95 * 60.0
    end = full_time + 1800.0  # half an hour of post-match talk

    tracks = _chatter_tracks(start, end, rate=2.0 * intensity)

    def play_composer(rng: random.Random, _t: float) -> tuple[str, int]:
        return text_mod.compose_soccer_play(rng, rng.choice(V.SOCCER_KEYWORDS))

    # Build-up / in-match / post-match commentary.
    tracks.append(
        _Track(start, kickoff, 0.8 * intensity, "soccer", None, play_composer)
    )
    tracks.append(
        _Track(kickoff, full_time, 3.0 * intensity, "soccer", None, play_composer)
    )
    tracks.append(
        _Track(full_time, end, 1.2 * intensity, "soccer", None, play_composer)
    )

    events: list[ScenarioEvent] = []
    for event_id, (minute, scorer, score) in enumerate(goals, start=1):
        onset = kickoff + minute * 60.0
        # City (home side) fans are the majority in this crowd: goals by the
        # home side skew positive overall, which the sentiment pie reflects.
        supporters_positive = 0.65

        def goal_composer(
            rng: random.Random,
            _t: float,
            scorer: str = scorer,
            score: str = score,
            supporters_positive: float = supporters_positive,
        ) -> tuple[str, int]:
            return text_mod.compose_soccer_goal(
                rng, scorer, score, "manchester city", supporters_positive
            )

        tracks.extend(
            _burst_tracks(
                onset,
                peak_rate=18.0 * intensity,
                topic="soccer",
                event_id=event_id,
                compose=goal_composer,
            )
        )
        events.append(
            ScenarioEvent(
                event_id=event_id,
                name=f"GOAL {scorer} {score}",
                time=onset,
                start=onset,
                end=onset + 360.0,
                expected_terms=(scorer, score),
                info={"minute": minute, "scorer": scorer, "score": score},
            )
        )

    return _materialize(
        "soccer",
        V.SOCCER_KEYWORDS,
        start,
        end,
        tracks,
        tuple(events),
        population,
        seed,
    )


# ---------------------------------------------------------------------------
# Scenario: Red Sox vs Yankees (§3.3's regional-sentiment example)
# ---------------------------------------------------------------------------

#: NYC / Boston coordinates and fan radii for localized reaction tracks.
#: Radii are tight enough that the two metros stay disjoint.
_NYC = (40.71, -74.01, 1.2)
_BOSTON = (42.36, -71.06, 1.2)


def baseball_game_scenario(
    seed: int = rng_mod.DEFAULT_SEED,
    population: UserPopulation | None = None,
    first_pitch: float = DEFAULT_EPOCH + 3600.0,
    intensity: float = 1.0,
    homeruns: tuple[tuple[int, str, str, str], ...] = (
        (35, "yankees", "granderson", "1-0"),
        (95, "redsox", "ortiz", "1-1"),
        (150, "yankees", "jeter", "2-1"),
    ),
) -> Scenario:
    """The §3.3 example: a Red Sox–Yankees game where "opinion on an event
    differs by geographic region".

    Each home run spawns *two* localized reaction bursts: fans near the
    scoring team's city react overwhelmingly positively, fans near the
    other city negatively — so drilling the map into a peak shows exactly
    the regional sentiment split the paper describes.

    Args:
        homeruns: (minute, scoring team, slugger, new score) tuples.
    """
    population = population or UserPopulation(seed=seed)
    start = first_pitch - 1800.0
    final_out = first_pitch + 190 * 60.0  # ~3h10m game
    end = final_out + 1800.0

    tracks = _chatter_tracks(start, end, rate=2.0 * intensity)

    def play_composer(rng: random.Random, _t: float) -> tuple[str, int]:
        return text_mod.compose_baseball_play(
            rng, rng.choice(V.BASEBALL_KEYWORDS)
        )

    tracks.append(
        _Track(start, first_pitch, 0.6 * intensity, "baseball", None, play_composer)
    )
    tracks.append(
        _Track(first_pitch, final_out, 2.0 * intensity, "baseball", None, play_composer)
    )
    tracks.append(
        _Track(final_out, end, 0.9 * intensity, "baseball", None, play_composer)
    )

    events: list[ScenarioEvent] = []
    for event_id, (minute, team, slugger, score) in enumerate(homeruns, start=1):
        onset = first_pitch + minute * 60.0
        happy_city = _NYC if team == "yankees" else _BOSTON
        unhappy_city = _BOSTON if team == "yankees" else _NYC

        def hr_composer(
            positive_share: float,
            slugger: str = slugger,
            score: str = score,
            team: str = team,
        ):
            def compose(rng: random.Random, _t: float) -> tuple[str, int]:
                return text_mod.compose_baseball_homerun(
                    rng, slugger, score, team, positive_share
                )

            return compose

        # The scoring side's metro erupts happily; the rival's sulks.
        tracks.extend(
            _burst_tracks(
                onset, peak_rate=9.0 * intensity, topic="baseball",
                event_id=event_id, compose=hr_composer(0.85),
                localized=happy_city,
            )
        )
        tracks.extend(
            _burst_tracks(
                onset, peak_rate=6.0 * intensity, topic="baseball",
                event_id=event_id, compose=hr_composer(0.15),
                localized=unhappy_city,
            )
        )
        # Neutral national chatter about the homer.
        tracks.extend(
            _burst_tracks(
                onset, peak_rate=4.0 * intensity, topic="baseball",
                event_id=event_id, compose=hr_composer(0.5),
            )
        )
        events.append(
            ScenarioEvent(
                event_id=event_id,
                name=f"HOME RUN {slugger} ({team}) {score}",
                time=onset,
                start=onset,
                end=onset + 360.0,
                expected_terms=(slugger, score),
                info={"minute": minute, "team": team, "slugger": slugger,
                      "score": score},
            )
        )

    return _materialize(
        "baseball",
        V.BASEBALL_KEYWORDS,
        start,
        end,
        tracks,
        tuple(events),
        population,
        seed,
    )


# ---------------------------------------------------------------------------
# Scenario: earthquake timeline
# ---------------------------------------------------------------------------

#: Default quake sequence: (hour offset, place, magnitude).
DEFAULT_QUAKES: tuple[tuple[float, str, float], ...] = (
    (2.0, "Christchurch", 6.3),
    (9.5, "Tokyo", 5.1),
    (17.0, "Concepción", 6.9),
    (21.5, "Padang", 5.6),
)


def earthquake_scenario(
    seed: int = rng_mod.DEFAULT_SEED,
    population: UserPopulation | None = None,
    start: float = DEFAULT_EPOCH,
    quakes: tuple[tuple[float, str, float], ...] = DEFAULT_QUAKES,
    intensity: float = 1.0,
) -> Scenario:
    """A day of earthquakes: sharp localized spikes, magnitude-scaled.

    Reaction volume scales super-linearly with magnitude, and authors are
    drawn from near the epicenter (people tweet about quakes they felt),
    which feeds TwitInfo's map view clusters.
    """
    population = population or UserPopulation(seed=seed)
    end = start + 24 * 3600.0

    tracks = _chatter_tracks(start, end, rate=2.0 * intensity)

    # A trickle of generic quake talk so the topic exists between events.
    def ambient_composer(rng: random.Random, _t: float) -> tuple[str, int]:
        return text_mod.compose_earthquake(rng, "California", 3.0 + rng.random())

    tracks.append(
        _Track(start, end, 0.05 * intensity, "earthquake", None, ambient_composer)
    )

    gazetteer = population.gazetteer
    events: list[ScenarioEvent] = []
    for event_id, (hour, place, magnitude) in enumerate(quakes, start=1):
        onset = start + hour * 3600.0
        city = gazetteer.lookup(place)
        localized = (
            (city.lat, city.lon, 12.0) if city is not None else None
        )
        # Volume scales with shaking: M5 → ~4/s peak, M7 → ~16/s peak.
        peak_rate = (2.0 ** (magnitude - 3.0)) * intensity

        def quake_composer(
            rng: random.Random,
            _t: float,
            place: str = place,
            magnitude: float = magnitude,
        ) -> tuple[str, int]:
            return text_mod.compose_earthquake(rng, place, magnitude)

        tracks.extend(
            _burst_tracks(
                onset,
                peak_rate=peak_rate,
                topic="earthquake",
                event_id=event_id,
                compose=quake_composer,
                stages=((120, 1.0), (300, 0.5), (600, 0.2), (900, 0.07)),
                localized=localized,
            )
        )
        events.append(
            ScenarioEvent(
                event_id=event_id,
                name=f"M{magnitude:.1f} earthquake {place}",
                time=onset,
                start=onset,
                end=onset + 1920.0,
                expected_terms=(place.lower().split()[0], f"{magnitude:.1f}"),
                info={"place": place, "magnitude": magnitude},
            )
        )

    return _materialize(
        "earthquakes",
        V.EARTHQUAKE_KEYWORDS,
        start,
        end,
        tracks,
        tuple(events),
        population,
        seed,
    )


# ---------------------------------------------------------------------------
# Scenario: a month of news ("obama")
# ---------------------------------------------------------------------------


def news_month_scenario(
    seed: int = rng_mod.DEFAULT_SEED,
    population: UserPopulation | None = None,
    start: float = DEFAULT_EPOCH,
    days: int = 30,
    n_stories: int = 8,
    intensity: float = 1.0,
) -> Scenario:
    """A month of Obama coverage: story-driven multi-hour elevations.

    Each story has its own sentiment mix (a signing skews positive, a budget
    fight skews negative), so per-peak sentiment differs — the drill-down
    behaviour TwitInfo's dashboard demonstrates.
    """
    population = population or UserPopulation(seed=seed)
    end = start + days * 24 * 3600.0
    layout_rng = rng_mod.derive(seed, "news:layout")

    tracks = _chatter_tracks(start, end, rate=1.0 * intensity)

    def ambient_composer(rng: random.Random, _t: float) -> tuple[str, int]:
        verb, obj = rng.choice(V.NEWS_STORIES)
        return text_mod.compose_news(rng, verb, obj, positive=0.2, negative=0.2)

    tracks.append(
        _Track(start, end, 0.08 * intensity, "news", None, ambient_composer)
    )

    stories = list(V.NEWS_STORIES)
    layout_rng.shuffle(stories)
    story_days = sorted(layout_rng.sample(range(1, days - 1), k=min(n_stories, days - 2)))

    events: list[ScenarioEvent] = []
    for event_id, day in enumerate(story_days, start=1):
        verb, obj = stories[(event_id - 1) % len(stories)]
        onset = start + day * 24 * 3600.0 + layout_rng.uniform(9, 20) * 3600.0
        positive = layout_rng.uniform(0.15, 0.55)
        negative = layout_rng.uniform(0.15, 0.9 - positive)

        def story_composer(
            rng: random.Random,
            _t: float,
            verb: str = verb,
            obj: str = obj,
            positive: float = positive,
            negative: float = negative,
        ) -> tuple[str, int]:
            return text_mod.compose_news(rng, verb, obj, positive, negative)

        tracks.extend(
            _burst_tracks(
                onset,
                peak_rate=1.2 * intensity,
                topic="news",
                event_id=event_id,
                compose=story_composer,
                stages=((1800, 1.0), (3600, 0.6), (7200, 0.3), (10800, 0.12)),
            )
        )
        key_token = obj.split()[-1]  # "bill", "plan", "justice", …
        events.append(
            ScenarioEvent(
                event_id=event_id,
                name=f"obama {verb} {obj}",
                time=onset,
                start=onset,
                end=onset + 23400.0,
                expected_terms=(key_token,),
                info={
                    "verb": verb,
                    "object": obj,
                    "positive": positive,
                    "negative": negative,
                    "day": day,
                },
            )
        )

    return _materialize(
        "news-month",
        V.NEWS_KEYWORDS,
        start,
        end,
        tracks,
        tuple(events),
        population,
        seed,
    )


# ---------------------------------------------------------------------------
# Scenario: election night (high-stress — rising baseline, late climax)
# ---------------------------------------------------------------------------


def election_night_scenario(
    seed: int = rng_mod.DEFAULT_SEED,
    population: UserPopulation | None = None,
    start: float = DEFAULT_EPOCH + 1800.0,
    intensity: float = 1.0,
    calls: tuple[tuple[float, str, str], ...] = (
        (2.0, "ohio", "harmon"),
        (2.75, "florida", "delgado"),
        (3.5, "colorado", "harmon"),
        (4.25, "virginia", "delgado"),
    ),
    projection_hour: float = 5.0,
    winner: str = "harmon",
) -> Scenario:
    """An election night: state calls on a steadily *rising* baseline.

    The stress here is the baseline itself — anticipation traffic climbs
    all night, so a peak detector tuned for a flat background must track a
    moving mean, and the projection climax lands on the highest baseline
    of all. Sampling thins an already-noisy ramp, which is exactly where
    shot noise phantoms peaks.

    Args:
        calls: (hour offset, state, winning candidate) network calls.
        projection_hour: hour offset of the race-deciding projection.
        winner: the candidate the final projection names.
    """
    population = population or UserPopulation(seed=seed)
    end = start + 6 * 3600.0

    tracks = _chatter_tracks(start, end, rate=2.0 * intensity)

    def anticipation_composer(rng: random.Random, _t: float) -> tuple[str, int]:
        return text_mod.compose_election_chatter(rng)

    # The rising baseline: polls-close anticipation, the counting hours,
    # then the everyone-watching climax window.
    ramp = (
        (start, start + 2 * 3600.0, 1.0),
        (start + 2 * 3600.0, start + 4 * 3600.0, 2.0),
        (start + 4 * 3600.0, end, 3.0),
    )
    for seg_start, seg_end, multiplier in ramp:
        tracks.append(
            _Track(
                seg_start, seg_end, multiplier * intensity, "election",
                None, anticipation_composer,
            )
        )

    events: list[ScenarioEvent] = []
    for event_id, (hour, state, called_for) in enumerate(calls, start=1):
        onset = start + hour * 3600.0

        def call_composer(
            rng: random.Random,
            _t: float,
            state: str = state,
            called_for: str = called_for,
        ) -> tuple[str, int]:
            return text_mod.compose_election_call(rng, state, called_for, 0.6)

        tracks.extend(
            _burst_tracks(
                onset,
                peak_rate=14.0 * intensity,
                topic="election",
                event_id=event_id,
                compose=call_composer,
                # A state call dominates conversation for a couple of
                # minutes (not one): the sustained stage is what keeps the
                # burst detectable after heavy sampling.
                stages=((150, 1.0), (180, 0.45), (240, 0.18)),
            )
        )
        events.append(
            ScenarioEvent(
                event_id=event_id,
                name=f"{state} called for {called_for}",
                time=onset,
                start=onset,
                end=onset + 570.0,
                expected_terms=(state, called_for),
                info={"state": state, "winner": called_for, "hour": hour},
            )
        )

    projection_onset = start + projection_hour * 3600.0
    projection_id = len(calls) + 1

    def projection_composer(rng: random.Random, _t: float) -> tuple[str, int]:
        return text_mod.compose_election_projection(rng, winner, 0.65)

    tracks.extend(
        _burst_tracks(
            projection_onset,
            peak_rate=26.0 * intensity,
            topic="election",
            event_id=projection_id,
            compose=projection_composer,
            stages=((120, 1.0), (240, 0.55), (480, 0.25), (720, 0.1)),
        )
    )
    events.append(
        ScenarioEvent(
            event_id=projection_id,
            name=f"projection: {winner} wins",
            time=projection_onset,
            start=projection_onset,
            end=projection_onset + 1560.0,
            expected_terms=("projection", winner),
            info={"winner": winner, "projection": True},
        )
    )

    return _materialize(
        "election",
        V.ELECTION_KEYWORDS,
        start,
        end,
        tracks,
        tuple(events),
        population,
        seed,
    )


# ---------------------------------------------------------------------------
# Scenario: breaking-news cascade (amplifying retweet waves)
# ---------------------------------------------------------------------------

#: The (fictional) fire's location: authors for the first wave are locals.
_CEDAR_RIDGE = (44.05, -121.30, 8.0)

#: Default cascade: (minutes after break, rate multiplier, update text,
#: expected labeler terms). Waves come faster *and* bigger — the
#: retweet-amplification shape of 2011 breaking news.
DEFAULT_CASCADE_WAVES: tuple[tuple[float, float, str, tuple[str, ...]], ...] = (
    (0.0, 1.0, "wildfire breaks out near cedar ridge", ("cedar", "ridge")),
    (25.0, 1.5, "evacuation ordered for cedar ridge", ("evacuation",)),
    (45.0, 2.2, "highway 9 closed as the wildfire spreads", ("highway", "closed")),
    (60.0, 3.3, "governor declares a wildfire emergency", ("governor", "emergency")),
)


def breaking_news_cascade_scenario(
    seed: int = rng_mod.DEFAULT_SEED,
    population: UserPopulation | None = None,
    break_time: float = DEFAULT_EPOCH + 1800.0,
    intensity: float = 1.0,
    waves: tuple[tuple[float, float, str, tuple[str, ...]], ...] = DEFAULT_CASCADE_WAVES,
    base_rate: float = 6.0,
) -> Scenario:
    """A breaking story amplified wave by wave through retweets.

    There is *no* topical traffic before the break (the story does not
    exist yet); then update waves arrive closer and closer together with
    growing amplitude, and the retweet share runs ~3x the normal rate —
    a thick RT cascade. Stresses peak separation: adjacent waves must not
    merge, and a thinned stream must not split one wave into two.

    Args:
        waves: (minutes after break, rate multiplier, update text,
            expected terms) per wave; the first wave is localized to the
            fire's region.
        base_rate: tweets/second of the first wave's burst at intensity 1.
    """
    population = population or UserPopulation(seed=seed)
    start = break_time - 1800.0
    end = break_time + 3.5 * 3600.0

    tracks = _chatter_tracks(start, end, rate=2.0 * intensity)

    def ambient_composer(rng: random.Random, _t: float) -> tuple[str, int]:
        return text_mod.compose_cascade_ambient(rng)

    # Sustained coverage exists only once the story has broken.
    tracks.append(
        _Track(break_time, end, 0.8 * intensity, "breaking", None, ambient_composer)
    )

    events: list[ScenarioEvent] = []
    for event_id, (minutes, multiplier, update, terms) in enumerate(waves, start=1):
        onset = break_time + minutes * 60.0

        def wave_composer(
            rng: random.Random, _t: float, update: str = update
        ) -> tuple[str, int]:
            return text_mod.compose_breaking_news(rng, update)

        tracks.extend(
            _burst_tracks(
                onset,
                peak_rate=base_rate * multiplier * intensity,
                topic="breaking",
                event_id=event_id,
                compose=wave_composer,
                stages=((90, 1.0), (180, 0.5), (300, 0.2)),
                localized=_CEDAR_RIDGE if event_id == 1 else None,
            )
        )
        events.append(
            ScenarioEvent(
                event_id=event_id,
                name=update,
                time=onset,
                start=onset,
                end=onset + 570.0,
                expected_terms=terms,
                info={"wave": event_id, "update": update},
            )
        )

    return _materialize(
        "cascade",
        V.CASCADE_KEYWORDS,
        start,
        end,
        tracks,
        tuple(events),
        population,
        seed,
        retweet_rate=0.35,
    )


# ---------------------------------------------------------------------------
# Scenario: bot flood (coordinated spam swamping a genuine signal)
# ---------------------------------------------------------------------------


def bot_flood_scenario(
    seed: int = rng_mod.DEFAULT_SEED,
    population: UserPopulation | None = None,
    start: float = DEFAULT_EPOCH,
    intensity: float = 1.0,
    launch_hour: float = 0.75,
    floods: tuple[tuple[float, float, float], ...] = (
        (1.5, 720.0, 15.0),
        (2.5, 1080.0, 22.0),
    ),
) -> Scenario:
    """A product launch whose keyword a spam botnet floods.

    One genuine reaction burst (the launch keynote) plus square-wave spam
    floods: near-instant onset, a flat plateau of near-duplicate giveaway
    tweets, near-instant stop. The floods *are* ground-truth events — the
    stress is that their square edges, thinned by sampling, are exactly
    the shape that phantoms extra peaks or splits the plateau.

    Args:
        launch_hour: hour offset of the genuine keynote burst.
        floods: (hour offset, duration seconds, tweets/sec at intensity 1)
            per bot flood.
    """
    population = population or UserPopulation(seed=seed)
    end = start + 4 * 3600.0

    tracks = _chatter_tracks(start, end, rate=2.0 * intensity)

    def ambient_composer(rng: random.Random, _t: float) -> tuple[str, int]:
        return text_mod.compose_launch_reaction(rng, 0.55)

    tracks.append(
        _Track(start, end, 0.6 * intensity, "botflood", None, ambient_composer)
    )

    launch_onset = start + launch_hour * 3600.0

    def launch_composer(rng: random.Random, _t: float) -> tuple[str, int]:
        return text_mod.compose_launch_reaction(rng, 0.7)

    tracks.extend(
        _burst_tracks(
            launch_onset,
            peak_rate=10.0 * intensity,
            topic="botflood",
            event_id=1,
            compose=launch_composer,
            # Keynote reaction sustains for a couple of minutes before
            # decaying — detectable even after heavy sampling.
            stages=((150, 1.0), (180, 0.5), (240, 0.2)),
        )
    )
    events: list[ScenarioEvent] = [
        ScenarioEvent(
            event_id=1,
            name="solaris launch keynote",
            time=launch_onset,
            start=launch_onset,
            end=launch_onset + 570.0,
            expected_terms=("launch",),
            info={"bot": False},
        )
    ]

    def spam_composer(rng: random.Random, _t: float) -> tuple[str, int]:
        return text_mod.compose_bot_spam(rng)

    for event_id, (hour, duration, rate) in enumerate(floods, start=2):
        onset = start + hour * 3600.0
        tracks.append(
            _Track(
                onset, onset + duration, rate * intensity, "botflood",
                event_id, spam_composer,
            )
        )
        events.append(
            ScenarioEvent(
                event_id=event_id,
                name=f"bot flood #{event_id - 1}",
                time=onset,
                start=onset,
                end=onset + duration,
                expected_terms=("free", "giveaway"),
                info={"bot": True, "duration": duration},
            )
        )

    return _materialize(
        "botflood",
        V.BOTFLOOD_KEYWORDS,
        start,
        end,
        tracks,
        tuple(events),
        population,
        seed,
    )


# ---------------------------------------------------------------------------
# Scenario: pure background chatter
# ---------------------------------------------------------------------------


def background_chatter(
    seed: int = rng_mod.DEFAULT_SEED,
    population: UserPopulation | None = None,
    start: float = DEFAULT_EPOCH,
    duration: float = 3600.0,
    rate: float = 5.0,
) -> Scenario:
    """Topic-free chatter; the null workload for engine/selectivity tests."""
    population = population or UserPopulation(seed=seed)
    end = start + duration
    tracks = _chatter_tracks(start, end, rate=rate)
    return _materialize(
        "chatter", (), start, end, tracks, (), population, seed
    )
