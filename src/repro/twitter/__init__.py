"""Simulated Twitter substrate.

The live 2011 Twitter streaming API is no longer available, so this package
provides a deterministic stand-in exposing the same surface TweeQL consumed:

- :mod:`repro.twitter.models` — the tweet/user records,
- :mod:`repro.twitter.users` — a synthetic user population with Zipfian
  activity and a realistic global geographic distribution,
- :mod:`repro.twitter.vocabulary` + :mod:`repro.twitter.text` — tweet text
  synthesis (topics, sentiment-bearing phrasing, hashtags, URLs, emoticons),
- :mod:`repro.twitter.workloads` — scenario generators with retained ground
  truth (the soccer match, earthquake timeline, and news-month demos from
  the paper, plus background chatter),
- :mod:`repro.twitter.stream` — the firehose and the ``StreamingAPI`` façade
  with ``track`` / ``locations`` / ``follow`` filters.
"""

from repro.twitter.models import Tweet, TweetEntities, User
from repro.twitter.stream import Firehose, StreamConnection, StreamingAPI
from repro.twitter.users import UserPopulation
from repro.twitter.workloads import (
    GroundTruth,
    ScenarioEvent,
    background_chatter,
    baseball_game_scenario,
    earthquake_scenario,
    news_month_scenario,
    soccer_match_scenario,
)

__all__ = [
    "Tweet",
    "TweetEntities",
    "User",
    "Firehose",
    "StreamConnection",
    "StreamingAPI",
    "UserPopulation",
    "GroundTruth",
    "ScenarioEvent",
    "background_chatter",
    "baseball_game_scenario",
    "earthquake_scenario",
    "news_month_scenario",
    "soccer_match_scenario",
]
