"""Synthetic user population.

The paper's "Uneven Aggregate Groups" discussion hinges on the real,
uneven global distribution of Twitter users ("Tokyo has many Twitter users,
but Cape Town has far fewer"). The population generator reproduces that
skew:

- home cities are sampled proportionally to population x 2011 Twitter
  adoption (from the gazetteer),
- per-user activity follows a bounded Zipf distribution (a few prolific
  accounts, a long tail),
- profile ``location`` strings are messy: canonical names, aliases, noisy
  decorations, or blank/whimsical strings that defeat geocoding — the
  failure mode the paper's geocoding UDF must tolerate,
- a minority of users are ``geo_enabled`` and attach exact (jittered)
  coordinates to tweets, feeding TwitInfo's map view.
"""

from __future__ import annotations

import random

from repro import rng as rng_mod
from repro.geo.gazetteer import City, Gazetteer, default_gazetteer
from repro.twitter.models import User

#: Whimsical profile locations that no geocoder can resolve.
_UNGEOCODABLE = (
    "somewhere over the rainbow", "earth", "the internet", "everywhere",
    "in my head", "wonderland", "the moon", "behind you", "", "", "",
)

#: Share of users whose tweets carry exact geotags (2011-era opt-in was low).
GEO_ENABLED_FRACTION = 0.18

#: Share of users with an unresolvable or empty profile location.
UNGEOCODABLE_FRACTION = 0.22


def _messy_location(rng: random.Random, city: City) -> str:
    """Render a city as a plausibly messy profile-location string."""
    style = rng.random()
    if style < 0.40:
        return city.name
    if style < 0.60 and city.aliases:
        return rng.choice(list(city.aliases))
    if style < 0.75:
        return f"{city.name}, {city.country}"
    if style < 0.85:
        return city.name.lower()
    if style < 0.95:
        return f"{city.name}!!"
    return f"living in {city.name}"


class UserPopulation:
    """A fixed population of synthetic Twitter accounts.

    Args:
        size: number of accounts.
        seed: RNG seed; the same seed reproduces the same population.
        gazetteer: city database for home sampling.
        activity_exponent: Zipf skew of per-user tweet rates.
    """

    def __init__(
        self,
        size: int = 5000,
        seed: int = rng_mod.DEFAULT_SEED,
        gazetteer: Gazetteer | None = None,
        activity_exponent: float = 1.1,
    ) -> None:
        if size <= 0:
            raise ValueError("population size must be positive")
        self._gazetteer = gazetteer or default_gazetteer()
        self._rng = rng_mod.derive(seed, "users")
        self._users: list[User] = []
        self._homes: list[City] = []

        cities = list(self._gazetteer.cities)
        weights = self._gazetteer.twitter_weights()
        # Zipf activity mass for ranks; shuffled assignment so user_id is
        # uncorrelated with activity.
        activity_mass = rng_mod.zipf_ranks(size, activity_exponent)
        self._rng.shuffle(activity_mass)
        self._activity = activity_mass

        for user_id in range(1, size + 1):
            city = self._rng.choices(cities, weights=weights, k=1)[0]
            self._homes.append(city)
            if self._rng.random() < UNGEOCODABLE_FRACTION:
                location = self._rng.choice(_UNGEOCODABLE)
            else:
                location = _messy_location(self._rng, city)
            followers = int(self._rng.paretovariate(1.2)) * 10
            self._users.append(
                User(
                    user_id=user_id,
                    screen_name=f"user{user_id}",
                    location=location,
                    home=city.coordinates,
                    geo_enabled=self._rng.random() < GEO_ENABLED_FRACTION,
                    followers=min(followers, 5_000_000),
                )
            )

    def __len__(self) -> int:
        return len(self._users)

    @property
    def users(self) -> list[User]:
        """All accounts (index = user_id - 1)."""
        return self._users

    @property
    def gazetteer(self) -> Gazetteer:
        """The gazetteer homes were sampled from."""
        return self._gazetteer

    def home_city(self, user: User) -> City:
        """Ground truth: the city a user was placed in."""
        return self._homes[user.user_id - 1]

    def sample_author(self, rng: random.Random) -> User:
        """Draw a tweet author according to the Zipf activity weights."""
        return rng.choices(self._users, weights=self._activity, k=1)[0]

    def sample_author_near(
        self, rng: random.Random, lat: float, lon: float, radius_deg: float
    ) -> User:
        """Draw an author whose home lies within ``radius_deg`` of a point.

        Used by localized scenarios (an earthquake is tweeted about by
        people who felt it). Falls back to the global draw when nobody
        lives close enough.
        """
        nearby = [
            (user, weight)
            for user, weight, city in zip(
                self._users, self._activity, self._homes
            )
            if abs(city.lat - lat) <= radius_deg
            and abs(city.lon - lon) <= radius_deg
        ]
        if not nearby:
            return self.sample_author(rng)
        users, weights = zip(*nearby)
        return rng.choices(list(users), weights=list(weights), k=1)[0]

    def geotag_for(self, rng: random.Random, user: User) -> tuple[float, float] | None:
        """Exact coordinates for a tweet by ``user``, if geo-enabled.

        Jitters the home-city center by up to ~0.15 degrees, approximating
        movement within a metro area.
        """
        if not user.geo_enabled or user.home is None:
            return None
        lat, lon = user.home
        return (
            lat + rng.uniform(-0.15, 0.15),
            lon + rng.uniform(-0.15, 0.15),
        )
