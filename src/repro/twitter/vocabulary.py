"""Vocabularies for tweet text synthesis.

Text generation needs to support everything downstream components consume:

- keyword filtering (``track`` terms must literally appear),
- sentiment classification (positive/negative phrasing plus emoticons, the
  distant-supervision signal the original TweeQL classifier trained on),
- peak labeling (event-specific tokens like a new score "3-0" or a scorer
  "tevez" must spike during the event, against a stable background),
- URL extraction (popular links during events),
- entity extraction (people/places/organizations for the OpenCalais-style
  UDF).

Everything here is data; the composition logic lives in
:mod:`repro.twitter.text`.
"""

from __future__ import annotations

POSITIVE_PHRASES: tuple[str, ...] = (
    "love it", "so good", "amazing", "brilliant", "fantastic", "awesome",
    "what a beauty", "incredible scenes", "best thing today", "so happy",
    "great stuff", "superb", "unreal", "perfect", "delighted", "buzzing",
    "this made my day", "can't stop smiling", "wonderful", "outstanding",
)

NEGATIVE_PHRASES: tuple[str, ...] = (
    "hate this", "so bad", "terrible", "awful", "dreadful", "a disgrace",
    "what a disaster", "gutted", "furious", "worst thing today", "so sad",
    "rubbish", "pathetic", "heartbroken", "disappointed", "sick of this",
    "this ruined my day", "can't believe how bad", "horrible", "shambles",
)

NEUTRAL_PHRASES: tuple[str, ...] = (
    "just saw", "watching", "hearing about", "reading about", "following",
    "thinking about", "there's news on", "an update on", "more on",
    "just heard", "people talking about", "checking on", "looking at",
)

POSITIVE_EMOTICONS: tuple[str, ...] = (":)", ":-)", ":D", ";)", "=)", "<3")
NEGATIVE_EMOTICONS: tuple[str, ...] = (":(", ":-(", ":'(", "D:", "=(")

INTENSIFIERS: tuple[str, ...] = (
    "really", "so", "very", "absolutely", "totally", "completely", "just",
)

#: Filler words for background chatter (no sentiment, no topic signal).
CHATTER_SUBJECTS: tuple[str, ...] = (
    "coffee", "breakfast", "lunch", "dinner", "the weather", "traffic",
    "my commute", "homework", "the gym", "this song", "that movie",
    "the weekend", "work today", "my phone", "the new episode", "this book",
    "the bus", "the train", "my cat", "my dog", "the news", "a nap",
)

CHATTER_TEMPLATES: tuple[str, ...] = (
    "{subject} {verdict}",
    "{intens} need {subject} right now",
    "ok so {subject} {verdict}",
    "anyone else think {subject} {verdict}?",
    "{subject}... {verdict}",
    "can we talk about {subject}",
    "today: {subject}. that is all",
)

CHATTER_VERDICTS: tuple[str, ...] = (
    "is a thing", "happened again", "is happening", "never changes",
    "could be better", "is fine i guess", "took forever", "was interesting",
)

# --- Soccer scenario (the paper's Figure 1: Manchester City vs Liverpool) ---

SOCCER_KEYWORDS: tuple[str, ...] = (
    "soccer", "football", "premierleague", "manchester", "liverpool",
)

#: City players (Tevez scored in the paper's example timeline).
SOCCER_PLAYERS_HOME: tuple[str, ...] = (
    "tevez", "silva", "kompany", "hart", "barry", "yaya",
)
SOCCER_PLAYERS_AWAY: tuple[str, ...] = (
    "gerrard", "suarez", "carragher", "reina", "kuyt", "lucas",
)

SOCCER_GOAL_TEMPLATES: tuple[str, ...] = (
    "GOAL! {scorer} makes it {score} #{hashtag}",
    "{scorer} scores!!! {score} {team} {emotion}",
    "what a goal by {scorer}! {score} now #{hashtag}",
    "{score}! {scorer} with the finish {emotion}",
    "GOOOAL {scorer}!! {team} lead {score}",
    "{scorer} goal — {score}. {reaction} #{hashtag}",
    "unbelievable from {scorer}, {score} {emotion}",
)

SOCCER_PLAY_TEMPLATES: tuple[str, ...] = (
    "{player} with a great run down the wing #{hashtag}",
    "big save! {player} denied there",
    "yellow card for {player}, soft one",
    "{team} dominating possession right now",
    "corner to {team}, pressure building",
    "{player} just missed a sitter {emotion}",
    "end to end stuff in this {kw} match",
    "halftime thoughts: {team} look sharp #{hashtag}",
)

SOCCER_HASHTAGS: tuple[str, ...] = ("mcfc", "lfc", "epl", "premierleague")

# --- Baseball scenario (§3.3's Red Sox–Yankees example) ---

BASEBALL_KEYWORDS: tuple[str, ...] = (
    "baseball", "redsox", "yankees", "mlb",
)

BASEBALL_PLAYERS_YANKEES: tuple[str, ...] = (
    "jeter", "teixeira", "cano", "granderson", "sabathia",
)
BASEBALL_PLAYERS_REDSOX: tuple[str, ...] = (
    "pedroia", "ortiz", "youkilis", "ellsbury", "lester",
)

#: Every home-run template carries a tracked hashtag (so the ``track``
#: filter captures it) and a sentiment slot (so the crowd's mood reaches
#: the classifier) — fans hashtag and emote when a ball leaves the park.
BASEBALL_HOMERUN_TEMPLATES: tuple[str, ...] = (
    "HOME RUN {slugger}!! {team} lead {score} {emotion} #{hashtag}",
    "{slugger} goes deep! {score} now {emotion} #{hashtag}",
    "that ball is GONE. {slugger}, {score} {reaction} #{hashtag}",
    "{slugger} homers — {score}. {reaction} #{hashtag}",
    "grand slam vibes from {slugger}, {score} {emotion} #{hashtag}",
)

BASEBALL_PLAY_TEMPLATES: tuple[str, ...] = (
    "{player} strikes out the side #{hashtag}",
    "double play! {team} escape the inning",
    "{player} with a base hit, runners on",
    "pitching duel in this {kw} game so far",
    "{team} bullpen warming up #{hashtag}",
    "full count on {player}... {emotion}",
)

BASEBALL_HASHTAGS: tuple[str, ...] = ("redsox", "yankees", "mlb", "fenway")

# --- Earthquake scenario ---

EARTHQUAKE_KEYWORDS: tuple[str, ...] = ("earthquake", "quake", "tsunami")

EARTHQUAKE_TEMPLATES: tuple[str, ...] = (
    "just felt an earthquake in {place}!! {emotion}",
    "whoa big earthquake here in {place}",
    "magnitude {magnitude} quake hits {place} {url}",
    "earthquake near {place}, magnitude {magnitude} reported",
    "everything shook for like 30 seconds. earthquake in {place}?",
    "USGS: M{magnitude} earthquake {place} {url}",
    "praying for everyone in {place} after that quake {emotion}",
    "aftershock just now in {place}, stay safe everyone",
    "tsunami warning issued for {place} coast after the quake {url}",
    "power out in parts of {place} after the earthquake",
)

# --- News-month scenario ("a month in Barack Obama's life") ---

NEWS_KEYWORDS: tuple[str, ...] = ("obama",)

NEWS_STORY_TEMPLATES: tuple[str, ...] = (
    "obama {story_verb} {story_object} {url}",
    "president obama {story_verb} {story_object} today",
    "breaking: obama {story_verb} {story_object} {url}",
    "watching obama speak about {story_object} {emotion}",
    "obama's {story_object} speech {verdict} {emotion}",
    "my take on obama and {story_object}: {verdict}",
    "so obama {story_verb} {story_object}. thoughts?",
)

NEWS_STORIES: tuple[tuple[str, str], ...] = (
    # (verb, object) pairs — each scenario event picks one story.
    ("signs", "the healthcare bill"),
    ("announces", "the jobs plan"),
    ("addresses", "the budget deal"),
    ("visits", "the gulf coast"),
    ("meets", "congressional leaders"),
    ("nominates", "a supreme court justice"),
    ("unveils", "the energy policy"),
    ("defends", "the stimulus package"),
)

NEWS_VERDICTS: tuple[str, ...] = (
    "was strong", "fell flat", "surprised everyone", "changed nothing",
    "was long overdue", "missed the point", "hit the mark",
)

# --- Election-night scenario (high-stress: rising baseline + late climax) ---

ELECTION_KEYWORDS: tuple[str, ...] = ("election", "ballot", "precinct")

#: Fictional candidates — the scenario is about load shape, not politics.
ELECTION_CANDIDATES: tuple[str, ...] = ("harmon", "delgado")

ELECTION_STATES: tuple[str, ...] = (
    "ohio", "florida", "colorado", "virginia", "nevada", "iowa",
)

ELECTION_HASHTAGS: tuple[str, ...] = (
    "electionnight", "election2012", "ballotwatch",
)

ELECTION_CALL_TEMPLATES: tuple[str, ...] = (
    "BREAKING: networks call {state} for {winner} #{hashtag}",
    "{state} goes to {winner}! {reaction} #{hashtag}",
    "it's official, {winner} takes {state} {emotion} #{hashtag}",
    "{winner} wins {state} as the late ballot count lands {url}",
    "election desk: {state} called for {winner} {url}",
    "can't believe {state} went {winner} {emotion} #{hashtag}",
)

ELECTION_PROJECTION_TEMPLATES: tuple[str, ...] = (
    "PROJECTION: {winner} wins the election #{hashtag}",
    "{winner} WINS. election night is over {emotion} #{hashtag}",
    "networks project {winner} wins the election {url}",
    "four more years of {winner}... {reaction} #{hashtag}",
    "history made: {winner} projected winner of the election {url}",
)

ELECTION_CHATTER_TEMPLATES: tuple[str, ...] = (
    "election night! waiting on {state} returns #{hashtag}",
    "long lines at my precinct but my ballot is in {emotion}",
    "refreshing the {state} election map again {url}",
    "exit polls mean nothing, count the ballots #{hashtag}",
    "{state} too close to call, this election is wild",
    "glued to election coverage all night {emotion}",
)

# --- Breaking-news cascade scenario (amplifying retweet waves) ---

CASCADE_KEYWORDS: tuple[str, ...] = ("wildfire", "cedarridge", "evacuation")

CASCADE_HASHTAGS: tuple[str, ...] = ("cedarridge", "wildfire", "cawx")

CASCADE_UPDATE_TEMPLATES: tuple[str, ...] = (
    "BREAKING: {update} #{hashtag}",
    "update: {update} {url}",
    "{update} — live coverage {url}",
    "just in: {update} {emotion}",
    "{update}. stay safe out there {emotion}",
    "sharing for visibility: {update} #{hashtag} {url}",
)

CASCADE_AMBIENT_TEMPLATES: tuple[str, ...] = (
    "smoke on the horizon near cedar ridge #{hashtag}",
    "is that a wildfire out past cedar ridge? {emotion}",
    "air smells like smoke tonight, cedar ridge folks check in",
    "fire crews heading up the canyon road toward cedar ridge {url}",
    "wildfire season is no joke {emotion} #{hashtag}",
)

# --- Bot-flood scenario (coordinated spam swamping a product launch) ---

BOTFLOOD_KEYWORDS: tuple[str, ...] = ("solaris", "smartphone")

BOTFLOOD_HASHTAGS: tuple[str, ...] = ("solaris", "solarislaunch", "smartphone")

BOTFLOOD_LAUNCH_TEMPLATES: tuple[str, ...] = (
    "the solaris is real and it's gorgeous {emotion} #{hashtag}",
    "solaris launch keynote happening NOW {url}",
    "hands on with the new solaris smartphone — {reaction} #{hashtag}",
    "that solaris screen though {emotion}",
    "solaris preorders open friday {url} #{hashtag}",
    "keynote verdict: the solaris {reaction} #{hashtag}",
)

#: Deliberately near-duplicate: a tiny template pool, every text with a
#: link — the fingerprint of a 2011 giveaway-spam botnet.
BOTFLOOD_SPAM_TEMPLATES: tuple[str, ...] = (
    "WIN a FREE solaris!! follow + RT to enter {url} #{hashtag}",
    "FREE solaris smartphone giveaway!! click here {url} #{hashtag}",
    "i just won a solaris from this site {url} RT to get yours",
    "GIVEAWAY: 100 solaris smartphones up for grabs, enter now {url} #{hashtag}",
)

#: Pool of shortened URLs circulating during events (2011-era shorteners).
URL_POOL: tuple[str, ...] = tuple(
    f"http://bit.ly/{code}"
    for code in (
        "a1b2c3", "xYz123", "news42", "qkR7fw", "goal99", "m8GqLp",
        "usgs01", "bbcWrl", "cnnBrk", "nytArt", "grdLiv", "esPn11",
    )
) + tuple(
    f"http://t.co/{code}"
    for code in ("Ab3dE", "fG7hI", "jK1mN", "pQ9rS", "tU5vW", "xY2zA")
)

#: Entity gazetteer for the simulated OpenCalais service.
KNOWN_PEOPLE: tuple[str, ...] = (
    "obama", "tevez", "silva", "kompany", "hart", "barry", "yaya",
    "gerrard", "suarez", "carragher", "reina", "kuyt", "lucas",
)
KNOWN_ORGANIZATIONS: tuple[str, ...] = (
    "usgs", "congress", "bbc", "cnn", "manchester city", "liverpool fc",
    "supreme court",
)
