"""Tweet text synthesis.

Composes 140-character tweet bodies from the vocabularies in
:mod:`repro.twitter.vocabulary`. Each composer returns the text *and* the
true sentiment label it encoded, so generators can stamp ground truth onto
tweets.

Sentiment is expressed the way 2011 tweets expressed it — opinion phrases
("what a disaster") and emoticons (":(") — which is exactly the
distant-supervision signal the original TweeQL sentiment classifier was
trained on. Neutral tweets avoid both.
"""

from __future__ import annotations

import random

from repro.twitter import vocabulary as V

#: Canonical sentiment labels used across the library.
POSITIVE, NEUTRAL, NEGATIVE = 1, 0, -1

_MAX_LEN = 140


def _truncate(text: str) -> str:
    """Clamp to the 2011 tweet length limit, on a word boundary if possible."""
    if len(text) <= _MAX_LEN:
        return text
    cut = text[:_MAX_LEN]
    space = cut.rfind(" ")
    return cut[:space] if space > 60 else cut


def _emotion(rng: random.Random, sentiment: int) -> str:
    """An emoticon or short phrase expressing the sentiment ('' if neutral)."""
    if sentiment == POSITIVE:
        if rng.random() < 0.6:
            return rng.choice(V.POSITIVE_EMOTICONS)
        return rng.choice(V.POSITIVE_PHRASES)
    if sentiment == NEGATIVE:
        if rng.random() < 0.6:
            return rng.choice(V.NEGATIVE_EMOTICONS)
        return rng.choice(V.NEGATIVE_PHRASES)
    return ""


def _maybe_url(rng: random.Random, probability: float) -> str:
    return rng.choice(V.URL_POOL) if rng.random() < probability else ""


def _opinion_suffix(rng: random.Random, sentiment: int) -> str:
    """An explicit opinion clause; strengthens the sentiment signal."""
    if sentiment == POSITIVE:
        phrase = rng.choice(V.POSITIVE_PHRASES)
    elif sentiment == NEGATIVE:
        phrase = rng.choice(V.NEGATIVE_PHRASES)
    else:
        return ""
    if rng.random() < 0.4:
        phrase = f"{rng.choice(V.INTENSIFIERS)} {phrase}"
    return phrase


def sample_sentiment(
    rng: random.Random, positive: float, negative: float
) -> int:
    """Draw a sentiment label with the given positive/negative mass."""
    roll = rng.random()
    if roll < positive:
        return POSITIVE
    if roll < positive + negative:
        return NEGATIVE
    return NEUTRAL


def compose_chatter(rng: random.Random) -> tuple[str, int]:
    """Background chatter: everyday content, mild sentiment mix."""
    sentiment = sample_sentiment(rng, positive=0.25, negative=0.15)
    template = rng.choice(V.CHATTER_TEMPLATES)
    text = template.format(
        subject=rng.choice(V.CHATTER_SUBJECTS),
        verdict=rng.choice(V.CHATTER_VERDICTS),
        intens=rng.choice(V.INTENSIFIERS),
    )
    suffix = _emotion(rng, sentiment)
    if suffix:
        text = f"{text} {suffix}"
    return _truncate(text), sentiment


def compose_soccer_goal(
    rng: random.Random,
    scorer: str,
    score: str,
    team: str,
    supporters_positive: float,
) -> tuple[str, int]:
    """A goal reaction tweet.

    ``supporters_positive`` is the share of the reacting crowd happy about
    the goal (scoring side's fans), controlling the sentiment mix.
    """
    sentiment = POSITIVE if rng.random() < supporters_positive else NEGATIVE
    template = rng.choice(V.SOCCER_GOAL_TEMPLATES)
    text = template.format(
        scorer=scorer,
        score=score,
        team=team,
        hashtag=rng.choice(V.SOCCER_HASHTAGS),
        emotion=_emotion(rng, sentiment),
        reaction=_opinion_suffix(rng, sentiment) or "scenes",
    )
    if rng.random() < 0.10:
        text = f"{text} {rng.choice(V.URL_POOL)}"
    return _truncate(text), sentiment


def compose_soccer_play(rng: random.Random, keyword_hint: str) -> tuple[str, int]:
    """Ordinary in-match commentary between goals."""
    sentiment = sample_sentiment(rng, positive=0.30, negative=0.20)
    template = rng.choice(V.SOCCER_PLAY_TEMPLATES)
    side = rng.random() < 0.5
    text = template.format(
        player=rng.choice(
            V.SOCCER_PLAYERS_HOME if side else V.SOCCER_PLAYERS_AWAY
        ),
        team="manchester city" if side else "liverpool",
        hashtag=rng.choice(V.SOCCER_HASHTAGS),
        emotion=_emotion(rng, sentiment),
        kw=keyword_hint,
    )
    suffix = _opinion_suffix(rng, sentiment)
    if suffix and "{emotion}" not in template:
        text = f"{text} — {suffix}"
    return _truncate(text), sentiment


def compose_baseball_homerun(
    rng: random.Random,
    slugger: str,
    score: str,
    team: str,
    supporters_positive: float,
) -> tuple[str, int]:
    """A home-run reaction; sentiment set by which side the crowd is on."""
    sentiment = POSITIVE if rng.random() < supporters_positive else NEGATIVE
    template = rng.choice(V.BASEBALL_HOMERUN_TEMPLATES)
    text = template.format(
        slugger=slugger,
        score=score,
        team=team,
        hashtag=rng.choice(V.BASEBALL_HASHTAGS),
        emotion=_emotion(rng, sentiment),
        reaction=_opinion_suffix(rng, sentiment) or "scenes",
    )
    return _truncate(text), sentiment


def compose_baseball_play(rng: random.Random, keyword_hint: str) -> tuple[str, int]:
    """Ordinary in-game baseball commentary."""
    sentiment = sample_sentiment(rng, positive=0.25, negative=0.20)
    side = rng.random() < 0.5
    template = rng.choice(V.BASEBALL_PLAY_TEMPLATES)
    text = template.format(
        player=rng.choice(
            V.BASEBALL_PLAYERS_YANKEES if side else V.BASEBALL_PLAYERS_REDSOX
        ),
        team="yankees" if side else "redsox",
        hashtag=rng.choice(V.BASEBALL_HASHTAGS),
        emotion=_emotion(rng, sentiment),
        kw=keyword_hint,
    )
    suffix = _opinion_suffix(rng, sentiment)
    if suffix and "{emotion}" not in template:
        text = f"{text} — {suffix}"
    return _truncate(text), sentiment


def compose_earthquake(
    rng: random.Random, place: str, magnitude: float
) -> tuple[str, int]:
    """An earthquake report/reaction; skews negative, many URLs."""
    sentiment = sample_sentiment(rng, positive=0.05, negative=0.55)
    template = rng.choice(V.EARTHQUAKE_TEMPLATES)
    text = template.format(
        place=place,
        magnitude=f"{magnitude:.1f}",
        emotion=_emotion(rng, sentiment),
        url=_maybe_url(rng, 0.7) or "just now",
    )
    return _truncate(text), sentiment


def compose_election_call(
    rng: random.Random, state: str, winner: str, positive_share: float
) -> tuple[str, int]:
    """A state-call reaction; the winner's supporters celebrate."""
    sentiment = POSITIVE if rng.random() < positive_share else NEGATIVE
    template = rng.choice(V.ELECTION_CALL_TEMPLATES)
    text = template.format(
        state=state,
        winner=winner,
        hashtag=rng.choice(V.ELECTION_HASHTAGS),
        emotion=_emotion(rng, sentiment),
        reaction=_opinion_suffix(rng, sentiment) or "what a night",
        url=_maybe_url(rng, 0.4) or "just now",
    )
    return _truncate(text), sentiment


def compose_election_projection(
    rng: random.Random, winner: str, positive_share: float
) -> tuple[str, int]:
    """The night's climax: the race itself is called."""
    sentiment = POSITIVE if rng.random() < positive_share else NEGATIVE
    template = rng.choice(V.ELECTION_PROJECTION_TEMPLATES)
    text = template.format(
        winner=winner,
        hashtag=rng.choice(V.ELECTION_HASHTAGS),
        emotion=_emotion(rng, sentiment),
        reaction=_opinion_suffix(rng, sentiment) or "unreal",
        url=_maybe_url(rng, 0.5) or "tonight",
    )
    return _truncate(text), sentiment


def compose_election_chatter(rng: random.Random) -> tuple[str, int]:
    """Anticipatory election-night talk between state calls."""
    sentiment = sample_sentiment(rng, positive=0.2, negative=0.2)
    template = rng.choice(V.ELECTION_CHATTER_TEMPLATES)
    text = template.format(
        state=rng.choice(V.ELECTION_STATES),
        hashtag=rng.choice(V.ELECTION_HASHTAGS),
        emotion=_emotion(rng, sentiment),
        url=_maybe_url(rng, 0.3) or "again",
    )
    return _truncate(text), sentiment


def compose_breaking_news(
    rng: random.Random, update: str, positive: float = 0.05,
    negative: float = 0.5,
) -> tuple[str, int]:
    """A cascade update tweet; disaster coverage skews negative."""
    sentiment = sample_sentiment(rng, positive, negative)
    template = rng.choice(V.CASCADE_UPDATE_TEMPLATES)
    text = template.format(
        update=update,
        hashtag=rng.choice(V.CASCADE_HASHTAGS),
        emotion=_emotion(rng, sentiment),
        url=_maybe_url(rng, 0.6) or "now",
    )
    return _truncate(text), sentiment


def compose_cascade_ambient(rng: random.Random) -> tuple[str, int]:
    """Pre/post-wave wildfire talk keeping the topic alive."""
    sentiment = sample_sentiment(rng, positive=0.05, negative=0.35)
    template = rng.choice(V.CASCADE_AMBIENT_TEMPLATES)
    text = template.format(
        hashtag=rng.choice(V.CASCADE_HASHTAGS),
        emotion=_emotion(rng, sentiment),
        url=_maybe_url(rng, 0.4) or "tonight",
    )
    return _truncate(text), sentiment


def compose_launch_reaction(
    rng: random.Random, positive_share: float = 0.65
) -> tuple[str, int]:
    """A genuine product-launch reaction (the bot-flood scenario's signal)."""
    sentiment = sample_sentiment(
        rng, positive=positive_share, negative=(1.0 - positive_share) * 0.5
    )
    template = rng.choice(V.BOTFLOOD_LAUNCH_TEMPLATES)
    text = template.format(
        hashtag=rng.choice(V.BOTFLOOD_HASHTAGS),
        emotion=_emotion(rng, sentiment),
        reaction=_opinion_suffix(rng, sentiment) or "looks sharp",
        url=_maybe_url(rng, 0.4) or "now",
    )
    return _truncate(text), sentiment


def compose_bot_spam(rng: random.Random) -> tuple[str, int]:
    """Near-duplicate giveaway spam; sentiment-free, always linking out."""
    template = rng.choice(V.BOTFLOOD_SPAM_TEMPLATES)
    text = template.format(
        url=rng.choice(V.URL_POOL),
        hashtag=rng.choice(V.BOTFLOOD_HASHTAGS),
    )
    return _truncate(text), NEUTRAL


def compose_news(
    rng: random.Random,
    story_verb: str,
    story_object: str,
    positive: float,
    negative: float,
) -> tuple[str, int]:
    """A news reaction tweet about a story (the Obama-month scenario)."""
    sentiment = sample_sentiment(rng, positive, negative)
    template = rng.choice(V.NEWS_STORY_TEMPLATES)
    text = template.format(
        story_verb=story_verb,
        story_object=story_object,
        url=_maybe_url(rng, 0.5) or "now",
        emotion=_emotion(rng, sentiment),
        verdict=rng.choice(V.NEWS_VERDICTS),
    )
    suffix = _opinion_suffix(rng, sentiment)
    if suffix and rng.random() < 0.5:
        text = f"{text} {suffix}"
    return _truncate(text), sentiment
