"""The simulated firehose and streaming API.

Reproduces the surface of Twitter's 2011 streaming API that TweeQL consumed
(`statuses/filter` and `statuses/sample`):

- a connection carries **exactly one filter type** — keyword ``track``,
  geographic ``locations``, or userid ``follow``. The paper's "Uncertain
  Selectivities" section exists precisely because of this restriction: a
  query with both a keyword and a location predicate must choose which one
  the API applies, and apply the other locally.
- filtered streams deliver *most* matching tweets (the real API was lossy
  at high volume); the default delivery ratio is configurable.
- ``sample()`` returns a small uniform sample of the whole firehose, which
  is how TweeQL estimates the selectivity of candidate filters.
- connections are limited and metered, like the real API.

The firehose itself is a time-ordered sequence of tweets from one or more
:class:`~repro.twitter.workloads.Scenario` generators.
"""

from __future__ import annotations

import heapq
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, replace
from typing import Any

from repro import rng as rng_mod
from repro.clock import VirtualClock
from repro.errors import StreamError
from repro.geo.bbox import BoundingBox
from repro.twitter.models import Tweet
from repro.twitter.workloads import Scenario


class Firehose:
    """The full simulated tweet stream, in timestamp order."""

    def __init__(self, tweets: list[Tweet]) -> None:
        self._tweets = tweets

    @classmethod
    def from_scenarios(cls, *scenarios: Scenario) -> "Firehose":
        """Merge several scenarios into one firehose.

        Tweets are merged by timestamp and re-assigned globally unique,
        increasing ids (preserving each tweet's other fields and ground
        truth).
        """
        merged = heapq.merge(
            *(s.tweets for s in scenarios), key=lambda t: t.created_at
        )
        tweets = [
            replace(tweet, tweet_id=index + 1)
            for index, tweet in enumerate(merged)
        ]
        return cls(tweets)

    @property
    def tweets(self) -> list[Tweet]:
        """All tweets in timestamp order."""
        return self._tweets

    def __len__(self) -> int:
        return len(self._tweets)

    def __iter__(self) -> Iterator[Tweet]:
        return iter(self._tweets)

    @property
    def span(self) -> tuple[float, float]:
        """(first, last) tweet timestamps; (0, 0) when empty."""
        if not self._tweets:
            return (0.0, 0.0)
        return (self._tweets[0].created_at, self._tweets[-1].created_at)


@dataclass
class ConnectionStats:
    """Delivery accounting for one streaming connection.

    ``reconnects`` counts automatic reconnections after an injected
    disconnect; ``gap_tweets`` counts deliverable tweets that fell inside
    disconnect windows — recovered via cursor resume when the connection
    auto-reconnects, lost (and also counted in ``dropped``) when it does
    not.
    """

    scanned: int = 0
    matched: int = 0
    delivered: int = 0
    dropped: int = 0
    reconnects: int = 0
    gap_tweets: int = 0

    @property
    def selectivity(self) -> float:
        """Fraction of firehose tweets that matched this filter."""
        return self.matched / self.scanned if self.scanned else 0.0


class StreamConnection:
    """One long-running filtered stream request.

    Iterating yields matching tweets in timestamp order; if the connection
    was opened with a clock, the clock advances to each tweet's creation
    time as it is delivered (stream time drives query time).

    ``drops`` is a fault schedule (see
    :class:`~repro.engine.resilience.StreamDrop`): the connection
    disconnects after delivering ``after_delivered`` tweets, and the next
    ``gap`` deliverable tweets fall inside the disconnect window. With
    ``auto_reconnect`` the connection resumes from its firehose cursor, so
    the gap tweets are still delivered — counted in
    ``stats.gap_tweets`` as recovered. Without it, they are lost
    (``stats.dropped`` too), the way a client that blindly reopened the
    2011 stream lost whatever passed while it was down.
    """

    def __init__(
        self,
        tweets: Iterable[Tweet],
        predicate,
        delivery_ratio: float,
        seed: int,
        clock: VirtualClock | None,
        description: str,
        drops: tuple = (),
        auto_reconnect: bool = True,
        tap=None,
    ) -> None:
        self._tweets = tweets
        self._predicate = predicate
        self._delivery_ratio = delivery_ratio
        self._rng = rng_mod.derive(seed, f"connection:{description}")
        self._clock = clock
        #: Archival hook fed every delivered tweet (None: no archiving).
        self._tap = tap
        self.description = description
        self._drops = sorted(drops, key=lambda d: d.after_delivered)
        self._auto_reconnect = auto_reconnect
        self.stats = ConnectionStats()
        self._closed = False
        #: Span recorder (set by the planner at open time when tracing is
        #: on); each auto-reconnect becomes one instant ``reconnect`` span.
        self.tracer = None

    def __iter__(self) -> Iterator[Tweet]:
        # Fault-schedule cursor: index of the next pending drop, plus how
        # many deliverable tweets of the current gap remain.
        next_drop = 0
        gap_remaining = 0
        try:
            for tweet in self._tweets:
                if self._closed:
                    return
                self.stats.scanned += 1
                if not self._predicate(tweet):
                    continue
                self.stats.matched += 1
                if (
                    self._delivery_ratio < 1.0
                    and self._rng.random() > self._delivery_ratio
                ):
                    self.stats.dropped += 1
                    continue
                while (
                    next_drop < len(self._drops)
                    and self.stats.delivered
                    >= self._drops[next_drop].after_delivered
                ):
                    gap_remaining += self._drops[next_drop].gap
                    next_drop += 1
                    if self._auto_reconnect:
                        self.stats.reconnects += 1
                        if self.tracer is not None:
                            self.tracer.instant(
                                f"reconnect({self.description})",
                                "reconnect",
                                lane="stream",
                                delivered=self.stats.delivered,
                                gap=self._drops[next_drop - 1].gap,
                            )
                if gap_remaining > 0:
                    gap_remaining -= 1
                    self.stats.gap_tweets += 1
                    if not self._auto_reconnect:
                        # Disconnected and no backfill: the tweet is gone.
                        self.stats.dropped += 1
                        continue
                    # Reconnected from the cursor: the tweet is recovered
                    # and delivered below like any other.
                self.stats.delivered += 1
                if self._tap is not None:
                    self._tap(tweet)
                if self._clock is not None and tweet.created_at > self._clock.now:
                    self._clock.advance_to(tweet.created_at)
                yield tweet
        finally:
            # A drained (or abandoned) connection releases its slot; real
            # streams end when the server hangs up, not only on client
            # close.
            self.close()

    def close(self) -> None:
        """Terminate the connection; iteration stops at the next tweet."""
        self._closed = True


class StreamingAPI:
    """Façade over the firehose with the 2011 filter semantics.

    Args:
        firehose: the underlying tweet stream.
        clock: optional shared virtual clock, advanced as tweets arrive.
        delivery_ratio: fraction of matching tweets actually delivered on
            filtered connections ("most tweets"). ``sample()`` is lossless
            at its sampling rate.
        max_connections: concurrent connection budget (the real API allowed
            very few per account).
        seed: RNG seed for loss and sampling draws.
        fault_plan: optional
            :class:`~repro.engine.resilience.FaultPlan` whose
            ``stream_drops`` schedule disconnects on every connection this
            API opens.
        auto_reconnect: resume dropped connections from their firehose
            cursor (gap tweets recovered and counted); False loses the gap
            tweets instead.
    """

    def __init__(
        self,
        firehose: Firehose,
        clock: VirtualClock | None = None,
        delivery_ratio: float = 0.98,
        max_connections: int = 4,
        seed: int = rng_mod.DEFAULT_SEED,
        sample_budget: int | None = None,
        fault_plan: Any = None,
        auto_reconnect: bool = True,
    ) -> None:
        if not 0.0 < delivery_ratio <= 1.0:
            raise ValueError("delivery_ratio must be in (0, 1]")
        if sample_budget is not None and sample_budget < 0:
            raise ValueError("sample_budget must be non-negative")
        self._firehose = firehose
        self._clock = clock
        self._delivery_ratio = delivery_ratio
        self._max_connections = max_connections
        self._seed = seed
        self._open_connections = 0
        self._connection_serial = 0
        self._sample_budget = sample_budget
        self._samples_used = 0
        self._sample_serial = 0
        self._drops = tuple(fault_plan.stream_drops) if fault_plan else ()
        self._auto_reconnect = auto_reconnect
        #: Optional archival hook: called with every *delivered* tweet on
        #: every connection this API opens (the historical tier's
        #: ``StorageWriter.write``). None keeps the live path untouched.
        self.tap = None

    @property
    def firehose(self) -> Firehose:
        """The backing firehose (visible to tests, not to queries)."""
        return self._firehose

    @property
    def open_connections(self) -> int:
        """Number of currently open connections."""
        return self._open_connections

    @property
    def delivery_ratio(self) -> float:
        """Fraction of matching tweets filtered connections deliver."""
        return self._delivery_ratio

    @property
    def samples_remaining(self) -> int | None:
        """Unused ``statuses/sample`` requests; None when unmetered."""
        if self._sample_budget is None:
            return None
        return max(0, self._sample_budget - self._samples_used)

    def _connect(self, predicate, description: str) -> StreamConnection:
        if self._open_connections >= self._max_connections:
            raise StreamError(
                f"connection limit reached ({self._max_connections}); "
                "close an existing stream first"
            )
        self._open_connections += 1
        self._connection_serial += 1
        connection = StreamConnection(
            self._firehose,
            predicate,
            self._delivery_ratio,
            seed=self._seed + self._connection_serial,
            clock=self._clock,
            description=description,
            drops=self._drops,
            auto_reconnect=self._auto_reconnect,
            tap=self.tap,
        )

        original_close = connection.close

        def close_and_release() -> None:
            if not connection._closed:
                self._open_connections -= 1
            original_close()

        connection.close = close_and_release  # type: ignore[method-assign]
        return connection

    def filter(
        self,
        track: tuple[str, ...] | list[str] | None = None,
        locations: tuple[BoundingBox, ...] | list[BoundingBox] | None = None,
        follow: tuple[int, ...] | list[int] | None = None,
    ) -> StreamConnection:
        """Open a ``statuses/filter`` connection.

        Exactly one of ``track``, ``locations``, ``follow`` must be given —
        the single-filter-type restriction the paper's planner works around.

        - ``track``: tweets whose text contains any keyword
          (case-insensitive substring, as the real API matched).
        - ``locations``: tweets with an exact geotag inside any box (the
          real API only matched geotagged tweets for location filters).
        - ``follow``: tweets authored by any of the given user ids.
        """
        provided = [f for f in (track, locations, follow) if f]
        if len(provided) != 1:
            raise StreamError(
                "statuses/filter accepts exactly one filter type per "
                "connection (track OR locations OR follow)"
            )
        if track:
            keywords = tuple(track)
            return self._connect(
                lambda tweet: tweet.matches_any_keyword(keywords),
                description=f"track={','.join(keywords)}",
            )
        if locations:
            boxes = tuple(locations)
            return self._connect(
                lambda tweet: any(b.contains_point(tweet.geo) for b in boxes),
                description=f"locations={','.join(b.name or '?' for b in boxes)}",
            )
        follow_ids = frozenset(follow or ())
        return self._connect(
            lambda tweet: tweet.user.user_id in follow_ids,
            description=f"follow={len(follow_ids)} users",
        )

    def unfiltered(self) -> StreamConnection:
        """A full-firehose connection (no server-side filter).

        The 2011 API reserved this for elevated access tiers ("Gardenhose"/
        "Firehose" partners); the simulator grants it so that queries with
        no API-eligible predicate still run. Counts against the connection
        limit like any other stream.
        """
        return self._connect(lambda _tweet: True, description="firehose")

    def sample(
        self,
        rate: float = 0.01,
        limit: int | None = None,
        salt: str | None = None,
    ) -> list[Tweet]:
        """The ``statuses/sample`` endpoint: a uniform firehose sample.

        Args:
            rate: sampling probability per tweet (Twitter's was ~1%).
            limit: stop after this many sampled tweets.
            salt: optional label mixed into the RNG derivation. Calls with
                the same salt replay the same per-tweet coin flips, so
                ``sample(r1, salt=s)`` is a subset of ``sample(r2, salt=s)``
                whenever ``r1 <= r2`` (nested samples — the fidelity
                harness relies on this monotonicity). When omitted, each
                call derives a fresh, per-call stream.

        Returns the sampled tweets eagerly (selectivity estimation wants a
        snapshot, not a long-running connection). Does not count against
        the connection limit and does not advance the clock. When the API
        was built with a ``sample_budget``, each call consumes one unit
        and exhaustion raises :class:`~repro.errors.RateLimitError` (the
        real API metered this endpoint).
        """
        if not 0.0 < rate <= 1.0:
            raise ValueError("rate must be in (0, 1]")
        if self._sample_budget is not None:
            if self._samples_used >= self._sample_budget:
                from repro.errors import RateLimitError

                raise RateLimitError(
                    f"statuses/sample budget of {self._sample_budget} "
                    f"requests exhausted ({self._samples_used} used, "
                    "0 remaining)"
                )
            self._samples_used += 1
        # Each call gets its own derivation label (distinct from the
        # connection RNG family, which stays keyed to connection serials):
        # repeated unsalted calls draw independent streams instead of
        # reusing the seed + serial arithmetic that could collide with a
        # later connection's seed.
        self._sample_serial += 1
        label = salt if salt is not None else f"call-{self._sample_serial}"
        rng = rng_mod.derive(self._seed, f"sample:{label}")
        sampled: list[Tweet] = []
        for tweet in self._firehose:
            if rng.random() < rate:
                sampled.append(tweet)
                if limit is not None and len(sampled) >= limit:
                    break
        return sampled
