"""Window assignment.

TweeQL's ``WINDOW n unit [EVERY m unit]`` defines time windows aligned to
the epoch: tumbling when the slide equals the size, sliding (overlapping)
when the slide is smaller. Stream time — the timestamps on the tweets
themselves — drives window membership and closing, not wall-clock time.
"""

from __future__ import annotations

import math
from collections.abc import Iterator

from repro.sql.ast import WindowSpec


def window_start(timestamp: float, size: float, slide: float) -> float:
    """Start of the *latest* window containing ``timestamp``."""
    return math.floor(timestamp / slide) * slide


def windows_containing(
    timestamp: float, spec: WindowSpec
) -> Iterator[tuple[float, float]]:
    """All (start, end) windows that contain ``timestamp``.

    A tumbling window yields exactly one; a sliding window of size S and
    slide L yields ``ceil(S / L)`` windows (those whose start lies in
    ``(timestamp - S, timestamp]``, aligned to multiples of L).
    """
    size = spec.size_seconds
    slide = spec.slide
    latest = window_start(timestamp, size, slide)
    start = latest
    while start > timestamp - size:
        yield (start, start + size)
        start -= slide


def next_close_time(open_windows: dict[tuple[float, float], object]) -> float | None:
    """Earliest end among open windows; None when none are open."""
    if not open_windows:
        return None
    return min(end for (_start, end) in open_windows)
