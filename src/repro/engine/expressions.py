"""Expression compilation.

``compile_expr`` turns an AST expression into a closure
``(row, ctx) -> value`` with SQL semantics:

- ``None`` is NULL and propagates through arithmetic, comparisons, and
  string operators;
- ``AND``/``OR``/``NOT`` follow three-valued logic (``NULL OR TRUE`` is
  TRUE, ``NULL AND FALSE`` is FALSE, otherwise NULL);
- ``CONTAINS`` is the paper's case-insensitive substring operator;
- ``MATCHES`` is regular-expression search (compiled once per call site);
- ``LIKE`` supports ``%`` and ``_`` wildcards, case-insensitively;
- ``IN_BBOX`` tests a (lat, lon) point against a bounding-box literal;
- division by zero yields NULL rather than killing a long-running stream
  query (documented divergence from strict SQL, matching the original
  TweeQL's forgiving behaviour on dirty stream data).

Compilation resolves field references against the schema eagerly, so typos
fail at plan time with the available fields listed, not tuple-by-tuple at
runtime.
"""

from __future__ import annotations

import itertools
import operator
import re
from collections.abc import Callable
from typing import Any

from repro.engine.aggregates import AGGREGATE_NAMES
from repro.engine.functions import FunctionRegistry
from repro.engine.types import ColumnBatch, EvalContext, Row
from repro.errors import PlanError, UnknownFieldError
from repro.geo.bbox import BoundingBox, named_box
from repro.sql import ast

Evaluator = Callable[[Row, EvalContext], Any]

#: A vectorized evaluator: batch in, one value per row out (or a
#: :class:`Broadcast` when every row shares the value).
VectorEvaluator = Callable[[ColumnBatch, EvalContext], Any]

_call_site_counter = itertools.count(1)


class Broadcast:
    """A whole-batch constant, avoiding ``[value] * n`` materialization."""

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value


def expand_column(result: Any, length: int) -> list[Any]:
    """Normalize a vector result to a plain per-row list."""
    if isinstance(result, Broadcast):
        return [result.value] * length
    return result


def resolve_bbox(node: ast.BBox) -> BoundingBox:
    """Turn a bbox AST literal into a concrete box.

    Raises:
        PlanError: when a named box is unknown.
    """
    if node.coords is not None:
        south, west, north, east = node.coords
        try:
            return BoundingBox(south, west, north, east)
        except ValueError as exc:
            raise PlanError(f"invalid bounding box: {exc}") from exc
    assert node.name is not None
    try:
        return named_box(node.name)
    except KeyError as exc:
        raise PlanError(str(exc.args[0])) from exc


def _like_to_regex(pattern: str) -> re.Pattern[str]:
    parts = []
    for char in pattern:
        if char == "%":
            parts.append(".*")
        elif char == "_":
            parts.append(".")
        else:
            parts.append(re.escape(char))
    return re.compile(f"^{''.join(parts)}$", re.IGNORECASE | re.DOTALL)


_ARITH: dict[str, Callable[[Any, Any], Any]] = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "%": operator.mod,
}

_COMPARE: dict[str, Callable[[Any, Any], bool]] = {
    "=": operator.eq,
    "!=": operator.ne,
    "<>": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


def compile_expr(
    expr: ast.Expr,
    registry: FunctionRegistry,
    schema: tuple[str, ...],
    ctx: EvalContext,
    aliases: dict[str, Evaluator] | None = None,
) -> Evaluator:
    """Compile an AST expression to an evaluator closure.

    Args:
        expr: the expression tree.
        registry: function registry for FuncCall resolution.
        schema: available field names (lowercase).
        ctx: the query's evaluation context; needed at compile time so
            stateful UDFs can be instantiated once per call site.
        aliases: select-alias name → evaluator, letting GROUP BY / HAVING /
            ORDER BY reference projected expressions by alias.

    Raises:
        PlanError: aggregates in a scalar position, unknown functions.
        UnknownFieldError: a field reference matching neither schema nor
            aliases.
    """
    aliases = aliases or {}
    schema_set = {name.lower() for name in schema}

    def compile_node(node: ast.Expr) -> Evaluator:
        if isinstance(node, ast.Literal):
            value = node.value
            return lambda _row, _ctx: value

        if isinstance(node, ast.FieldRef):
            key = node.name.lower()
            if key in schema_set:
                return lambda row, _ctx, key=key: row.get(key)
            if node.name in aliases:
                return aliases[node.name]
            lowered = {name.lower(): fn for name, fn in aliases.items()}
            if key in lowered:
                return lowered[key]
            raise UnknownFieldError(
                node.name, tuple(sorted(schema_set | set(aliases)))
            )

        if isinstance(node, ast.Star):
            raise PlanError("'*' is only valid in SELECT lists and COUNT(*)")

        if isinstance(node, ast.FuncCall):
            if node.name in AGGREGATE_NAMES:
                raise PlanError(
                    f"aggregate {node.name}() is not allowed here; aggregates "
                    "belong in the SELECT list or HAVING of a windowed query"
                )
            spec = registry.lookup(node.name)
            arg_evals = [compile_node(arg) for arg in node.args]
            if spec.stateful:
                # One instance per call site per query.
                site = next(_call_site_counter)
                instance = spec.impl()
                ctx.state[site] = instance

                def eval_stateful(
                    row: Row, context: EvalContext, instance=instance, arg_evals=arg_evals
                ) -> Any:
                    return instance(
                        context, *(e(row, context) for e in arg_evals)
                    )

                return eval_stateful

            impl = spec.impl

            def eval_call(
                row: Row, context: EvalContext, impl=impl, arg_evals=arg_evals
            ) -> Any:
                return impl(context, *(e(row, context) for e in arg_evals))

            return eval_call

        if isinstance(node, ast.UnaryOp):
            inner = compile_node(node.operand)
            if node.op == "NOT":

                def eval_not(row: Row, context: EvalContext) -> Any:
                    value = inner(row, context)
                    return None if value is None else not _truthy(value)

                return eval_not
            if node.op == "NEG":

                def eval_neg(row: Row, context: EvalContext) -> Any:
                    value = inner(row, context)
                    return None if value is None else -value

                return eval_neg
            if node.op == "IS NULL":
                return lambda row, context: inner(row, context) is None
            if node.op == "IS NOT NULL":
                return lambda row, context: inner(row, context) is not None
            raise PlanError(f"unknown unary operator {node.op!r}")

        if isinstance(node, ast.InList):
            operand = compile_node(node.operand)
            value_evals = [compile_node(v) for v in node.values]

            def eval_in(row: Row, context: EvalContext) -> Any:
                needle = operand(row, context)
                if needle is None:
                    return None
                values = [e(row, context) for e in value_evals]
                return needle in values

            return eval_in

        if isinstance(node, ast.BBox):
            box = resolve_bbox(node)
            return lambda _row, _ctx, box=box: box

        if isinstance(node, ast.BinaryOp):
            return compile_binary(node)

        raise PlanError(f"cannot compile expression node {node!r}")

    def compile_binary(node: ast.BinaryOp) -> Evaluator:
        op = node.op
        if op == "AND":
            left, right = compile_node(node.left), compile_node(node.right)

            def eval_and(row: Row, context: EvalContext) -> Any:
                lhs = left(row, context)
                if lhs is not None and not _truthy(lhs):
                    return False
                rhs = right(row, context)
                if rhs is not None and not _truthy(rhs):
                    return False
                if lhs is None or rhs is None:
                    return None
                return True

            return eval_and
        if op == "OR":
            left, right = compile_node(node.left), compile_node(node.right)

            def eval_or(row: Row, context: EvalContext) -> Any:
                lhs = left(row, context)
                if lhs is not None and _truthy(lhs):
                    return True
                rhs = right(row, context)
                if rhs is not None and _truthy(rhs):
                    return True
                if lhs is None or rhs is None:
                    return None
                return False

            return eval_or

        if op == "CONTAINS":
            left, right = compile_node(node.left), compile_node(node.right)

            def eval_contains(row: Row, context: EvalContext) -> Any:
                text, needle = left(row, context), right(row, context)
                if text is None or needle is None:
                    return None
                return str(needle).casefold() in str(text).casefold()

            return eval_contains

        if op == "MATCHES":
            left = compile_node(node.left)
            if isinstance(node.right, ast.Literal) and isinstance(
                node.right.value, str
            ):
                try:
                    pattern = re.compile(node.right.value, re.IGNORECASE)
                except re.error as exc:
                    raise PlanError(
                        f"invalid regular expression {node.right.value!r}: {exc}"
                    ) from exc

                def eval_matches(row: Row, context: EvalContext) -> Any:
                    text = left(row, context)
                    if text is None:
                        return None
                    return pattern.search(str(text)) is not None

                return eval_matches
            right = compile_node(node.right)

            def eval_matches_dyn(row: Row, context: EvalContext) -> Any:
                text, pat = left(row, context), right(row, context)
                if text is None or pat is None:
                    return None
                return re.search(str(pat), str(text), re.IGNORECASE) is not None

            return eval_matches_dyn

        if op == "LIKE":
            left = compile_node(node.left)
            if not (
                isinstance(node.right, ast.Literal)
                and isinstance(node.right.value, str)
            ):
                raise PlanError("LIKE requires a string literal pattern")
            pattern = _like_to_regex(node.right.value)

            def eval_like(row: Row, context: EvalContext) -> Any:
                text = left(row, context)
                if text is None:
                    return None
                return pattern.match(str(text)) is not None

            return eval_like

        if op == "IN_BBOX":
            left = compile_node(node.left)
            if not isinstance(node.right, ast.BBox):
                raise PlanError("IN [bounding box …] requires a bbox literal")
            box = resolve_bbox(node.right)

            def eval_in_bbox(row: Row, context: EvalContext) -> Any:
                point = left(row, context)
                if point is None:
                    return None
                try:
                    lat, lon = point
                except (TypeError, ValueError):
                    return None
                if lat is None or lon is None:
                    return None
                return box.contains(float(lat), float(lon))

            return eval_in_bbox

        if op in _COMPARE:
            left, right = compile_node(node.left), compile_node(node.right)
            compare = _COMPARE[op]

            def eval_compare(row: Row, context: EvalContext) -> Any:
                lhs, rhs = left(row, context), right(row, context)
                if lhs is None or rhs is None:
                    return None
                try:
                    return compare(lhs, rhs)
                except TypeError:
                    return None

            return eval_compare

        if op in _ARITH:
            left, right = compile_node(node.left), compile_node(node.right)
            arith = _ARITH[op]

            def eval_arith(row: Row, context: EvalContext) -> Any:
                lhs, rhs = left(row, context), right(row, context)
                if lhs is None or rhs is None:
                    return None
                try:
                    return arith(lhs, rhs)
                except ZeroDivisionError:
                    return None

            return eval_arith

        if op == "/":
            left, right = compile_node(node.left), compile_node(node.right)

            def eval_div(row: Row, context: EvalContext) -> Any:
                lhs, rhs = left(row, context), right(row, context)
                if lhs is None or rhs is None or rhs == 0:
                    return None
                return lhs / rhs

            return eval_div
        raise PlanError(f"unknown binary operator {op!r}")

    return compile_node(expr)


class _VectorNode:
    """A compiled vector sub-expression.

    ``total`` marks evaluators that cannot raise on any row of the
    engine's value domain. Scalar AND/OR short-circuit (a False left arm
    skips the right arm entirely), so the vector form — which evaluates
    both arms over the whole column — is only allowed to combine *total*
    arms; otherwise a row the scalar path would never touch could raise.
    """

    __slots__ = ("fn", "total")

    def __init__(self, fn: VectorEvaluator, total: bool) -> None:
        self.fn = fn
        self.total = total


def _vec_unary(child: _VectorNode, cell: Callable[[Any], Any]) -> VectorEvaluator:
    def fn(batch: ColumnBatch, ctx: EvalContext) -> Any:
        result = child.fn(batch, ctx)
        if isinstance(result, Broadcast):
            return Broadcast(cell(result.value))
        return [cell(value) for value in result]

    return fn


def _vec_binary(
    left: _VectorNode, right: _VectorNode, cell: Callable[[Any, Any], Any]
) -> VectorEvaluator:
    def fn(batch: ColumnBatch, ctx: EvalContext) -> Any:
        lhs = left.fn(batch, ctx)
        rhs = right.fn(batch, ctx)
        if isinstance(lhs, Broadcast):
            if isinstance(rhs, Broadcast):
                return Broadcast(cell(lhs.value, rhs.value))
            a = lhs.value
            return [cell(a, b) for b in rhs]
        if isinstance(rhs, Broadcast):
            b = rhs.value
            return [cell(a, b) for a in lhs]
        return [cell(a, b) for a, b in zip(lhs, rhs)]

    return fn


def build_fused_projector(
    pairs: list[tuple[str, str]],
) -> Callable[[list], list]:
    """Synthesize ``rows -> [{out: r.get(src), …} for r in rows]``.

    For select lists made purely of field references the fastest row
    constructor CPython offers is a literal dict display inside a list
    comprehension (one BUILD_MAP per row, keys interned at compile time)
    — measurably quicker than per-item evaluator closures or
    ``dict(zip(...))``. The display can't be written generically, so it
    is generated: names come from the parsed statement and are embedded
    via ``repr``, which yields a quoted string literal — there is no
    injection surface.
    """
    body = "[{" + ", ".join(
        f"{out!r}: r.get({src!r})" for out, src in pairs
    ) + "} for r in rows]"
    return eval(  # noqa: S307 - operands are repr'd string literals
        compile(f"lambda rows: {body}", "<fused-projection>", "eval")
    )


def compile_vector_expr(
    expr: ast.Expr,
    registry: FunctionRegistry,
    schema: tuple[str, ...],
    ctx: EvalContext,
    aliases: dict[str, Evaluator] | None = None,
) -> VectorEvaluator | None:
    """Compile an expression to a whole-column evaluator, or None.

    The vector form computes ``(batch, ctx) -> list-of-values`` (or a
    :class:`Broadcast` constant) with semantics identical to the scalar
    closure applied row by row: NULL propagation, three-valued AND/OR,
    TypeError-absorbing comparisons, NULL on division by zero. Anything
    that needs a row dict or per-row state — UDF calls, select aliases —
    returns None here; the planner then keeps the scalar path for that
    expression. Call this only *after* ``compile_expr`` succeeded on the
    same expression: plan-time validation (unknown fields, bad patterns)
    is the scalar compiler's job and is not repeated here.
    """
    schema_set = {name.lower() for name in schema}
    alias_names = set(aliases or ())
    alias_names |= {name.lower() for name in alias_names}

    def compile_node(node: ast.Expr) -> _VectorNode | None:
        if isinstance(node, ast.Literal):
            value = node.value
            return _VectorNode(lambda _batch, _ctx: Broadcast(value), total=True)

        if isinstance(node, ast.FieldRef):
            key = node.name.lower()
            if key in schema_set:
                return _VectorNode(
                    lambda batch, _ctx, key=key: batch.values(key), total=True
                )
            # Aliases are scalar closures over the projected row; stay scalar.
            return None

        if isinstance(node, ast.BBox):
            box = resolve_bbox(node)
            return _VectorNode(lambda _batch, _ctx: Broadcast(box), total=True)

        if isinstance(node, ast.UnaryOp):
            inner = compile_node(node.operand)
            if inner is None:
                return None
            if node.op == "NOT":
                return _VectorNode(
                    _vec_unary(
                        inner,
                        lambda v: None if v is None else not _truthy(v),
                    ),
                    total=inner.total,
                )
            if node.op == "NEG":
                # -value can raise TypeError on non-numerics, exactly as
                # the scalar path would whenever it actually evaluates.
                return _VectorNode(
                    _vec_unary(inner, lambda v: None if v is None else -v),
                    total=False,
                )
            if node.op == "IS NULL":
                return _VectorNode(
                    _vec_unary(inner, lambda v: v is None), total=inner.total
                )
            if node.op == "IS NOT NULL":
                return _VectorNode(
                    _vec_unary(inner, lambda v: v is not None),
                    total=inner.total,
                )
            return None

        if isinstance(node, ast.InList):
            operand = compile_node(node.operand)
            if operand is None:
                return None
            if all(isinstance(v, ast.Literal) for v in node.values):
                values = [v.value for v in node.values]  # type: ignore[union-attr]
                return _VectorNode(
                    _vec_unary(
                        operand,
                        lambda v, values=values: (
                            None if v is None else v in values
                        ),
                    ),
                    total=operand.total,
                )
            value_nodes = [compile_node(v) for v in node.values]
            if any(v is None for v in value_nodes):
                return None

            def eval_in(
                batch: ColumnBatch,
                context: EvalContext,
                operand=operand,
                value_nodes=value_nodes,
            ) -> Any:
                n = batch.length
                needles = expand_column(operand.fn(batch, context), n)
                cols = [
                    expand_column(v.fn(batch, context), n)  # type: ignore[union-attr]
                    for v in value_nodes
                ]
                return [
                    None
                    if needles[i] is None
                    else needles[i] in [col[i] for col in cols]
                    for i in range(n)
                ]

            return _VectorNode(
                eval_in,
                total=operand.total
                and all(v.total for v in value_nodes),  # type: ignore[union-attr]
            )

        if isinstance(node, ast.BinaryOp):
            return compile_binary(node)

        # FuncCall (UDFs, stateful or not), Star, anything new: scalar only.
        return None

    def compile_binary(node: ast.BinaryOp) -> _VectorNode | None:
        op = node.op
        if op in ("AND", "OR"):
            left = compile_node(node.left)
            right = compile_node(node.right)
            if left is None or right is None:
                return None
            # Both arms run over the whole column, so both must be total
            # (scalar short-circuit might have skipped the right arm).
            if not (left.total and right.total):
                return None
            if op == "AND":

                def and_cell(a: Any, b: Any) -> Any:
                    if a is not None and not _truthy(a):
                        return False
                    if b is not None and not _truthy(b):
                        return False
                    if a is None or b is None:
                        return None
                    return True

                return _VectorNode(_vec_binary(left, right, and_cell), total=True)

            def or_cell(a: Any, b: Any) -> Any:
                if a is not None and _truthy(a):
                    return True
                if b is not None and _truthy(b):
                    return True
                if a is None or b is None:
                    return None
                return False

            return _VectorNode(_vec_binary(left, right, or_cell), total=True)

        if op == "CONTAINS":
            left = compile_node(node.left)
            right = compile_node(node.right)
            if left is None or right is None:
                return None
            if isinstance(node.right, ast.Literal) and node.right.value is not None:
                needle_cf = str(node.right.value).casefold()

                def eval_contains_lit(
                    batch: ColumnBatch,
                    context: EvalContext,
                    left=left,
                    needle_cf=needle_cf,
                ) -> Any:
                    texts = left.fn(batch, context)
                    if isinstance(texts, Broadcast):
                        t = texts.value
                        return Broadcast(
                            None if t is None else needle_cf in str(t).casefold()
                        )
                    return [
                        None if t is None else needle_cf in str(t).casefold()
                        for t in texts
                    ]

                return _VectorNode(eval_contains_lit, total=left.total)

            def contains_cell(a: Any, b: Any) -> Any:
                if a is None or b is None:
                    return None
                return str(b).casefold() in str(a).casefold()

            return _VectorNode(
                _vec_binary(left, right, contains_cell),
                total=left.total and right.total,
            )

        if op == "MATCHES":
            left = compile_node(node.left)
            if left is None:
                return None
            if isinstance(node.right, ast.Literal) and isinstance(
                node.right.value, str
            ):
                # Scalar compilation already validated the pattern.
                pattern = re.compile(node.right.value, re.IGNORECASE)
                search = pattern.search
                return _VectorNode(
                    _vec_unary(
                        left,
                        lambda t, search=search: (
                            None if t is None else search(str(t)) is not None
                        ),
                    ),
                    total=left.total,
                )
            right = compile_node(node.right)
            if right is None:
                return None

            def matches_cell(a: Any, b: Any) -> Any:
                if a is None or b is None:
                    return None
                return re.search(str(b), str(a), re.IGNORECASE) is not None

            # Dynamic patterns can raise re.error, like the scalar path.
            return _VectorNode(_vec_binary(left, right, matches_cell), total=False)

        if op == "LIKE":
            left = compile_node(node.left)
            if left is None:
                return None
            # Non-literal patterns were rejected at scalar compile time.
            assert isinstance(node.right, ast.Literal)
            assert isinstance(node.right.value, str)
            match = _like_to_regex(node.right.value).match
            return _VectorNode(
                _vec_unary(
                    left,
                    lambda t, match=match: (
                        None if t is None else match(str(t)) is not None
                    ),
                ),
                total=left.total,
            )

        if op == "IN_BBOX":
            left = compile_node(node.left)
            if left is None:
                return None
            assert isinstance(node.right, ast.BBox)
            box = resolve_bbox(node.right)

            def bbox_cell(point: Any, box: BoundingBox = box) -> Any:
                if point is None:
                    return None
                try:
                    lat, lon = point
                except (TypeError, ValueError):
                    return None
                if lat is None or lon is None:
                    return None
                return box.contains(float(lat), float(lon))

            # float() can raise ValueError on dirty data, as in scalar.
            return _VectorNode(_vec_unary(left, bbox_cell), total=False)

        if op in _COMPARE:
            left = compile_node(node.left)
            right = compile_node(node.right)
            if left is None or right is None:
                return None
            compare = _COMPARE[op]

            def compare_cell(a: Any, b: Any, compare=compare) -> Any:
                if a is None or b is None:
                    return None
                try:
                    return compare(a, b)
                except TypeError:
                    return None

            def eval_compare_vec(
                batch: ColumnBatch,
                context: EvalContext,
                left=left,
                right=right,
                compare=compare,
                compare_cell=compare_cell,
            ) -> Any:
                lhs = left.fn(batch, context)
                rhs = right.fn(batch, context)
                if isinstance(rhs, Broadcast) and not isinstance(lhs, Broadcast):
                    b = rhs.value
                    if b is None:
                        return Broadcast(None)
                    try:
                        # Fast lane: no per-cell try/except. A mixed-type
                        # column retries with the absorbing cell below.
                        return [
                            None if a is None else compare(a, b) for a in lhs
                        ]
                    except TypeError:
                        return [compare_cell(a, b) for a in lhs]
                if isinstance(lhs, Broadcast):
                    if isinstance(rhs, Broadcast):
                        return Broadcast(compare_cell(lhs.value, rhs.value))
                    a = lhs.value
                    if a is None:
                        return Broadcast(None)
                    try:
                        return [
                            None if b is None else compare(a, b) for b in rhs
                        ]
                    except TypeError:
                        return [compare_cell(a, b) for b in rhs]
                return [compare_cell(a, b) for a, b in zip(lhs, rhs)]

            return _VectorNode(
                eval_compare_vec, total=left.total and right.total
            )

        if op in _ARITH:
            left = compile_node(node.left)
            right = compile_node(node.right)
            if left is None or right is None:
                return None
            arith = _ARITH[op]

            def arith_cell(a: Any, b: Any, arith=arith) -> Any:
                if a is None or b is None:
                    return None
                try:
                    return arith(a, b)
                except ZeroDivisionError:
                    return None

            # TypeError propagates, exactly like the scalar path.
            return _VectorNode(_vec_binary(left, right, arith_cell), total=False)

        if op == "/":
            left = compile_node(node.left)
            right = compile_node(node.right)
            if left is None or right is None:
                return None

            def div_cell(a: Any, b: Any) -> Any:
                if a is None or b is None or b == 0:
                    return None
                return a / b

            return _VectorNode(_vec_binary(left, right, div_cell), total=False)

        return None

    node = compile_node(expr)
    return None if node is None else node.fn


def _truthy(value: Any) -> bool:
    """SQL truthiness: booleans as-is, numbers nonzero, strings nonempty."""
    return bool(value)


def contains_aggregate(expr: ast.Expr) -> bool:
    """True when any sub-expression is an aggregate call."""
    return any(
        isinstance(node, ast.FuncCall) and node.name in AGGREGATE_NAMES
        for node in ast.walk(expr)
    )


def contains_high_latency(
    expr: ast.Expr, registry: FunctionRegistry
) -> bool:
    """True when any sub-expression calls a high-latency function."""
    for node in ast.walk(expr):
        if isinstance(node, ast.FuncCall) and node.name not in AGGREGATE_NAMES:
            if node.name in registry and registry.lookup(node.name).high_latency:
                return True
    return False
