"""Expression compilation.

``compile_expr`` turns an AST expression into a closure
``(row, ctx) -> value`` with SQL semantics:

- ``None`` is NULL and propagates through arithmetic, comparisons, and
  string operators;
- ``AND``/``OR``/``NOT`` follow three-valued logic (``NULL OR TRUE`` is
  TRUE, ``NULL AND FALSE`` is FALSE, otherwise NULL);
- ``CONTAINS`` is the paper's case-insensitive substring operator;
- ``MATCHES`` is regular-expression search (compiled once per call site);
- ``LIKE`` supports ``%`` and ``_`` wildcards, case-insensitively;
- ``IN_BBOX`` tests a (lat, lon) point against a bounding-box literal;
- division by zero yields NULL rather than killing a long-running stream
  query (documented divergence from strict SQL, matching the original
  TweeQL's forgiving behaviour on dirty stream data).

Compilation resolves field references against the schema eagerly, so typos
fail at plan time with the available fields listed, not tuple-by-tuple at
runtime.
"""

from __future__ import annotations

import itertools
import operator
import re
from collections.abc import Callable
from typing import Any

from repro.engine.aggregates import AGGREGATE_NAMES
from repro.engine.functions import FunctionRegistry
from repro.engine.types import EvalContext, Row
from repro.errors import PlanError, UnknownFieldError
from repro.geo.bbox import BoundingBox, named_box
from repro.sql import ast

Evaluator = Callable[[Row, EvalContext], Any]

_call_site_counter = itertools.count(1)


def resolve_bbox(node: ast.BBox) -> BoundingBox:
    """Turn a bbox AST literal into a concrete box.

    Raises:
        PlanError: when a named box is unknown.
    """
    if node.coords is not None:
        south, west, north, east = node.coords
        try:
            return BoundingBox(south, west, north, east)
        except ValueError as exc:
            raise PlanError(f"invalid bounding box: {exc}") from exc
    assert node.name is not None
    try:
        return named_box(node.name)
    except KeyError as exc:
        raise PlanError(str(exc.args[0])) from exc


def _like_to_regex(pattern: str) -> re.Pattern[str]:
    parts = []
    for char in pattern:
        if char == "%":
            parts.append(".*")
        elif char == "_":
            parts.append(".")
        else:
            parts.append(re.escape(char))
    return re.compile(f"^{''.join(parts)}$", re.IGNORECASE | re.DOTALL)


_ARITH: dict[str, Callable[[Any, Any], Any]] = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "%": operator.mod,
}

_COMPARE: dict[str, Callable[[Any, Any], bool]] = {
    "=": operator.eq,
    "!=": operator.ne,
    "<>": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


def compile_expr(
    expr: ast.Expr,
    registry: FunctionRegistry,
    schema: tuple[str, ...],
    ctx: EvalContext,
    aliases: dict[str, Evaluator] | None = None,
) -> Evaluator:
    """Compile an AST expression to an evaluator closure.

    Args:
        expr: the expression tree.
        registry: function registry for FuncCall resolution.
        schema: available field names (lowercase).
        ctx: the query's evaluation context; needed at compile time so
            stateful UDFs can be instantiated once per call site.
        aliases: select-alias name → evaluator, letting GROUP BY / HAVING /
            ORDER BY reference projected expressions by alias.

    Raises:
        PlanError: aggregates in a scalar position, unknown functions.
        UnknownFieldError: a field reference matching neither schema nor
            aliases.
    """
    aliases = aliases or {}
    schema_set = {name.lower() for name in schema}

    def compile_node(node: ast.Expr) -> Evaluator:
        if isinstance(node, ast.Literal):
            value = node.value
            return lambda _row, _ctx: value

        if isinstance(node, ast.FieldRef):
            key = node.name.lower()
            if key in schema_set:
                return lambda row, _ctx, key=key: row.get(key)
            if node.name in aliases:
                return aliases[node.name]
            lowered = {name.lower(): fn for name, fn in aliases.items()}
            if key in lowered:
                return lowered[key]
            raise UnknownFieldError(
                node.name, tuple(sorted(schema_set | set(aliases)))
            )

        if isinstance(node, ast.Star):
            raise PlanError("'*' is only valid in SELECT lists and COUNT(*)")

        if isinstance(node, ast.FuncCall):
            if node.name in AGGREGATE_NAMES:
                raise PlanError(
                    f"aggregate {node.name}() is not allowed here; aggregates "
                    "belong in the SELECT list or HAVING of a windowed query"
                )
            spec = registry.lookup(node.name)
            arg_evals = [compile_node(arg) for arg in node.args]
            if spec.stateful:
                # One instance per call site per query.
                site = next(_call_site_counter)
                instance = spec.impl()
                ctx.state[site] = instance

                def eval_stateful(
                    row: Row, context: EvalContext, instance=instance, arg_evals=arg_evals
                ) -> Any:
                    return instance(
                        context, *(e(row, context) for e in arg_evals)
                    )

                return eval_stateful

            impl = spec.impl

            def eval_call(
                row: Row, context: EvalContext, impl=impl, arg_evals=arg_evals
            ) -> Any:
                return impl(context, *(e(row, context) for e in arg_evals))

            return eval_call

        if isinstance(node, ast.UnaryOp):
            inner = compile_node(node.operand)
            if node.op == "NOT":

                def eval_not(row: Row, context: EvalContext) -> Any:
                    value = inner(row, context)
                    return None if value is None else not _truthy(value)

                return eval_not
            if node.op == "NEG":

                def eval_neg(row: Row, context: EvalContext) -> Any:
                    value = inner(row, context)
                    return None if value is None else -value

                return eval_neg
            if node.op == "IS NULL":
                return lambda row, context: inner(row, context) is None
            if node.op == "IS NOT NULL":
                return lambda row, context: inner(row, context) is not None
            raise PlanError(f"unknown unary operator {node.op!r}")

        if isinstance(node, ast.InList):
            operand = compile_node(node.operand)
            value_evals = [compile_node(v) for v in node.values]

            def eval_in(row: Row, context: EvalContext) -> Any:
                needle = operand(row, context)
                if needle is None:
                    return None
                values = [e(row, context) for e in value_evals]
                return needle in values

            return eval_in

        if isinstance(node, ast.BBox):
            box = resolve_bbox(node)
            return lambda _row, _ctx, box=box: box

        if isinstance(node, ast.BinaryOp):
            return compile_binary(node)

        raise PlanError(f"cannot compile expression node {node!r}")

    def compile_binary(node: ast.BinaryOp) -> Evaluator:
        op = node.op
        if op == "AND":
            left, right = compile_node(node.left), compile_node(node.right)

            def eval_and(row: Row, context: EvalContext) -> Any:
                lhs = left(row, context)
                if lhs is not None and not _truthy(lhs):
                    return False
                rhs = right(row, context)
                if rhs is not None and not _truthy(rhs):
                    return False
                if lhs is None or rhs is None:
                    return None
                return True

            return eval_and
        if op == "OR":
            left, right = compile_node(node.left), compile_node(node.right)

            def eval_or(row: Row, context: EvalContext) -> Any:
                lhs = left(row, context)
                if lhs is not None and _truthy(lhs):
                    return True
                rhs = right(row, context)
                if rhs is not None and _truthy(rhs):
                    return True
                if lhs is None or rhs is None:
                    return None
                return False

            return eval_or

        if op == "CONTAINS":
            left, right = compile_node(node.left), compile_node(node.right)

            def eval_contains(row: Row, context: EvalContext) -> Any:
                text, needle = left(row, context), right(row, context)
                if text is None or needle is None:
                    return None
                return str(needle).casefold() in str(text).casefold()

            return eval_contains

        if op == "MATCHES":
            left = compile_node(node.left)
            if isinstance(node.right, ast.Literal) and isinstance(
                node.right.value, str
            ):
                try:
                    pattern = re.compile(node.right.value, re.IGNORECASE)
                except re.error as exc:
                    raise PlanError(
                        f"invalid regular expression {node.right.value!r}: {exc}"
                    ) from exc

                def eval_matches(row: Row, context: EvalContext) -> Any:
                    text = left(row, context)
                    if text is None:
                        return None
                    return pattern.search(str(text)) is not None

                return eval_matches
            right = compile_node(node.right)

            def eval_matches_dyn(row: Row, context: EvalContext) -> Any:
                text, pat = left(row, context), right(row, context)
                if text is None or pat is None:
                    return None
                return re.search(str(pat), str(text), re.IGNORECASE) is not None

            return eval_matches_dyn

        if op == "LIKE":
            left = compile_node(node.left)
            if not (
                isinstance(node.right, ast.Literal)
                and isinstance(node.right.value, str)
            ):
                raise PlanError("LIKE requires a string literal pattern")
            pattern = _like_to_regex(node.right.value)

            def eval_like(row: Row, context: EvalContext) -> Any:
                text = left(row, context)
                if text is None:
                    return None
                return pattern.match(str(text)) is not None

            return eval_like

        if op == "IN_BBOX":
            left = compile_node(node.left)
            if not isinstance(node.right, ast.BBox):
                raise PlanError("IN [bounding box …] requires a bbox literal")
            box = resolve_bbox(node.right)

            def eval_in_bbox(row: Row, context: EvalContext) -> Any:
                point = left(row, context)
                if point is None:
                    return None
                try:
                    lat, lon = point
                except (TypeError, ValueError):
                    return None
                if lat is None or lon is None:
                    return None
                return box.contains(float(lat), float(lon))

            return eval_in_bbox

        if op in _COMPARE:
            left, right = compile_node(node.left), compile_node(node.right)
            compare = _COMPARE[op]

            def eval_compare(row: Row, context: EvalContext) -> Any:
                lhs, rhs = left(row, context), right(row, context)
                if lhs is None or rhs is None:
                    return None
                try:
                    return compare(lhs, rhs)
                except TypeError:
                    return None

            return eval_compare

        if op in _ARITH:
            left, right = compile_node(node.left), compile_node(node.right)
            arith = _ARITH[op]

            def eval_arith(row: Row, context: EvalContext) -> Any:
                lhs, rhs = left(row, context), right(row, context)
                if lhs is None or rhs is None:
                    return None
                try:
                    return arith(lhs, rhs)
                except ZeroDivisionError:
                    return None

            return eval_arith

        if op == "/":
            left, right = compile_node(node.left), compile_node(node.right)

            def eval_div(row: Row, context: EvalContext) -> Any:
                lhs, rhs = left(row, context), right(row, context)
                if lhs is None or rhs is None or rhs == 0:
                    return None
                return lhs / rhs

            return eval_div
        raise PlanError(f"unknown binary operator {op!r}")

    return compile_node(expr)


def _truthy(value: Any) -> bool:
    """SQL truthiness: booleans as-is, numbers nonzero, strings nonempty."""
    return bool(value)


def contains_aggregate(expr: ast.Expr) -> bool:
    """True when any sub-expression is an aggregate call."""
    return any(
        isinstance(node, ast.FuncCall) and node.name in AGGREGATE_NAMES
        for node in ast.walk(expr)
    )


def contains_high_latency(
    expr: ast.Expr, registry: FunctionRegistry
) -> bool:
    """True when any sub-expression calls a high-latency function."""
    for node in ast.walk(expr):
        if isinstance(node, ast.FuncCall) and node.name not in AGGREGATE_NAMES:
            if node.name in registry and registry.lookup(node.name).high_latency:
                return True
    return False
