"""Core engine types: rows, batches, schemas, and the evaluation context.

Rows are plain dicts (field name → value); a schema is an ordered tuple of
field names. ``None`` is SQL NULL and propagates through expressions per
three-valued logic (see :mod:`repro.engine.expressions`).

Operators exchange rows in :class:`RowBatch` units — a list of rows plus a
batch sequence stamp and an end-of-stream marker. Batch size is a pure
performance knob (``EngineConfig.batch_size``): results are row-for-row
identical at every size, with 1 reproducing the legacy row-at-a-time
pipeline.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field
from typing import Any

from repro.clock import VirtualClock

Row = dict[str, Any]
Schema = tuple[str, ...]

#: Default rows per batch. Large enough to amortize per-batch interpreter
#: overhead (and to give batched/async prefetch a useful key window), small
#: enough that windowed emission latency stays negligible.
DEFAULT_BATCH_SIZE = 256


@dataclass(slots=True)
class RowBatch:
    """One unit of batch-at-a-time data flow.

    Attributes:
        rows: the payload, in stream order. May be empty — operators must
            tolerate an empty final batch (pure punctuation).
        seq: batch sequence stamp from the emitting operator, strictly
            increasing per producer. Diagnostic; row-level ordering under
            sharding still uses per-row ``__seq__`` stamps.
        last: end-of-stream punctuation — no further batches follow. Every
            producer terminates its output with exactly one ``last`` batch
            (possibly empty), so downstream operators can flush buffered
            state without waiting on a ``StopIteration`` that a queue-fed
            pipeline may never deliver promptly.
    """

    rows: list[Row]
    seq: int = 0
    last: bool = False

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def head(self, n: int) -> "RowBatch":
        """The first ``n`` rows as a terminal batch (LIMIT truncation)."""
        return RowBatch(self.rows[:n], seq=self.seq, last=True)


class _Missing:
    """Sentinel for a field absent from a row (distinct from SQL NULL)."""

    __slots__ = ()
    _instance: "_Missing | None" = None

    def __new__(cls) -> "_Missing":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "MISSING"

    def __reduce__(self) -> tuple[Any, tuple[Any, ...]]:
        # Pickling (process-backend transport) must preserve identity.
        return (_Missing, ())


#: Column cell marking "this row has no such key". ``None`` cells are SQL
#: NULL; ``MISSING`` cells disappear again in :meth:`ColumnBatch.to_rows`.
MISSING = _Missing()


class ColumnBatch:
    """Columnar unit of batch-at-a-time data flow.

    The payload is one value array per field (``columns``) instead of a
    list of per-row dicts. Cells are either real values, ``None`` (SQL
    NULL), or :data:`MISSING` (the row had no such key — rows in one batch
    need not share a schema). ``seq``/``last`` punctuation matches
    :class:`RowBatch` exactly, and :meth:`to_rows`/:meth:`from_rows` are
    cheap bridges so row-oriented consumers (INTO sinks, CSV, TwitInfo,
    the exchange partitioner) keep working unchanged via the ``rows``
    property.

    Columns materialize *lazily*: a batch built with :meth:`from_rows`
    keeps the row list as its source of truth and transposes one column
    the first time an accessor asks for it. A scan therefore pays no
    transpose at all for fields the query never touches, and a selective
    filter compresses row references (one pointer copy per survivor)
    instead of re-gathering every column — which is what makes the
    vectorized path cheaper than the row pipeline rather than merely
    prettier. Fully-columnar batches (``_lazy`` False, e.g. projection
    output) behave identically through the same accessors.
    """

    __slots__ = ("columns", "length", "seq", "last", "_rows", "_lazy", "_absent")

    def __init__(
        self,
        columns: dict[str, list[Any]],
        length: int,
        seq: int = 0,
        last: bool = False,
    ) -> None:
        self.columns = columns
        self.length = length
        self.seq = seq
        self.last = last
        self._rows: list[Row] | None = None
        self._lazy = False
        # Fields a probe found on no row. A filter stack asks every batch
        # "any __punct__?"; caching the negative — and handing it down to
        # compress/take children, whose rows are a subset — turns O(rows)
        # probes per operator into one probe per source batch. Row dicts
        # are never mutated in place once batched, so the cache cannot go
        # stale.
        self._absent: set[str] | None = None

    # -- bridges --------------------------------------------------------------

    @classmethod
    def from_rows(
        cls, rows: list[Row], seq: int = 0, last: bool = False
    ) -> "ColumnBatch":
        """Wrap a row list; columns transpose lazily on first access."""
        batch = cls({}, len(rows), seq=seq, last=last)
        batch._rows = rows
        batch._lazy = True
        return batch

    def _materialize(self, name: str) -> list[Any]:
        """Transpose one column out of the backing rows (cached)."""
        assert self._rows is not None
        col = [row.get(name, MISSING) for row in self._rows]
        self.columns[name] = col
        return col

    def _materialize_all(self) -> None:
        """Complete the transpose (equality and repr need every column)."""
        if not self._lazy:
            return
        assert self._rows is not None
        keys: dict[str, None] = {}
        for row in self._rows:
            for key in row:
                keys[key] = None
        for key in keys:
            if key not in self.columns:
                self._materialize(key)
        self._lazy = False

    def to_rows(self) -> list[Row]:
        """Materialize per-row dicts (MISSING cells are omitted)."""
        if self._lazy:
            assert self._rows is not None
            return self._rows
        n = self.length
        columns = self.columns
        if not columns:
            return [{} for _ in range(n)]
        if not any(MISSING in col for col in columns.values()):
            # Dense batch (the usual case): one C-level zip per row beats
            # a Python cell-by-cell loop by a wide margin.
            names = tuple(columns)
            return [dict(zip(names, vals)) for vals in zip(*columns.values())]
        rows: list[Row] = [{} for _ in range(n)]
        for key, col in columns.items():
            for i in range(n):
                value = col[i]
                if value is not MISSING:
                    rows[i][key] = value
        return rows

    @property
    def rows(self) -> list[Row]:
        """Row-dict view, materialized lazily and cached.

        This is the compatibility bridge: any operator or sink written
        against ``batch.rows`` works on a ColumnBatch unmodified.
        """
        if self._rows is None:
            self._rows = self.to_rows()
        return self._rows

    # -- columnar accessors ----------------------------------------------------

    def field(self, name: str) -> list[Any] | None:
        """The raw column (MISSING cells intact); None when no row has it."""
        col = self.columns.get(name)
        if col is None:
            if not self._lazy:
                return None
            absent = self._absent
            if absent is not None and name in absent:
                return None
            assert self._rows is not None
            # Probe before transposing: on homogeneous batches this exits
            # at the first row, and absent fields cost one pass, not two.
            if not any(name in row for row in self._rows):
                if absent is None:
                    absent = self._absent = set()
                absent.add(name)
                return None
            col = self._materialize(name)
            return col
        if all(v is MISSING for v in col):
            return None
        return col

    def has_field(self, name: str) -> bool:
        """True when any row in the batch carries this field."""
        return self.field(name) is not None

    def values(self, name: str) -> list[Any]:
        """The column as ``row.get(name)`` would see it (MISSING → None)."""
        col = self.columns.get(name)
        if col is None and self._lazy:
            absent = self._absent
            if absent is not None and name in absent:
                return [None] * self.length
            col = self._materialize(name)
        if col is None:
            return [None] * self.length
        # `in` runs the C identity-first scan — far cheaper than a genexpr.
        if MISSING in col:
            return [None if v is MISSING else v for v in col]
        return col

    def null_mask(self, name: str) -> list[bool]:
        """True where the field is NULL or absent."""
        col = self.columns.get(name)
        if col is None and self._lazy:
            col = self._materialize(name)
        if col is None:
            return [True] * self.length
        return [v is None or v is MISSING for v in col]

    # -- structural ops --------------------------------------------------------

    def compress(self, verdicts: list[Any]) -> "ColumnBatch":
        """Surviving-rows batch from a verdict column (truthy keeps).

        The filter hot path: rows-backed batches copy one row reference
        per survivor — already-transposed columns are dropped and
        re-materialize from the survivors on demand, which is cheaper
        than gathering every cached column through an index list.
        """
        if self._lazy:
            assert self._rows is not None
            kept = [
                row
                for row, v in zip(self._rows, verdicts)
                if v is not None and v
            ]
            if len(kept) == self.length:
                return self
            out = ColumnBatch.from_rows(kept, seq=self.seq, last=self.last)
            if self._absent:
                out._absent = set(self._absent)
            return out
        keep = [i for i, v in enumerate(verdicts) if v is not None and v]
        return self.take(keep)

    def take(self, indexes: list[int]) -> "ColumnBatch":
        """A new batch keeping only the given row positions, in order."""
        if len(indexes) == self.length:
            return self
        if self._lazy:
            assert self._rows is not None
            rows = self._rows
            out = ColumnBatch.from_rows(
                [rows[i] for i in indexes], seq=self.seq, last=self.last
            )
            if self._absent:
                out._absent = set(self._absent)
            return out
        columns = {
            key: [col[i] for i in indexes]
            for key, col in self.columns.items()
        }
        return ColumnBatch(columns, len(indexes), seq=self.seq, last=self.last)

    def head(self, n: int) -> "ColumnBatch":
        """The first ``n`` rows as a terminal batch (LIMIT truncation)."""
        if self._lazy:
            assert self._rows is not None
            batch = ColumnBatch.from_rows(self._rows[:n], seq=self.seq)
            batch.last = True
            if self._absent:
                batch._absent = set(self._absent)
            return batch
        columns = {key: col[:n] for key, col in self.columns.items()}
        return ColumnBatch(columns, min(n, self.length), seq=self.seq, last=True)

    # -- protocol --------------------------------------------------------------

    def __len__(self) -> int:
        return self.length

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def _normalized(self) -> dict[str, list[Any]]:
        # A column of all-MISSING cells is indistinguishable from an
        # absent column once bridged through rows; equality ignores it.
        self._materialize_all()
        return {
            key: col
            for key, col in self.columns.items()
            if any(v is not MISSING for v in col)
        }

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ColumnBatch):
            return NotImplemented
        return (
            self.seq == other.seq
            and self.last == other.last
            and self.length == other.length
            and self._normalized() == other._normalized()
        )

    def __repr__(self) -> str:
        self._materialize_all()
        return (
            f"ColumnBatch(length={self.length}, "
            f"fields={list(self.columns)}, seq={self.seq}, last={self.last})"
        )


#: Either batch flavor — operators accept both and the punctuation
#: contract (seq / last / rows) is identical.
Batch = RowBatch | ColumnBatch


def batch_rows(
    rows: Iterable[Row], batch_size: int = DEFAULT_BATCH_SIZE
) -> Iterator[RowBatch]:
    """Chunk a row iterable into batches; the final batch is marked last.

    Always yields at least one batch (empty + last for an empty input), so
    consumers can rely on seeing the punctuation.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be positive")
    pending: list[Row] = []
    seq = 0
    for row in rows:
        pending.append(row)
        if len(pending) >= batch_size:
            yield RowBatch(pending, seq=seq)
            seq += 1
            pending = []
    yield RowBatch(pending, seq=seq, last=True)


def iter_rows(batches: Iterable["Batch"]) -> Iterator[Row]:
    """Flatten a batch stream back into rows (executor / test boundary)."""
    for batch in batches:
        yield from batch.rows
        if batch.last:
            return


@dataclass
class QueryStats:
    """Counters collected while a query runs."""

    rows_scanned: int = 0
    rows_after_filter: int = 0
    rows_emitted: int = 0
    predicate_evaluations: int = 0
    windows_closed: int = 0
    groups_emitted: int = 0
    #: Batches emitted by the source scan. Sharded plans count per shard
    #: scan, so this aggregates differently from serial — comparisons
    #: across worker counts should exclude it.
    batches: int = 0

    def as_dict(self) -> dict[str, int]:
        """Snapshot for reports and tests."""
        return {
            "rows_scanned": self.rows_scanned,
            "rows_after_filter": self.rows_after_filter,
            "rows_emitted": self.rows_emitted,
            "predicate_evaluations": self.predicate_evaluations,
            "windows_closed": self.windows_closed,
            "groups_emitted": self.groups_emitted,
            "batches": self.batches,
        }

    def merge(self, other: "QueryStats") -> "QueryStats":
        """Accumulate another stats object into this one.

        Sharded plans keep one ``QueryStats`` per worker context; the
        query handle merges them into the aggregate view callers see.
        """
        self.rows_scanned += other.rows_scanned
        self.rows_after_filter += other.rows_after_filter
        self.rows_emitted += other.rows_emitted
        self.predicate_evaluations += other.predicate_evaluations
        self.windows_closed += other.windows_closed
        self.groups_emitted += other.groups_emitted
        self.batches += other.batches
        return self


@dataclass
class EvalContext:
    """Everything expression evaluation may need at runtime.

    One context exists per running query. Stateful UDF instances hang off
    ``state`` keyed by call-site id, so two ``meandev(...)`` calls in one
    query do not share state while repeated invocations at one site do.
    """

    clock: VirtualClock
    stats: QueryStats = field(default_factory=QueryStats)
    state: dict[int, Any] = field(default_factory=dict)
    #: Current stream time (timestamp of the last tweet seen). Windows and
    #: temporal functions read this rather than the wall clock.
    stream_time: float = 0.0
    #: Arbitrary services injected by the session (geocoder, classifier…).
    services: dict[str, Any] = field(default_factory=dict)
    #: Span recorder (:class:`repro.obs.trace.Tracer`) when the session
    #: enabled tracing; None keeps the hot path entirely untouched.
    tracer: Any = None
    #: The lane label this context's spans carry ("main" for serial plans,
    #: "exchange" / "worker-N" / "merge" for sharded stages).
    lane: str = "main"

    def service(self, name: str) -> Any:
        """Fetch a named service; raises KeyError with a clear message."""
        try:
            return self.services[name]
        except KeyError:
            raise KeyError(
                f"query requires service {name!r}, which the session did not "
                "provide"
            ) from None
