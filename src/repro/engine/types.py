"""Core engine types: rows, schemas, and the evaluation context.

Rows are plain dicts (field name → value); a schema is an ordered tuple of
field names. ``None`` is SQL NULL and propagates through expressions per
three-valued logic (see :mod:`repro.engine.expressions`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.clock import VirtualClock

Row = dict[str, Any]
Schema = tuple[str, ...]


@dataclass
class QueryStats:
    """Counters collected while a query runs."""

    rows_scanned: int = 0
    rows_after_filter: int = 0
    rows_emitted: int = 0
    predicate_evaluations: int = 0
    windows_closed: int = 0
    groups_emitted: int = 0

    def as_dict(self) -> dict[str, int]:
        """Snapshot for reports and tests."""
        return {
            "rows_scanned": self.rows_scanned,
            "rows_after_filter": self.rows_after_filter,
            "rows_emitted": self.rows_emitted,
            "predicate_evaluations": self.predicate_evaluations,
            "windows_closed": self.windows_closed,
            "groups_emitted": self.groups_emitted,
        }

    def merge(self, other: "QueryStats") -> "QueryStats":
        """Accumulate another stats object into this one.

        Sharded plans keep one ``QueryStats`` per worker context; the
        query handle merges them into the aggregate view callers see.
        """
        self.rows_scanned += other.rows_scanned
        self.rows_after_filter += other.rows_after_filter
        self.rows_emitted += other.rows_emitted
        self.predicate_evaluations += other.predicate_evaluations
        self.windows_closed += other.windows_closed
        self.groups_emitted += other.groups_emitted
        return self


@dataclass
class EvalContext:
    """Everything expression evaluation may need at runtime.

    One context exists per running query. Stateful UDF instances hang off
    ``state`` keyed by call-site id, so two ``meandev(...)`` calls in one
    query do not share state while repeated invocations at one site do.
    """

    clock: VirtualClock
    stats: QueryStats = field(default_factory=QueryStats)
    state: dict[int, Any] = field(default_factory=dict)
    #: Current stream time (timestamp of the last tweet seen). Windows and
    #: temporal functions read this rather than the wall clock.
    stream_time: float = 0.0
    #: Arbitrary services injected by the session (geocoder, classifier…).
    services: dict[str, Any] = field(default_factory=dict)

    def service(self, name: str) -> Any:
        """Fetch a named service; raises KeyError with a clear message."""
        try:
            return self.services[name]
        except KeyError:
            raise KeyError(
                f"query requires service {name!r}, which the session did not "
                "provide"
            ) from None
