"""Core engine types: rows, batches, schemas, and the evaluation context.

Rows are plain dicts (field name → value); a schema is an ordered tuple of
field names. ``None`` is SQL NULL and propagates through expressions per
three-valued logic (see :mod:`repro.engine.expressions`).

Operators exchange rows in :class:`RowBatch` units — a list of rows plus a
batch sequence stamp and an end-of-stream marker. Batch size is a pure
performance knob (``EngineConfig.batch_size``): results are row-for-row
identical at every size, with 1 reproducing the legacy row-at-a-time
pipeline.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field
from typing import Any

from repro.clock import VirtualClock

Row = dict[str, Any]
Schema = tuple[str, ...]

#: Default rows per batch. Large enough to amortize per-batch interpreter
#: overhead (and to give batched/async prefetch a useful key window), small
#: enough that windowed emission latency stays negligible.
DEFAULT_BATCH_SIZE = 256


@dataclass(slots=True)
class RowBatch:
    """One unit of batch-at-a-time data flow.

    Attributes:
        rows: the payload, in stream order. May be empty — operators must
            tolerate an empty final batch (pure punctuation).
        seq: batch sequence stamp from the emitting operator, strictly
            increasing per producer. Diagnostic; row-level ordering under
            sharding still uses per-row ``__seq__`` stamps.
        last: end-of-stream punctuation — no further batches follow. Every
            producer terminates its output with exactly one ``last`` batch
            (possibly empty), so downstream operators can flush buffered
            state without waiting on a ``StopIteration`` that a queue-fed
            pipeline may never deliver promptly.
    """

    rows: list[Row]
    seq: int = 0
    last: bool = False

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)


def batch_rows(
    rows: Iterable[Row], batch_size: int = DEFAULT_BATCH_SIZE
) -> Iterator[RowBatch]:
    """Chunk a row iterable into batches; the final batch is marked last.

    Always yields at least one batch (empty + last for an empty input), so
    consumers can rely on seeing the punctuation.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be positive")
    pending: list[Row] = []
    seq = 0
    for row in rows:
        pending.append(row)
        if len(pending) >= batch_size:
            yield RowBatch(pending, seq=seq)
            seq += 1
            pending = []
    yield RowBatch(pending, seq=seq, last=True)


def iter_rows(batches: Iterable[RowBatch]) -> Iterator[Row]:
    """Flatten a batch stream back into rows (executor / test boundary)."""
    for batch in batches:
        yield from batch.rows
        if batch.last:
            return


@dataclass
class QueryStats:
    """Counters collected while a query runs."""

    rows_scanned: int = 0
    rows_after_filter: int = 0
    rows_emitted: int = 0
    predicate_evaluations: int = 0
    windows_closed: int = 0
    groups_emitted: int = 0
    #: Batches emitted by the source scan. Sharded plans count per shard
    #: scan, so this aggregates differently from serial — comparisons
    #: across worker counts should exclude it.
    batches: int = 0

    def as_dict(self) -> dict[str, int]:
        """Snapshot for reports and tests."""
        return {
            "rows_scanned": self.rows_scanned,
            "rows_after_filter": self.rows_after_filter,
            "rows_emitted": self.rows_emitted,
            "predicate_evaluations": self.predicate_evaluations,
            "windows_closed": self.windows_closed,
            "groups_emitted": self.groups_emitted,
            "batches": self.batches,
        }

    def merge(self, other: "QueryStats") -> "QueryStats":
        """Accumulate another stats object into this one.

        Sharded plans keep one ``QueryStats`` per worker context; the
        query handle merges them into the aggregate view callers see.
        """
        self.rows_scanned += other.rows_scanned
        self.rows_after_filter += other.rows_after_filter
        self.rows_emitted += other.rows_emitted
        self.predicate_evaluations += other.predicate_evaluations
        self.windows_closed += other.windows_closed
        self.groups_emitted += other.groups_emitted
        self.batches += other.batches
        return self


@dataclass
class EvalContext:
    """Everything expression evaluation may need at runtime.

    One context exists per running query. Stateful UDF instances hang off
    ``state`` keyed by call-site id, so two ``meandev(...)`` calls in one
    query do not share state while repeated invocations at one site do.
    """

    clock: VirtualClock
    stats: QueryStats = field(default_factory=QueryStats)
    state: dict[int, Any] = field(default_factory=dict)
    #: Current stream time (timestamp of the last tweet seen). Windows and
    #: temporal functions read this rather than the wall clock.
    stream_time: float = 0.0
    #: Arbitrary services injected by the session (geocoder, classifier…).
    services: dict[str, Any] = field(default_factory=dict)
    #: Span recorder (:class:`repro.obs.trace.Tracer`) when the session
    #: enabled tracing; None keeps the hot path entirely untouched.
    tracer: Any = None
    #: The lane label this context's spans carry ("main" for serial plans,
    #: "exchange" / "worker-N" / "merge" for sharded stages).
    lane: str = "main"

    def service(self, name: str) -> Any:
        """Fetch a named service; raises KeyError with a clear message."""
        try:
            return self.services[name]
        except KeyError:
            raise KeyError(
                f"query requires service {name!r}, which the session did not "
                "provide"
            ) from None
