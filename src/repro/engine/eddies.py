"""Eddies-style adaptive predicate reordering.

The paper: "We are also exploring Eddies-style dynamic operator reordering
to adjust to changes in operator selectivity over time." This module makes
that exploration concrete with the classic lottery-scheduling eddy of Avnur
& Hellerstein (SIGMOD 2000), specialized to conjunctive filter pipelines —
the common shape of TweeQL WHERE clauses once the API filter is peeled off.

Each local predicate keeps exponentially decayed estimates of its pass rate
and evaluation cost. Tuples are routed through predicates in ascending
``rank = (pass_rate) * normalized_cost`` — i.e. cheap, highly selective
predicates run first — and the ordering re-sorts continuously as the
estimates drift, so a predicate that stops filtering (a keyword going
quiet, a region waking up) loses its front spot within a half-life of
arrivals.
"""

from __future__ import annotations

import time
from collections.abc import Iterable, Iterator

from repro.engine.expressions import Evaluator
from repro.engine.types import EvalContext, Row, RowBatch


class AdaptivePredicate:
    """One routable predicate with decayed pass-rate and cost estimates."""

    def __init__(
        self,
        name: str,
        evaluate: Evaluator,
        decay: float = 0.995,
        cost_hint: float = 1.0,
    ) -> None:
        self.name = name
        self._evaluate = evaluate
        self._decay = decay
        #: Decayed counters (start optimistic: everything passes, unit cost).
        self._pass_estimate = 0.5
        self._cost_estimate = cost_hint
        self.evaluations = 0
        self.passes = 0

    @property
    def pass_rate(self) -> float:
        """Current decayed estimate of P(tuple passes)."""
        return self._pass_estimate

    @property
    def cost(self) -> float:
        """Current decayed per-evaluation cost estimate (seconds)."""
        return self._cost_estimate

    @property
    def rank(self) -> float:
        """Routing rank; lower runs earlier.

        ``pass_rate * cost`` ranks by the classic ``cost / (1 - pass_rate)``
        criterion's cheap monotone proxy: predicates that are cheap and
        rarely pass come first. (For equal costs both orderings agree.)
        """
        return self._pass_estimate * self._cost_estimate

    def test(self, row: Row, ctx: EvalContext) -> bool:
        """Evaluate on a row, updating the running estimates."""
        started = time.perf_counter()
        verdict = self._evaluate(row, ctx)
        elapsed = time.perf_counter() - started
        passed = verdict is not None and bool(verdict)
        self.evaluations += 1
        if passed:
            self.passes += 1
        decay = self._decay
        self._pass_estimate = decay * self._pass_estimate + (1 - decay) * (
            1.0 if passed else 0.0
        )
        self._cost_estimate = decay * self._cost_estimate + (1 - decay) * elapsed
        ctx.stats.predicate_evaluations += 1
        return passed


class EddyOperator:
    """Routes each tuple through predicates in adaptive rank order.

    Re-sorting happens every ``resort_every`` tuples (sorting per tuple
    would dominate the cost the eddy is trying to save).
    """

    def __init__(
        self,
        child: Iterable[RowBatch],
        predicates: list[AdaptivePredicate],
        ctx: EvalContext,
        resort_every: int = 64,
    ) -> None:
        if resort_every <= 0:
            raise ValueError("resort_every must be positive")
        self._child = child
        self._predicates = list(predicates)
        self._ctx = ctx
        self._resort_every = resort_every

    @property
    def current_order(self) -> list[str]:
        """Predicate names in the order tuples currently visit them."""
        return [p.name for p in self._predicates]

    def __iter__(self) -> Iterator[RowBatch]:
        ctx = self._ctx
        stats = ctx.stats
        predicates = self._predicates
        resort_every = self._resort_every
        since_resort = 0
        for batch in self._child:
            kept: list[Row] = []
            append = kept.append
            for row in batch.rows:
                if "__punct__" in row:
                    # Sharded-execution punctuation: pass through untested.
                    append(row)
                    continue
                since_resort += 1
                if since_resort >= resort_every:
                    predicates.sort(key=lambda p: p.rank)
                    since_resort = 0
                passed_all = True
                for predicate in predicates:
                    if not predicate.test(row, ctx):
                        passed_all = False
                        break
                if passed_all:
                    stats.rows_after_filter += 1
                    append(row)
            if kept or batch.last:
                yield RowBatch(kept, seq=batch.seq, last=batch.last)
            if batch.last:
                return


class StaticConjunction:
    """Fixed-order conjunction baseline (what a non-adaptive plan does)."""

    def __init__(
        self,
        child: Iterable[RowBatch],
        predicates: list[AdaptivePredicate],
        ctx: EvalContext,
    ) -> None:
        self._child = child
        self._predicates = predicates
        self._ctx = ctx

    def __iter__(self) -> Iterator[RowBatch]:
        ctx = self._ctx
        predicates = self._predicates
        for batch in self._child:
            kept = [
                row
                for row in batch.rows
                if all(p.test(row, ctx) for p in predicates)
            ]
            ctx.stats.rows_after_filter += len(kept)
            if kept or batch.last:
                yield RowBatch(kept, seq=batch.seq, last=batch.last)
            if batch.last:
                return
