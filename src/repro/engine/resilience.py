"""Fault tolerance for high-latency services and the streaming connection.

The paper's web-service UDFs (geocoding, OpenCalais) and the streaming API
call real remote endpoints, and real remote endpoints fail: connections
drop, requests time out, rate limits push back. This module gives the
engine the machinery to ride those failures out instead of degrading a
whole query on one transient blip:

- :class:`RetryPolicy` — bounded retries with exponential backoff and full
  jitter, honoring a server-supplied ``retry_after`` as a floor on the
  wait, under an optional per-call deadline.
- :class:`CircuitBreaker` — the classic closed → open → half-open state
  machine over the virtual clock: sustained failure opens the circuit and
  short-circuits calls (no latency paid, no load added) until a half-open
  probe confirms recovery.
- :class:`ResilientService` — wraps a
  :class:`~repro.geo.service.SimulatedWebService` with both, exposing the
  same request surface so :class:`~repro.engine.latency.ManagedCall` needs
  no changes to benefit. Degradation to NULL happens only after the retry
  budget (or deadline, or breaker) is exhausted.
- :class:`FaultPlan` — a deterministic, seed-driven schedule of service
  failures, latency spikes, and stream disconnects. Service faults are
  keyed on the *request key*, not arrival order, so the same plan produces
  the same faults at every batch size and worker count — which is what
  lets the chaos harness (``tests/chaos/``) assert that a retry-enabled
  run emits row-for-row identical output to the no-fault baseline.

Every wait here advances the shared :class:`~repro.clock.VirtualClock`, so
backoff schedules are exact and testable without sleeping.
"""

from __future__ import annotations

import hashlib
import json
import random
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from typing import Any

from repro import rng as rng_mod
from repro.clock import VirtualClock
from repro.errors import CircuitOpenError, ServiceError

# ---------------------------------------------------------------------------
# Retry policy
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff, full jitter, and a deadline.

    Attributes:
        max_retries: attempts *after* the first; 0 disables retrying.
        deadline_seconds: per-logical-call budget measured on the virtual
            clock from the first attempt; a retry whose wait would cross
            the deadline is not started. None means no deadline.
        backoff_base_seconds: backoff cap for the first retry; doubles per
            subsequent retry.
        backoff_cap_seconds: upper bound on the (pre-jitter) backoff.
        jitter: draw the wait uniformly from ``[0, cap]`` (AWS-style full
            jitter) instead of waiting the full cap. Disable for tests that
            pin exact wait sequences.
    """

    max_retries: int = 3
    deadline_seconds: float | None = None
    backoff_base_seconds: float = 0.1
    backoff_cap_seconds: float = 5.0
    jitter: bool = True

    def backoff_seconds(
        self,
        attempt: int,
        rng: random.Random,
        retry_after: float | None = None,
    ) -> float:
        """The wait before retry number ``attempt`` (1-based).

        ``retry_after`` (from :attr:`ServiceError.retry_after`) is a floor:
        the server told us when it will be ready, so backing off less than
        that only burns a retry.
        """
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        cap = min(
            self.backoff_cap_seconds,
            self.backoff_base_seconds * (2.0 ** (attempt - 1)),
        )
        wait = rng.random() * cap if self.jitter else cap
        if retry_after is not None:
            wait = max(wait, retry_after)
        return wait


@dataclass
class ResilienceStats:
    """Accounting for one :class:`ResilientService`."""

    calls: int = 0
    retries: int = 0
    recovered: int = 0
    giveups: int = 0
    deadline_giveups: int = 0
    backoff_seconds: float = 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "calls": self.calls,
            "retries": self.retries,
            "recovered": self.recovered,
            "giveups": self.giveups,
            "deadline_giveups": self.deadline_giveups,
            "backoff_seconds": round(self.backoff_seconds, 6),
        }


# ---------------------------------------------------------------------------
# Circuit breaker
# ---------------------------------------------------------------------------


@dataclass
class CircuitBreakerStats:
    """Transition and short-circuit counters for one breaker."""

    failures: int = 0
    successes: int = 0
    opens: int = 0
    closes: int = 0
    probes: int = 0
    short_circuits: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "failures": self.failures,
            "successes": self.successes,
            "opens": self.opens,
            "closes": self.closes,
            "probes": self.probes,
            "short_circuits": self.short_circuits,
        }


class CircuitBreaker:
    """Closed → open → half-open breaker over the virtual clock.

    Closed: calls pass through; ``failure_threshold`` *consecutive*
    failures open the circuit. Open: :meth:`allow` raises
    :class:`~repro.errors.CircuitOpenError` (carrying ``retry_after`` =
    time until the probe window) without touching the service. After
    ``reset_timeout_seconds`` the next :meth:`allow` transitions to
    half-open and lets exactly one probe through: success closes the
    circuit, failure re-opens it for a fresh timeout.
    """

    def __init__(
        self,
        clock: VirtualClock,
        failure_threshold: int = 8,
        reset_timeout_seconds: float = 30.0,
        name: str = "service",
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be positive")
        if reset_timeout_seconds <= 0:
            raise ValueError("reset_timeout_seconds must be positive")
        self._clock = clock
        self._threshold = failure_threshold
        self._reset_timeout = reset_timeout_seconds
        self.name = name
        self.state = "closed"
        self.stats = CircuitBreakerStats()
        self._consecutive_failures = 0
        self._opened_at = 0.0

    def allow(self) -> None:
        """Gate one attempt; raises :class:`CircuitOpenError` when open."""
        if self.state != "open":
            return
        elapsed = self._clock.now - self._opened_at
        if elapsed >= self._reset_timeout:
            self.state = "half_open"
            self.stats.probes += 1
            return
        self.stats.short_circuits += 1
        raise CircuitOpenError(
            self.name, retry_after=self._reset_timeout - elapsed
        )

    def record_success(self) -> None:
        self.stats.successes += 1
        self._consecutive_failures = 0
        if self.state != "closed":
            self.state = "closed"
            self.stats.closes += 1

    def record_failure(self) -> None:
        self.stats.failures += 1
        self._consecutive_failures += 1
        if self.state == "half_open" or (
            self.state == "closed"
            and self._consecutive_failures >= self._threshold
        ):
            self.state = "open"
            self.stats.opens += 1
            self._opened_at = self._clock.now


# ---------------------------------------------------------------------------
# Fault plans: deterministic failure schedules
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ServiceFaultModel:
    """How one service misbehaves under a :class:`FaultPlan`.

    Faults are *per request key*: a fraction ``failure_rate`` of distinct
    keys fail their first 1..``max_burst`` attempts (then heal), which
    makes the schedule independent of request arrival order — the property
    the chaos-equivalence suite leans on. A disjoint ``latency_spike_rate``
    fraction of keys pay ``latency_multiplier`` × latency per request.
    """

    failure_rate: float = 0.2
    max_burst: int = 2
    retry_after_seconds: float | None = None
    latency_spike_rate: float = 0.0
    latency_multiplier: float = 5.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.failure_rate <= 1.0:
            raise ValueError("failure_rate must be in [0, 1]")
        if self.max_burst < 1:
            raise ValueError("max_burst must be positive")
        if not 0.0 <= self.latency_spike_rate <= 1.0:
            raise ValueError("latency_spike_rate must be in [0, 1]")

    def as_dict(self) -> dict[str, Any]:
        return {
            "failure_rate": self.failure_rate,
            "max_burst": self.max_burst,
            "retry_after_seconds": self.retry_after_seconds,
            "latency_spike_rate": self.latency_spike_rate,
            "latency_multiplier": self.latency_multiplier,
        }


@dataclass(frozen=True)
class StreamDrop:
    """One scheduled streaming disconnect.

    The connection drops after delivering ``after_delivered`` tweets; the
    next ``gap`` deliverable tweets fall into the disconnect window. With
    auto-reconnect the connection resumes from its cursor, so the gap
    tweets are recovered (and counted in ``ConnectionStats.gap_tweets``);
    without it they are lost, the way a client that blindly reopened the
    2011 stream lost whatever passed while it was down.
    """

    after_delivered: int
    gap: int = 0

    def __post_init__(self) -> None:
        if self.after_delivered < 0:
            raise ValueError("after_delivered must be non-negative")
        if self.gap < 0:
            raise ValueError("gap must be non-negative")

    def as_dict(self) -> dict[str, int]:
        return {"after_delivered": self.after_delivered, "gap": self.gap}


def _unit_hash(seed: int, *parts: Any) -> float:
    """Deterministic hash of (seed, parts) to a float in [0, 1).

    SHA-256 based (like :func:`repro.rng.derive`) so the mapping is stable
    across processes and PYTHONHASHSEED values.
    """
    text = ":".join([str(seed), *(repr(p) for p in parts)])
    digest = hashlib.sha256(text.encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclass(frozen=True)
class FaultPlan:
    """A reproducible schedule of service and stream failures.

    Everything is derived from ``seed`` and the request *content* (service
    name + key), never from arrival order, so one plan injects the same
    faults into a serial row-at-a-time run and a 4-worker batched run.
    ``services`` maps service names to fault models; the key ``"*"``
    applies to any service without its own entry. ``stream_drops`` applies
    to every streaming connection the plan's session opens.

    Serialization: :meth:`as_dict`/:meth:`from_dict` and
    :meth:`to_file`/:meth:`from_file` (JSON; see ``docs/RESILIENCE.md``
    for the format), so a failing chaos case can be pinned to a file and
    replayed with ``tweeql --fault-plan``.
    """

    seed: int = rng_mod.DEFAULT_SEED
    services: dict[str, ServiceFaultModel] = field(default_factory=dict)
    stream_drops: tuple[StreamDrop, ...] = ()

    def model_for(self, service: str) -> ServiceFaultModel | None:
        """The fault model governing ``service``, if any."""
        return self.services.get(service) or self.services.get("*")

    def failing_attempts(self, service: str, key: Any) -> int:
        """How many leading attempts for ``key`` fail (0 = healthy key)."""
        model = self.model_for(service)
        if model is None or model.failure_rate <= 0.0:
            return 0
        if _unit_hash(self.seed, "fail", service, key) >= model.failure_rate:
            return 0
        burst = _unit_hash(self.seed, "burst", service, key)
        return 1 + int(burst * model.max_burst) % model.max_burst

    def latency_multiplier(self, service: str, key: Any) -> float:
        """Latency multiplier for every request carrying ``key``."""
        model = self.model_for(service)
        if model is None or model.latency_spike_rate <= 0.0:
            return 1.0
        if _unit_hash(self.seed, "spike", service, key) < model.latency_spike_rate:
            return model.latency_multiplier
        return 1.0

    def injector_for(self, service: str) -> "ServiceFaultInjector | None":
        """A per-session injector for ``service``; None when unaffected."""
        if self.model_for(service) is None:
            return None
        return ServiceFaultInjector(self, service)

    # -- serialization ---------------------------------------------------------

    def as_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "services": {
                name: model.as_dict() for name, model in self.services.items()
            },
            "stream_drops": [drop.as_dict() for drop in self.stream_drops],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FaultPlan":
        services = {
            name: ServiceFaultModel(**model)
            for name, model in data.get("services", {}).items()
        }
        drops = tuple(
            StreamDrop(**drop) for drop in data.get("stream_drops", [])
        )
        return cls(
            seed=int(data.get("seed", rng_mod.DEFAULT_SEED)),
            services=services,
            stream_drops=drops,
        )

    def to_file(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as f:
            json.dump(self.as_dict(), f, indent=2)
            f.write("\n")

    @classmethod
    def from_file(cls, path: str) -> "FaultPlan":
        with open(path, encoding="utf-8") as f:
            return cls.from_dict(json.load(f))


@dataclass(frozen=True)
class FaultDecision:
    """One injector verdict: pay this latency multiplier, then maybe fail."""

    latency_multiplier: float = 1.0
    error: ServiceError | None = None


class ServiceFaultInjector:
    """Applies one :class:`FaultPlan` to one service instance.

    Mutable where the plan is frozen: it counts attempts per key (a key's
    burst heals after ``failing_attempts`` tries) and records a trace of
    every anomaly it injected, so two runs of the same plan can be
    compared fault-for-fault.
    """

    def __init__(self, plan: FaultPlan, service: str) -> None:
        self.plan = plan
        self.service = service
        self._attempts: dict[Any, int] = {}
        #: (key, attempt, kind) for every injected anomaly, in order.
        self.trace: list[tuple[Any, int, str]] = []

    def draw(self, item: Any) -> FaultDecision:
        """Account one attempt for ``item`` and decide its fate."""
        attempt = self._attempts.get(item, 0) + 1
        self._attempts[item] = attempt
        multiplier = self.plan.latency_multiplier(self.service, item)
        if multiplier != 1.0:
            self.trace.append((item, attempt, "spike"))
        error: ServiceError | None = None
        if attempt <= self.plan.failing_attempts(self.service, item):
            model = self.plan.model_for(self.service)
            retry_after = model.retry_after_seconds if model else None
            error = ServiceError(
                f"{self.service}: injected transient failure "
                f"(attempt {attempt} for {item!r})",
                retry_after=retry_after,
            )
            self.trace.append((item, attempt, "fail"))
        return FaultDecision(latency_multiplier=multiplier, error=error)


# ---------------------------------------------------------------------------
# The resilient service wrapper
# ---------------------------------------------------------------------------


class ResilientService:
    """Retries + circuit breaking around a simulated web service.

    Exposes the same surface as
    :class:`~repro.geo.service.SimulatedWebService` (``request``,
    ``request_batch``, ``request_async``, ``clock``, ``max_batch_size``,
    ``name``, ``stats``), so a :class:`~repro.engine.latency.ManagedCall`
    wraps either interchangeably. Semantics per path:

    - ``request``: attempts until success, retry budget exhaustion, or
      deadline; each failed attempt waits ``RetryPolicy.backoff_seconds``
      (virtual clock) before the next. A breaker short-circuit raises
      :class:`~repro.errors.CircuitOpenError` whose ``retry_after`` is the
      time to the half-open probe, so the backoff naturally waits it out.
    - ``request_batch``: per-item failures (returned in-place, the way the
      real batch geocoders reported per-item status) are retried as
      progressively smaller batches; items still failing when the budget
      runs out keep their exception entries.
    - ``request_async``: retries are *rescheduled* on the virtual clock —
      the user callback fires once, on final success or final failure.
      The first attempt's completion time is returned (a caller that
      stalls to it and finds no result falls back to a blocking retried
      request; see ``ManagedCall``).
    """

    def __init__(
        self,
        service: Any,
        policy: RetryPolicy,
        breaker: CircuitBreaker | None = None,
        seed: int = rng_mod.DEFAULT_SEED,
    ) -> None:
        self._service = service
        self.policy = policy
        self.breaker = breaker
        self._rng = rng_mod.derive(seed, f"resilience:{service.name}")
        self.resilience = ResilienceStats()
        #: Span recorder (set by the planner when tracing is on); each
        #: backoff wait becomes one ``retry`` span.
        self.tracer: Any = None

    # -- service surface -------------------------------------------------------

    @property
    def name(self) -> str:
        return self._service.name

    @property
    def clock(self) -> VirtualClock:
        return self._service.clock

    @property
    def max_batch_size(self) -> int:
        return self._service.max_batch_size

    @property
    def stats(self) -> Any:
        """The wrapped service's own counters (requests, failures, …)."""
        return self._service.stats

    @property
    def inner(self) -> Any:
        """The wrapped service."""
        return self._service

    # -- bookkeeping -----------------------------------------------------------

    def _record(self, success: bool) -> None:
        if self.breaker is None:
            return
        if success:
            self.breaker.record_success()
        else:
            self.breaker.record_failure()

    def _next_wait(
        self, attempt: int, started_at: float, error: ServiceError
    ) -> float | None:
        """Backoff before retry ``attempt``, or None to give up."""
        if attempt > self.policy.max_retries:
            self.resilience.giveups += 1
            return None
        wait = self.policy.backoff_seconds(
            attempt, self._rng, getattr(error, "retry_after", None)
        )
        deadline = self.policy.deadline_seconds
        if deadline is not None and (
            self.clock.now - started_at
        ) + wait > deadline:
            self.resilience.deadline_giveups += 1
            return None
        return wait

    # -- blocking --------------------------------------------------------------

    def request(self, item: Any) -> Any:
        """Blocking single-item request with retries."""
        self.resilience.calls += 1
        started_at = self.clock.now
        attempt = 0
        while True:
            error: ServiceError
            try:
                if self.breaker is not None:
                    self.breaker.allow()
                value = self._service.request(item)
            except CircuitOpenError as exc:
                error = exc  # short-circuit: no request made, no failure recorded
            except ServiceError as exc:
                self._record(success=False)
                error = exc
            else:
                self._record(success=True)
                if attempt > 0:
                    self.resilience.recovered += 1
                return value
            attempt += 1
            wait = self._next_wait(attempt, started_at, error)
            if wait is None:
                raise error
            self.resilience.retries += 1
            self.resilience.backoff_seconds += wait
            before = self.clock.now
            self.clock.advance(wait)
            if self.tracer is not None:
                self.tracer.add(
                    self.name, "retry", before, self.clock.now,
                    lane="services", attempt=attempt, key=str(item),
                )

    def request_batch(self, items: Sequence[Any]) -> list[Any]:
        """Blocking batch request; failed items retried in sub-batches."""
        self.resilience.calls += 1
        started_at = self.clock.now
        results: dict[int, Any] = {}
        pending = list(enumerate(items))
        attempt = 0
        while pending:
            batch_error: ServiceError | None = None
            try:
                if self.breaker is not None:
                    self.breaker.allow()
                values = self._service.request_batch(
                    [item for _idx, item in pending]
                )
            except CircuitOpenError as exc:
                batch_error = exc
            except ServiceError as exc:
                self._record(success=False)
                batch_error = exc
            if batch_error is None:
                self._record(success=True)
                failed: list[tuple[int, Any]] = []
                worst: ServiceError | None = None
                for (index, item), value in zip(pending, values):
                    results[index] = value
                    if isinstance(value, ServiceError):
                        failed.append((index, item))
                        worst = value
                if not failed:
                    if attempt > 0:
                        self.resilience.recovered += 1
                    break
                pending = failed
                assert worst is not None
                batch_error = worst
            attempt += 1
            wait = self._next_wait(attempt, started_at, batch_error)
            if wait is None:
                if isinstance(batch_error, CircuitOpenError) and not results:
                    raise batch_error
                for index, _item in pending:
                    results.setdefault(index, batch_error)
                break
            self.resilience.retries += 1
            self.resilience.backoff_seconds += wait
            before = self.clock.now
            self.clock.advance(wait)
            if self.tracer is not None:
                self.tracer.add(
                    self.name, "retry", before, self.clock.now,
                    lane="services", attempt=attempt, pending=len(pending),
                )
        return [results[index] for index in range(len(items))]

    # -- asynchronous ----------------------------------------------------------

    def request_async(
        self, item: Any, callback: Callable[[Any, Exception | None], None]
    ) -> float:
        """Non-blocking request whose retries reschedule on the clock.

        Returns the *first* attempt's virtual completion time; retries land
        later. ``callback`` fires exactly once, with the final outcome.
        """
        self.resilience.calls += 1
        started_at = self.clock.now
        attempt = 0

        def on_result(value: Any, error: Exception | None) -> None:
            nonlocal attempt
            if error is None:
                self._record(success=True)
                if attempt > 0:
                    self.resilience.recovered += 1
                callback(value, None)
                return
            if not isinstance(error, ServiceError):
                callback(None, error)
                return
            if not isinstance(error, CircuitOpenError):
                self._record(success=False)
            attempt += 1
            wait = self._next_wait(attempt, started_at, error)
            if wait is None:
                callback(None, error)
                return
            self.resilience.retries += 1
            self.resilience.backoff_seconds += wait
            if self.tracer is not None:
                # Async retries reschedule rather than block: the span
                # covers the scheduled backoff window.
                self.tracer.add(
                    self.name, "retry", self.clock.now, self.clock.now + wait,
                    lane="services", attempt=attempt, key=str(item),
                    path="async",
                )
            self.clock.call_at(self.clock.now + wait, relaunch)

        def relaunch() -> None:
            try:
                if self.breaker is not None:
                    self.breaker.allow()
            except CircuitOpenError as exc:
                on_result(None, exc)
                return
            self._service.request_async(item, on_result)

        try:
            if self.breaker is not None:
                self.breaker.allow()
        except CircuitOpenError as exc:
            # Deliver the short-circuit asynchronously so the caller's
            # in-flight accounting works the same as a real launch.
            done_at = self.clock.now
            self.clock.call_at(done_at, lambda: on_result(None, exc))
            return done_at
        return self._service.request_async(item, on_result)
