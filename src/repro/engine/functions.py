"""Scalar functions and the UDF registry.

The paper: "TweeQL … facilitates user-defined functions for deeper
processing of tweets and tweet text" with three flavors it calls out
explicitly — a classification framework (sentiment), web-service UDFs
(geocoding, OpenCalais entities), and stateful UDFs (TwitInfo's peak
detector). The registry models all three:

- ``scalar``: pure functions of their arguments,
- ``stateful``: a factory is instantiated per *call site* per query, so the
  UDF can carry running state across tuples (the peak detector),
- ``high_latency``: the function's cost is a remote round trip; the planner
  routes these through the caching/batching/async machinery in
  :mod:`repro.engine.latency`.

Functions receive already-evaluated argument values plus the
:class:`~repro.engine.types.EvalContext` and must treat ``None`` as SQL
NULL (return ``None`` rather than raising).
"""

from __future__ import annotations

import math
from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

from repro.clock import format_timestamp
from repro.engine.types import EvalContext
from repro.errors import UnknownFunctionError


@dataclass(frozen=True)
class FunctionSpec:
    """Registry entry for one function.

    Attributes:
        name: lowercase function name as used in queries.
        impl: for scalars, ``impl(ctx, *args) -> value``; for stateful
            functions, a zero-argument factory returning a callable with
            that signature.
        stateful: instantiate ``impl()`` once per call site per query.
        high_latency: the call is a remote round trip; eligible for the
            latency machinery.
        service: name of the context service the implementation uses
            (documentation + dependency check at plan time).
        arg_types: declared parameter types for the static analyzer, one
            of ``"boolean" | "integer" | "float" | "number" | "string" |
            "point" | "list" | "any"`` per positional slot. ``None`` means
            untyped — the analyzer skips signature checks entirely.
        return_type: declared result type (same vocabulary), or ``None``
            for unknown.
        min_args: minimum argument count when trailing parameters are
            optional; defaults to ``len(arg_types)``.
        variadic: the last ``arg_types`` slot repeats (``concat``,
            ``coalesce``); no upper bound on arity.
    """

    name: str
    impl: Callable[..., Any]
    stateful: bool = False
    high_latency: bool = False
    service: str | None = None
    arg_types: tuple[str, ...] | None = None
    return_type: str | None = None
    min_args: int | None = None
    variadic: bool = False


class FunctionRegistry:
    """Named collection of scalar/stateful UDFs.

    Sessions start from :func:`default_registry` and may add their own via
    :meth:`register` — the extensibility story the demo invited the audience
    to try ("build their own UDFs for more advanced processing").
    """

    def __init__(self) -> None:
        self._specs: dict[str, FunctionSpec] = {}

    def register(
        self,
        name: str,
        impl: Callable[..., Any],
        stateful: bool = False,
        high_latency: bool = False,
        service: str | None = None,
        arg_types: tuple[str, ...] | None = None,
        return_type: str | None = None,
        min_args: int | None = None,
        variadic: bool = False,
        replace: bool = False,
    ) -> None:
        """Register a function under ``name`` (lowercased).

        Re-registering an existing name requires ``replace=True``;
        otherwise a :class:`ValueError` flags the accidental shadowing
        (silently clobbering a builtin like ``sentiment`` turns every
        query using it into a different query).
        """
        key = name.lower()
        if key in self._specs and not replace:
            raise ValueError(
                f"function {key!r} is already registered; "
                "pass replace=True to override it"
            )
        self._specs[key] = FunctionSpec(
            name=key,
            impl=impl,
            stateful=stateful,
            high_latency=high_latency,
            service=service,
            arg_types=arg_types,
            return_type=return_type,
            min_args=min_args,
            variadic=variadic,
        )

    def lookup(self, name: str) -> FunctionSpec:
        """Fetch a spec; raises :class:`UnknownFunctionError` when missing,
        with a did-you-mean hint when a registered name is close."""
        try:
            return self._specs[name.lower()]
        except KeyError:
            import difflib

            matches = difflib.get_close_matches(
                name.lower(), self._specs, n=1, cutoff=0.6
            )
            hint = f"did you mean {matches[0]!r}?" if matches else None
            raise UnknownFunctionError(name, hint) from None

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._specs

    def names(self) -> tuple[str, ...]:
        """All registered names, sorted."""
        return tuple(sorted(self._specs))


# ---------------------------------------------------------------------------
# Builtin scalar functions
# ---------------------------------------------------------------------------


def _nullsafe(fn: Callable[..., Any]) -> Callable[..., Any]:
    """Wrap a pure function so any NULL argument yields NULL."""

    def wrapper(_ctx: EvalContext, *args: Any) -> Any:
        if any(a is None for a in args):
            return None
        return fn(*args)

    return wrapper


def _fn_substr(_ctx: EvalContext, text: Any, start: Any, length: Any = None) -> Any:
    if text is None or start is None:
        return None
    begin = max(0, int(start) - 1)  # SQL substr is 1-indexed
    if length is None:
        return str(text)[begin:]
    return str(text)[begin : begin + int(length)]


def _fn_coalesce(_ctx: EvalContext, *args: Any) -> Any:
    for value in args:
        if value is not None:
            return value
    return None


def _fn_if(_ctx: EvalContext, condition: Any, then: Any, otherwise: Any) -> Any:
    return then if condition else otherwise


# --- web-service UDFs -------------------------------------------------------


def _fn_latitude(ctx: EvalContext, location: Any) -> float | None:
    """Geocode a free-text location's latitude via the geocoding service."""
    if location is None or not str(location).strip():
        return None
    coords = ctx.service("geocode")(str(location))
    return None if coords is None else coords[0]


def _fn_longitude(ctx: EvalContext, location: Any) -> float | None:
    """Geocode a free-text location's longitude via the geocoding service."""
    if location is None or not str(location).strip():
        return None
    coords = ctx.service("geocode")(str(location))
    return None if coords is None else coords[1]


def _fn_sentiment(ctx: EvalContext, text: Any) -> int | None:
    """Classify tweet text sentiment: +1 positive, -1 negative, 0 neutral."""
    if text is None:
        return None
    return ctx.service("sentiment")(str(text))


def _fn_sentiment_score(ctx: EvalContext, text: Any) -> float | None:
    """Signed classifier confidence in [-1, 1] (negative → negative class)."""
    if text is None:
        return None
    return ctx.service("sentiment_score")(str(text))


def _fn_named_entities(ctx: EvalContext, text: Any) -> tuple[str, ...] | None:
    """Named entities via the simulated OpenCalais service."""
    if text is None:
        return None
    return tuple(ctx.service("entities")(str(text)))


def _fn_extract(
    ctx: EvalContext, text: Any, pattern: Any, group: Any = 1
) -> str | None:
    """Regex field extraction — the paper's "extract fields of interest
    from the text". Returns the requested capture group (1 by default; 0 is
    the whole match), or NULL when the pattern does not match.

    Patterns are compiled once and cached per query via ``ctx.state``.
    """
    if text is None or pattern is None:
        return None
    import re

    cache = ctx.state.setdefault("__extract_patterns__", {})
    compiled = cache.get(pattern)
    if compiled is None:
        try:
            compiled = re.compile(str(pattern), re.IGNORECASE)
        except re.error:
            return None
        cache[pattern] = compiled
    match = compiled.search(str(text))
    if match is None:
        return None
    index = int(group)
    if index > compiled.groups:
        return None
    return match.group(index)


def _fn_place_name(ctx: EvalContext, lat: Any, lon: Any) -> str | None:
    """Reverse geocoding: nearest gazetteer city for a coordinate pair."""
    if lat is None or lon is None:
        return None
    from repro.geo.gazetteer import default_gazetteer

    return default_gazetteer().nearest(float(lat), float(lon)).name


# --- tweet helpers ----------------------------------------------------------


def _fn_first_url(_ctx: EvalContext, text: Any) -> str | None:
    if text is None:
        return None
    import re

    match = re.search(r"https?://\S+", str(text))
    return match.group(0).rstrip(".,;!?)") if match else None


def _fn_hashtags(_ctx: EvalContext, text: Any) -> tuple[str, ...] | None:
    if text is None:
        return None
    import re

    return tuple(m.group(1).lower() for m in re.finditer(r"#(\w+)", str(text)))


def _fn_point(_ctx: EvalContext, lat: Any, lon: Any) -> tuple[float, float] | None:
    if lat is None or lon is None:
        return None
    return (float(lat), float(lon))


# --- temporal helpers --------------------------------------------------------


def _fn_hour(_ctx: EvalContext, timestamp: Any) -> int | None:
    if timestamp is None:
        return None
    import datetime as dt

    return dt.datetime.fromtimestamp(float(timestamp), tz=dt.timezone.utc).hour


def _fn_minute(_ctx: EvalContext, timestamp: Any) -> int | None:
    if timestamp is None:
        return None
    import datetime as dt

    return dt.datetime.fromtimestamp(float(timestamp), tz=dt.timezone.utc).minute


def _fn_day(_ctx: EvalContext, timestamp: Any) -> int | None:
    if timestamp is None:
        return None
    import datetime as dt

    return dt.datetime.fromtimestamp(float(timestamp), tz=dt.timezone.utc).day


def _fn_format_time(_ctx: EvalContext, timestamp: Any) -> str | None:
    if timestamp is None:
        return None
    return format_timestamp(float(timestamp))


def _fn_now(ctx: EvalContext) -> float:
    """Current *stream* time (last tweet's timestamp)."""
    return ctx.stream_time


# ---------------------------------------------------------------------------
# Stateful UDF example: streaming mean deviation (TwitInfo's peak primitive)
# ---------------------------------------------------------------------------


class MeanDevUDF:
    """Streaming mean/mean-deviation tracker.

    ``meandev(x)`` returns how many mean deviations ``x`` sits above the
    running mean *before* updating the running statistics with ``x`` — the
    core signal TwitInfo's peak detection thresholds (see
    :mod:`repro.twitinfo.peaks` for the full algorithm with hysteresis).
    Exponentially weighted with update factor ``alpha``.
    """

    def __init__(self, alpha: float = 0.125) -> None:
        self._alpha = alpha
        self._mean: float | None = None
        self._meandev: float | None = None

    def __call__(self, _ctx: EvalContext, value: Any, alpha: Any = None) -> float | None:
        if value is None:
            return None
        x = float(value)
        if alpha is not None:
            self._alpha = float(alpha)
        if self._mean is None or self._meandev is None or self._meandev == 0.0:
            score = 0.0
        else:
            score = (x - self._mean) / self._meandev
        # Update running statistics (TCP-RTT-style EWMA, as in TwitInfo).
        if self._mean is None:
            self._mean = x
            self._meandev = abs(x) / 2 if x else 1.0
        else:
            deviation = abs(x - self._mean)
            self._meandev = (
                self._alpha * deviation + (1 - self._alpha) * (self._meandev or 1.0)
            )
            self._mean = self._alpha * x + (1 - self._alpha) * self._mean
        return score


def default_registry() -> FunctionRegistry:
    """The builtin function set every session starts from."""
    registry = FunctionRegistry()

    # Math / string scalars.
    registry.register(
        "floor", _nullsafe(math.floor),
        arg_types=("number",), return_type="integer",
    )
    registry.register(
        "ceil", _nullsafe(math.ceil),
        arg_types=("number",), return_type="integer",
    )
    registry.register(
        "round", _nullsafe(lambda x, nd=0: round(x, int(nd))),
        arg_types=("number", "integer"), return_type="number", min_args=1,
    )
    registry.register(
        "abs", _nullsafe(abs), arg_types=("number",), return_type="number"
    )
    registry.register(
        "sqrt", _nullsafe(math.sqrt), arg_types=("number",), return_type="float"
    )
    registry.register(
        "lower", _nullsafe(lambda s: str(s).lower()),
        arg_types=("string",), return_type="string",
    )
    registry.register(
        "upper", _nullsafe(lambda s: str(s).upper()),
        arg_types=("string",), return_type="string",
    )
    registry.register(
        "length", _nullsafe(lambda s: len(str(s))),
        arg_types=("string",), return_type="integer",
    )
    registry.register(
        "trim", _nullsafe(lambda s: str(s).strip()),
        arg_types=("string",), return_type="string",
    )
    registry.register(
        "replace", _nullsafe(lambda s, a, b: str(s).replace(str(a), str(b))),
        arg_types=("string", "string", "string"), return_type="string",
    )
    registry.register(
        "concat", _nullsafe(lambda *parts: "".join(str(p) for p in parts)),
        arg_types=("any",), return_type="string", min_args=0, variadic=True,
    )
    registry.register(
        "substr", _fn_substr,
        arg_types=("string", "integer", "integer"), return_type="string",
        min_args=2,
    )
    registry.register(
        "coalesce", _fn_coalesce,
        arg_types=("any",), return_type="any", min_args=1, variadic=True,
    )
    registry.register(
        "if", _fn_if,
        arg_types=("any", "any", "any"), return_type="any",
    )

    # Tweet helpers.
    registry.register(
        "first_url", _fn_first_url, arg_types=("string",), return_type="string"
    )
    registry.register(
        "hashtags", _fn_hashtags, arg_types=("string",), return_type="list"
    )
    registry.register(
        "point", _fn_point,
        arg_types=("number", "number"), return_type="point",
    )
    registry.register(
        "extract", _fn_extract,
        arg_types=("string", "string", "integer"), return_type="string",
        min_args=2,
    )
    registry.register(
        "place_name", _fn_place_name,
        arg_types=("number", "number"), return_type="string",
    )

    # Temporal.
    registry.register(
        "hour", _fn_hour, arg_types=("number",), return_type="integer"
    )
    registry.register(
        "minute", _fn_minute, arg_types=("number",), return_type="integer"
    )
    registry.register(
        "day", _fn_day, arg_types=("number",), return_type="integer"
    )
    registry.register(
        "format_time", _fn_format_time,
        arg_types=("number",), return_type="string",
    )
    registry.register("now", _fn_now, arg_types=(), return_type="float")

    # Classification framework.
    registry.register(
        "sentiment", _fn_sentiment, service="sentiment",
        arg_types=("string",), return_type="integer",
    )
    registry.register(
        "sentiment_score", _fn_sentiment_score, service="sentiment_score",
        arg_types=("string",), return_type="float",
    )

    # Web-service UDFs (high latency).
    registry.register(
        "latitude", _fn_latitude, high_latency=True, service="geocode",
        arg_types=("string",), return_type="float",
    )
    registry.register(
        "longitude", _fn_longitude, high_latency=True, service="geocode",
        arg_types=("string",), return_type="float",
    )
    registry.register(
        "named_entities", _fn_named_entities, high_latency=True,
        service="entities", arg_types=("string",), return_type="list",
    )

    # Stateful.
    registry.register(
        "meandev", MeanDevUDF, stateful=True,
        arg_types=("number", "float"), return_type="float", min_args=1,
    )

    return registry


__all__ = [
    "FunctionSpec",
    "FunctionRegistry",
    "MeanDevUDF",
    "default_registry",
]
