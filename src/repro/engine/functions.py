"""Scalar functions and the UDF registry.

The paper: "TweeQL … facilitates user-defined functions for deeper
processing of tweets and tweet text" with three flavors it calls out
explicitly — a classification framework (sentiment), web-service UDFs
(geocoding, OpenCalais entities), and stateful UDFs (TwitInfo's peak
detector). The registry models all three:

- ``scalar``: pure functions of their arguments,
- ``stateful``: a factory is instantiated per *call site* per query, so the
  UDF can carry running state across tuples (the peak detector),
- ``high_latency``: the function's cost is a remote round trip; the planner
  routes these through the caching/batching/async machinery in
  :mod:`repro.engine.latency`.

Functions receive already-evaluated argument values plus the
:class:`~repro.engine.types.EvalContext` and must treat ``None`` as SQL
NULL (return ``None`` rather than raising).
"""

from __future__ import annotations

import math
from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

from repro.clock import format_timestamp
from repro.engine.types import EvalContext
from repro.errors import UnknownFunctionError


@dataclass(frozen=True)
class FunctionSpec:
    """Registry entry for one function.

    Attributes:
        name: lowercase function name as used in queries.
        impl: for scalars, ``impl(ctx, *args) -> value``; for stateful
            functions, a zero-argument factory returning a callable with
            that signature.
        stateful: instantiate ``impl()`` once per call site per query.
        high_latency: the call is a remote round trip; eligible for the
            latency machinery.
        service: name of the context service the implementation uses
            (documentation + dependency check at plan time).
    """

    name: str
    impl: Callable[..., Any]
    stateful: bool = False
    high_latency: bool = False
    service: str | None = None


class FunctionRegistry:
    """Named collection of scalar/stateful UDFs.

    Sessions start from :func:`default_registry` and may add their own via
    :meth:`register` — the extensibility story the demo invited the audience
    to try ("build their own UDFs for more advanced processing").
    """

    def __init__(self) -> None:
        self._specs: dict[str, FunctionSpec] = {}

    def register(
        self,
        name: str,
        impl: Callable[..., Any],
        stateful: bool = False,
        high_latency: bool = False,
        service: str | None = None,
    ) -> None:
        """Register (or replace) a function under ``name`` (lowercased)."""
        key = name.lower()
        self._specs[key] = FunctionSpec(
            name=key,
            impl=impl,
            stateful=stateful,
            high_latency=high_latency,
            service=service,
        )

    def lookup(self, name: str) -> FunctionSpec:
        """Fetch a spec; raises :class:`UnknownFunctionError` when missing."""
        try:
            return self._specs[name.lower()]
        except KeyError:
            raise UnknownFunctionError(name) from None

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._specs

    def names(self) -> tuple[str, ...]:
        """All registered names, sorted."""
        return tuple(sorted(self._specs))


# ---------------------------------------------------------------------------
# Builtin scalar functions
# ---------------------------------------------------------------------------


def _nullsafe(fn: Callable[..., Any]) -> Callable[..., Any]:
    """Wrap a pure function so any NULL argument yields NULL."""

    def wrapper(_ctx: EvalContext, *args: Any) -> Any:
        if any(a is None for a in args):
            return None
        return fn(*args)

    return wrapper


def _fn_substr(_ctx: EvalContext, text: Any, start: Any, length: Any = None) -> Any:
    if text is None or start is None:
        return None
    begin = max(0, int(start) - 1)  # SQL substr is 1-indexed
    if length is None:
        return str(text)[begin:]
    return str(text)[begin : begin + int(length)]


def _fn_coalesce(_ctx: EvalContext, *args: Any) -> Any:
    for value in args:
        if value is not None:
            return value
    return None


def _fn_if(_ctx: EvalContext, condition: Any, then: Any, otherwise: Any) -> Any:
    return then if condition else otherwise


# --- web-service UDFs -------------------------------------------------------


def _fn_latitude(ctx: EvalContext, location: Any) -> float | None:
    """Geocode a free-text location's latitude via the geocoding service."""
    if location is None or not str(location).strip():
        return None
    coords = ctx.service("geocode")(str(location))
    return None if coords is None else coords[0]


def _fn_longitude(ctx: EvalContext, location: Any) -> float | None:
    """Geocode a free-text location's longitude via the geocoding service."""
    if location is None or not str(location).strip():
        return None
    coords = ctx.service("geocode")(str(location))
    return None if coords is None else coords[1]


def _fn_sentiment(ctx: EvalContext, text: Any) -> int | None:
    """Classify tweet text sentiment: +1 positive, -1 negative, 0 neutral."""
    if text is None:
        return None
    return ctx.service("sentiment")(str(text))


def _fn_sentiment_score(ctx: EvalContext, text: Any) -> float | None:
    """Signed classifier confidence in [-1, 1] (negative → negative class)."""
    if text is None:
        return None
    return ctx.service("sentiment_score")(str(text))


def _fn_named_entities(ctx: EvalContext, text: Any) -> tuple[str, ...] | None:
    """Named entities via the simulated OpenCalais service."""
    if text is None:
        return None
    return tuple(ctx.service("entities")(str(text)))


def _fn_extract(
    ctx: EvalContext, text: Any, pattern: Any, group: Any = 1
) -> str | None:
    """Regex field extraction — the paper's "extract fields of interest
    from the text". Returns the requested capture group (1 by default; 0 is
    the whole match), or NULL when the pattern does not match.

    Patterns are compiled once and cached per query via ``ctx.state``.
    """
    if text is None or pattern is None:
        return None
    import re

    cache = ctx.state.setdefault("__extract_patterns__", {})
    compiled = cache.get(pattern)
    if compiled is None:
        try:
            compiled = re.compile(str(pattern), re.IGNORECASE)
        except re.error:
            return None
        cache[pattern] = compiled
    match = compiled.search(str(text))
    if match is None:
        return None
    index = int(group)
    if index > compiled.groups:
        return None
    return match.group(index)


def _fn_place_name(ctx: EvalContext, lat: Any, lon: Any) -> str | None:
    """Reverse geocoding: nearest gazetteer city for a coordinate pair."""
    if lat is None or lon is None:
        return None
    from repro.geo.gazetteer import default_gazetteer

    return default_gazetteer().nearest(float(lat), float(lon)).name


# --- tweet helpers ----------------------------------------------------------


def _fn_first_url(_ctx: EvalContext, text: Any) -> str | None:
    if text is None:
        return None
    import re

    match = re.search(r"https?://\S+", str(text))
    return match.group(0).rstrip(".,;!?)") if match else None


def _fn_hashtags(_ctx: EvalContext, text: Any) -> tuple[str, ...] | None:
    if text is None:
        return None
    import re

    return tuple(m.group(1).lower() for m in re.finditer(r"#(\w+)", str(text)))


def _fn_point(_ctx: EvalContext, lat: Any, lon: Any) -> tuple[float, float] | None:
    if lat is None or lon is None:
        return None
    return (float(lat), float(lon))


# --- temporal helpers --------------------------------------------------------


def _fn_hour(_ctx: EvalContext, timestamp: Any) -> int | None:
    if timestamp is None:
        return None
    import datetime as dt

    return dt.datetime.fromtimestamp(float(timestamp), tz=dt.timezone.utc).hour


def _fn_minute(_ctx: EvalContext, timestamp: Any) -> int | None:
    if timestamp is None:
        return None
    import datetime as dt

    return dt.datetime.fromtimestamp(float(timestamp), tz=dt.timezone.utc).minute


def _fn_day(_ctx: EvalContext, timestamp: Any) -> int | None:
    if timestamp is None:
        return None
    import datetime as dt

    return dt.datetime.fromtimestamp(float(timestamp), tz=dt.timezone.utc).day


def _fn_format_time(_ctx: EvalContext, timestamp: Any) -> str | None:
    if timestamp is None:
        return None
    return format_timestamp(float(timestamp))


def _fn_now(ctx: EvalContext) -> float:
    """Current *stream* time (last tweet's timestamp)."""
    return ctx.stream_time


# ---------------------------------------------------------------------------
# Stateful UDF example: streaming mean deviation (TwitInfo's peak primitive)
# ---------------------------------------------------------------------------


class MeanDevUDF:
    """Streaming mean/mean-deviation tracker.

    ``meandev(x)`` returns how many mean deviations ``x`` sits above the
    running mean *before* updating the running statistics with ``x`` — the
    core signal TwitInfo's peak detection thresholds (see
    :mod:`repro.twitinfo.peaks` for the full algorithm with hysteresis).
    Exponentially weighted with update factor ``alpha``.
    """

    def __init__(self, alpha: float = 0.125) -> None:
        self._alpha = alpha
        self._mean: float | None = None
        self._meandev: float | None = None

    def __call__(self, _ctx: EvalContext, value: Any, alpha: Any = None) -> float | None:
        if value is None:
            return None
        x = float(value)
        if alpha is not None:
            self._alpha = float(alpha)
        if self._mean is None or self._meandev is None or self._meandev == 0.0:
            score = 0.0
        else:
            score = (x - self._mean) / self._meandev
        # Update running statistics (TCP-RTT-style EWMA, as in TwitInfo).
        if self._mean is None:
            self._mean = x
            self._meandev = abs(x) / 2 if x else 1.0
        else:
            deviation = abs(x - self._mean)
            self._meandev = (
                self._alpha * deviation + (1 - self._alpha) * (self._meandev or 1.0)
            )
            self._mean = self._alpha * x + (1 - self._alpha) * self._mean
        return score


def default_registry() -> FunctionRegistry:
    """The builtin function set every session starts from."""
    registry = FunctionRegistry()

    # Math / string scalars.
    registry.register("floor", _nullsafe(math.floor))
    registry.register("ceil", _nullsafe(math.ceil))
    registry.register("round", _nullsafe(lambda x, nd=0: round(x, int(nd))))
    registry.register("abs", _nullsafe(abs))
    registry.register("sqrt", _nullsafe(math.sqrt))
    registry.register("lower", _nullsafe(lambda s: str(s).lower()))
    registry.register("upper", _nullsafe(lambda s: str(s).upper()))
    registry.register("length", _nullsafe(lambda s: len(str(s))))
    registry.register("trim", _nullsafe(lambda s: str(s).strip()))
    registry.register(
        "replace", _nullsafe(lambda s, a, b: str(s).replace(str(a), str(b)))
    )
    registry.register(
        "concat", _nullsafe(lambda *parts: "".join(str(p) for p in parts))
    )
    registry.register("substr", _fn_substr)
    registry.register("coalesce", _fn_coalesce)
    registry.register("if", _fn_if)

    # Tweet helpers.
    registry.register("first_url", _fn_first_url)
    registry.register("hashtags", _fn_hashtags)
    registry.register("point", _fn_point)
    registry.register("extract", _fn_extract)
    registry.register("place_name", _fn_place_name)

    # Temporal.
    registry.register("hour", _fn_hour)
    registry.register("minute", _fn_minute)
    registry.register("day", _fn_day)
    registry.register("format_time", _fn_format_time)
    registry.register("now", _fn_now)

    # Classification framework.
    registry.register("sentiment", _fn_sentiment, service="sentiment")
    registry.register(
        "sentiment_score", _fn_sentiment_score, service="sentiment_score"
    )

    # Web-service UDFs (high latency).
    registry.register(
        "latitude", _fn_latitude, high_latency=True, service="geocode"
    )
    registry.register(
        "longitude", _fn_longitude, high_latency=True, service="geocode"
    )
    registry.register(
        "named_entities", _fn_named_entities, high_latency=True, service="entities"
    )

    # Stateful.
    registry.register("meandev", MeanDevUDF, stateful=True)

    return registry


__all__ = [
    "FunctionSpec",
    "FunctionRegistry",
    "MeanDevUDF",
    "default_registry",
]
