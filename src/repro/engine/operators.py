"""Streaming physical operators.

Every operator is an iterator of rows (dicts) pulled by the executor. The
pipeline for a typical TweeQL query looks like::

    Scan → Filter (local predicates) → Project            (scalar queries)
    Scan → Filter → WindowedAggregate [→ Having/Order/Limit]  (aggregates)
    Scan + Scan → WindowedJoin → …                        (two-stream joins)

Stream time advances with the tweets the scan yields; windowed operators
close windows when stream time passes their end, so results are emitted as
soon as the data allows — there is no wall-clock anywhere.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable, Iterator
from typing import Any

from repro.engine.expressions import Evaluator
from repro.engine.types import EvalContext, Row
from repro.sql.ast import WindowSpec
from repro.engine.windows import windows_containing


class ScanOperator:
    """Source adapter: yields rows, advancing stream time and counters.

    ``source`` yields rows that must contain a ``created_at`` timestamp (the
    ``twitter`` source guarantees it).
    """

    def __init__(self, source: Iterable[Row], ctx: EvalContext) -> None:
        self._source = source
        self._ctx = ctx

    def __iter__(self) -> Iterator[Row]:
        for row in self._source:
            self._ctx.stats.rows_scanned += 1
            timestamp = row.get("created_at")
            if timestamp is not None and timestamp > self._ctx.stream_time:
                self._ctx.stream_time = timestamp
            yield row


class FilterOperator:
    """Applies one compiled predicate; emits rows where it is exactly TRUE
    (NULL, like FALSE, drops the row — SQL WHERE semantics)."""

    def __init__(
        self, child: Iterable[Row], predicate: Evaluator, ctx: EvalContext
    ) -> None:
        self._child = child
        self._predicate = predicate
        self._ctx = ctx

    def __iter__(self) -> Iterator[Row]:
        for row in self._child:
            if "__punct__" in row:
                # Sharded-execution punctuation carries time, not data; it
                # passes every filter without touching the counters.
                yield row
                continue
            self._ctx.stats.predicate_evaluations += 1
            verdict = self._predicate(row, self._ctx)
            if verdict is not None and verdict:
                self._ctx.stats.rows_after_filter += 1
                yield row


class ProjectOperator:
    """Evaluates the select list for non-aggregated queries.

    ``items`` maps output column name → evaluator. ``passthrough_time``
    keeps ``created_at`` on the output row (TwitInfo consumers need it) when
    the projection didn't select it explicitly.
    """

    def __init__(
        self,
        child: Iterable[Row],
        items: list[tuple[str, Evaluator]],
        ctx: EvalContext,
        passthrough_time: bool = True,
    ) -> None:
        self._child = child
        self._items = items
        self._ctx = ctx
        self._passthrough_time = passthrough_time

    def __iter__(self) -> Iterator[Row]:
        for row in self._child:
            out: Row = {}
            for name, evaluate in self._items:
                out[name] = evaluate(row, self._ctx)
            if self._passthrough_time and "created_at" not in out:
                out["created_at"] = row.get("created_at")
            if "__tweet__" in row:
                out["__tweet__"] = row["__tweet__"]
            if "__seq__" in row:
                out["__seq__"] = row["__seq__"]
            self._ctx.stats.rows_emitted += 1
            yield out


class _GroupState:
    """Accumulators and a representative row for one (window, group)."""

    __slots__ = ("accumulators", "representative", "count")

    def __init__(self, accumulators: list[Any], representative: Row) -> None:
        self.accumulators = accumulators
        self.representative = representative
        self.count = 0


class WindowedAggregateOperator:
    """GROUP BY + aggregates over tumbling/sliding time windows.

    Args:
        child: input row stream (time-ordered).
        window: the window specification.
        group_evals: compiled grouping-key expressions ([] → one global
            group per window).
        agg_factories: per aggregate call site, a zero-arg factory returning
            a fresh accumulator, plus the compiled argument evaluator (None
            for COUNT(*)) and whether NULLs are skipped.
        output_items: output column name → post-aggregation evaluator. The
            post-evaluator runs over an environment row that contains the
            representative input row's fields plus ``__agg<i>`` results.
        having: optional post-aggregation predicate.
        order_by: optional [(evaluator, descending)] applied per window.
        limit: optional per-window row cap (after ordering).

    Output rows carry ``window_start`` and ``window_end`` columns, plus
    ``created_at`` set to the window end (emission time).
    """

    def __init__(
        self,
        child: Iterable[Row],
        window: WindowSpec,
        group_evals: list[Evaluator],
        agg_factories: list[tuple[Any, Evaluator | None, bool]],
        output_items: list[tuple[str, Evaluator]],
        ctx: EvalContext,
        having: Evaluator | None = None,
        order_by: list[tuple[Evaluator, bool]] | None = None,
        limit: int | None = None,
    ) -> None:
        self._child = child
        self._window = window
        self._group_evals = group_evals
        self._agg_factories = agg_factories
        self._output_items = output_items
        self._ctx = ctx
        self._having = having
        self._order_by = order_by or []
        self._limit = limit
        # (window_start, window_end) → {group_key: _GroupState}
        self._open: dict[tuple[float, float], dict[tuple, _GroupState]] = {}

    def __iter__(self) -> Iterator[Row]:
        for row in self._child:
            timestamp = row.get("created_at", self._ctx.stream_time)
            # Close every window that ended at or before this row's time.
            yield from self._close_due(timestamp)
            for bounds in windows_containing(timestamp, self._window):
                groups = self._open.setdefault(bounds, {})
                key = tuple(
                    evaluate(row, self._ctx) for evaluate in self._group_evals
                )
                state = groups.get(key)
                if state is None:
                    state = _GroupState(
                        [factory() for factory, _arg, _skip in self._agg_factories],
                        representative=row,
                    )
                    groups[key] = state
                state.count += 1
                for accumulator, (_factory, arg_eval, skip_nulls) in zip(
                    state.accumulators, self._agg_factories
                ):
                    if arg_eval is None:
                        accumulator.add(1)
                        continue
                    value = arg_eval(row, self._ctx)
                    if value is None and skip_nulls:
                        continue
                    accumulator.add(value)
        # End of stream: flush everything still open.
        yield from self._close_due(float("inf"))

    def _close_due(self, timestamp: float) -> Iterator[Row]:
        due = sorted(
            bounds for bounds in self._open if bounds[1] <= timestamp
        )
        for bounds in due:
            groups = self._open.pop(bounds)
            self._ctx.stats.windows_closed += 1
            yield from self._emit_window(bounds, groups)

    def _emit_window(
        self, bounds: tuple[float, float], groups: dict[tuple, _GroupState]
    ) -> Iterator[Row]:
        start, end = bounds
        emitted: list[Row] = []
        for state in groups.values():
            env = dict(state.representative)
            for index, accumulator in enumerate(state.accumulators):
                env[f"__agg{index}"] = accumulator.result()
            if self._having is not None:
                verdict = self._having(env, self._ctx)
                if verdict is None or not verdict:
                    continue
            out: Row = {}
            for name, evaluate in self._output_items:
                out[name] = evaluate(env, self._ctx)
            out["window_start"] = start
            out["window_end"] = end
            out["created_at"] = end
            if "__seq__" in env:
                # Sharded execution: the merge orders same-window groups by
                # the sequence of the group's first (representative) row.
                out["__seq__"] = env["__seq__"]
            emitted.append(out)
            self._ctx.stats.groups_emitted += 1
        for evaluate, descending in reversed(self._order_by):
            emitted.sort(
                key=lambda r, e=evaluate: _sort_key(e(r, self._ctx)),
                reverse=descending,
            )
        if self._limit is not None:
            emitted = emitted[: self._limit]
        for out in emitted:
            self._ctx.stats.rows_emitted += 1
            yield out


def _sort_key(value: Any) -> tuple[int, Any]:
    """NULLs sort first; mixed types won't raise."""
    if value is None:
        return (0, 0)
    if isinstance(value, (int, float, bool)):
        return (1, value)
    return (2, str(value))


class CountWindowedAggregateOperator:
    """GROUP BY + aggregates over tweet-count windows (``WINDOW n TWEETS``).

    Windows are defined over the input row *ordinal*: with size N and slide
    M, window k covers rows [k·M, k·M + N). Emitted rows carry
    ``window_start``/``window_end`` as the timestamps of the window's first
    and last rows (so downstream time filtering still works) plus
    ``window_rows`` with the exact row count.

    This is the "window size on tweet count" alternative §2 weighs (and
    finds wanting for uneven groups — see benchmark E4).
    """

    def __init__(
        self,
        child: Iterable[Row],
        window: WindowSpec,
        group_evals: list[Evaluator],
        agg_factories: list[tuple[Any, Evaluator | None, bool]],
        output_items: list[tuple[str, Evaluator]],
        ctx: EvalContext,
        having: Evaluator | None = None,
        order_by: list[tuple[Evaluator, bool]] | None = None,
        limit: int | None = None,
    ) -> None:
        assert window.count_based
        self._child = child
        self._size = int(window.size_count)
        self._slide = int(window.slide)
        self._group_evals = group_evals
        self._agg_factories = agg_factories
        self._output_items = output_items
        self._ctx = ctx
        self._having = having
        self._order_by = order_by or []
        self._limit = limit

    def __iter__(self) -> Iterator[Row]:
        # start_ordinal → (groups, first_ts, last_ts, rows_in_window)
        open_windows: dict[int, list] = {}
        index = -1
        for index, row in enumerate(self._child):
            due = sorted(
                s for s in open_windows if s + self._size <= index
            )
            for start in due:
                yield from self._emit(open_windows.pop(start))
            latest = (index // self._slide) * self._slide
            start = latest
            while start > index - self._size and start >= 0:
                state = open_windows.get(start)
                timestamp = row.get("created_at", self._ctx.stream_time)
                if state is None:
                    state = [{}, timestamp, timestamp, 0]
                    open_windows[start] = state
                self._accumulate(state, row, timestamp)
                start -= self._slide
            # Windows that started before row 0 don't exist; also handle
            # slide > size (sampling windows): rows between windows are
            # simply not accumulated anywhere.
        for start in sorted(open_windows):
            yield from self._emit(open_windows[start])

    def _accumulate(self, state: list, row: Row, timestamp: float) -> None:
        groups, _first, _last, _n = state
        state[2] = max(state[2], timestamp)
        state[3] += 1
        key = tuple(e(row, self._ctx) for e in self._group_evals)
        group = groups.get(key)
        if group is None:
            group = _GroupState(
                [factory() for factory, _a, _s in self._agg_factories],
                representative=row,
            )
            groups[key] = group
        group.count += 1
        for accumulator, (_factory, arg_eval, skip_nulls) in zip(
            group.accumulators, self._agg_factories
        ):
            if arg_eval is None:
                accumulator.add(1)
                continue
            value = arg_eval(row, self._ctx)
            if value is None and skip_nulls:
                continue
            accumulator.add(value)

    def _emit(self, state: list) -> Iterator[Row]:
        groups, first_ts, last_ts, rows_in_window = state
        self._ctx.stats.windows_closed += 1
        emitted: list[Row] = []
        for group in groups.values():
            env = dict(group.representative)
            for agg_index, accumulator in enumerate(group.accumulators):
                env[f"__agg{agg_index}"] = accumulator.result()
            if self._having is not None:
                verdict = self._having(env, self._ctx)
                if verdict is None or not verdict:
                    continue
            out: Row = {}
            for name, evaluate in self._output_items:
                out[name] = evaluate(env, self._ctx)
            out["window_start"] = first_ts
            out["window_end"] = last_ts
            out["window_rows"] = rows_in_window
            out["created_at"] = last_ts
            emitted.append(out)
            self._ctx.stats.groups_emitted += 1
        for evaluate, descending in reversed(self._order_by):
            emitted.sort(
                key=lambda r, e=evaluate: _sort_key(e(r, self._ctx)),
                reverse=descending,
            )
        if self._limit is not None:
            emitted = emitted[: self._limit]
        for out in emitted:
            self._ctx.stats.rows_emitted += 1
            yield out


class WindowedJoinOperator:
    """Symmetric hash join between two time-ordered streams.

    Rows join when their timestamps lie within ``window.size_seconds`` of
    each other and their join keys are equal. The operator merges the two
    inputs by timestamp (pulling the side that is behind), keeps per-side
    hash tables keyed by join key, and evicts entries older than the window
    — the standard streaming band join.

    Output rows are the left row's fields plus the right row's, with right
    fields renamed ``<prefix><name>`` on collision.
    """

    def __init__(
        self,
        left: Iterable[Row],
        right: Iterable[Row],
        left_key: Evaluator,
        right_key: Evaluator,
        window: WindowSpec,
        ctx: EvalContext,
        right_prefix: str = "r_",
    ) -> None:
        self._left = iter(left)
        self._right = iter(right)
        self._left_key = left_key
        self._right_key = right_key
        self._window = window
        self._ctx = ctx
        self._right_prefix = right_prefix

    def __iter__(self) -> Iterator[Row]:
        size = self._window.size_seconds
        left_table: dict[Any, list[Row]] = {}
        right_table: dict[Any, list[Row]] = {}
        left_row = next(self._left, None)
        right_row = next(self._right, None)
        while left_row is not None or right_row is not None:
            take_left = right_row is None or (
                left_row is not None
                and left_row.get("created_at", 0.0)
                <= right_row.get("created_at", 0.0)
            )
            if take_left:
                row, advance = left_row, "left"
            else:
                row, advance = right_row, "right"
            assert row is not None
            now = row.get("created_at", 0.0)
            _evict(left_table, now - size)
            _evict(right_table, now - size)
            if advance == "left":
                key = self._left_key(row, self._ctx)
                if key is not None:
                    for match in right_table.get(key, ()):
                        yield self._merge(row, match)
                    left_table.setdefault(key, []).append(row)
                left_row = next(self._left, None)
            else:
                key = self._right_key(row, self._ctx)
                if key is not None:
                    for match in left_table.get(key, ()):
                        yield self._merge(match, row)
                    right_table.setdefault(key, []).append(row)
                right_row = next(self._right, None)

    def _merge(self, left: Row, right: Row) -> Row:
        out = dict(left)
        for name, value in right.items():
            if name in out and name != "created_at":
                out[f"{self._right_prefix}{name}"] = value
            elif name == "created_at":
                out["created_at"] = max(
                    out.get("created_at", 0.0), value or 0.0
                )
            else:
                out[name] = value
        self._ctx.stats.rows_emitted += 1
        return out


def _evict(table: dict[Any, list[Row]], horizon: float) -> None:
    """Drop buffered rows older than ``horizon`` from a join hash table."""
    dead_keys = []
    for key, rows in table.items():
        rows[:] = [r for r in rows if r.get("created_at", 0.0) >= horizon]
        if not rows:
            dead_keys.append(key)
    for key in dead_keys:
        del table[key]


class LookupJoinOperator:
    """Stream-table (dimension) join.

    The right side is a finite table without timestamps — a lookup
    dimension such as team → home city. Its rows are drained into a hash
    table once, on first pull; every stream row then joins against all
    matching table rows. Unmatched stream rows are dropped (inner-join
    semantics); pass ``left_outer=True`` to keep them with NULL-extended
    table columns.
    """

    def __init__(
        self,
        stream: Iterable[Row],
        table_rows: Iterable[Row],
        stream_key: Evaluator,
        table_key: Evaluator,
        table_schema: tuple[str, ...],
        ctx: EvalContext,
        right_prefix: str = "r_",
        left_outer: bool = False,
    ) -> None:
        self._stream = stream
        self._table_rows = table_rows
        self._stream_key = stream_key
        self._table_key = table_key
        self._table_schema = table_schema
        self._ctx = ctx
        self._right_prefix = right_prefix
        self._left_outer = left_outer

    def __iter__(self) -> Iterator[Row]:
        table: dict[Any, list[Row]] = {}
        for row in self._table_rows:
            key = self._table_key(row, self._ctx)
            if key is not None:
                table.setdefault(key, []).append(row)
        null_extension = {name: None for name in self._table_schema}
        for row in self._stream:
            key = self._stream_key(row, self._ctx)
            matches = table.get(key, ()) if key is not None else ()
            if matches:
                for match in matches:
                    yield self._merge(row, match)
            elif self._left_outer:
                yield self._merge(row, null_extension)

    def _merge(self, left: Row, right: Row) -> Row:
        out = dict(left)
        for name, value in right.items():
            if name == "created_at":
                continue
            if name in out:
                out[f"{self._right_prefix}{name}"] = value
            else:
                out[name] = value
        self._ctx.stats.rows_emitted += 1
        return out


class LimitOperator:
    """Stops the pipeline after ``limit`` rows."""

    def __init__(self, child: Iterable[Row], limit: int) -> None:
        self._child = child
        self._limit = limit

    def __iter__(self) -> Iterator[Row]:
        return itertools.islice(iter(self._child), self._limit)


class IntoOperator:
    """Tees result rows into a storage table while passing them through."""

    def __init__(self, child: Iterable[Row], sink: Any) -> None:
        self._child = child
        self._sink = sink

    def __iter__(self) -> Iterator[Row]:
        for row in self._child:
            self._sink.append(row)
            yield row
