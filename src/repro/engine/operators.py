"""Streaming physical operators (batch-at-a-time).

Every operator consumes and produces :class:`~repro.engine.types.RowBatch`
streams pulled by the executor. The pipeline for a typical TweeQL query
looks like::

    Scan → Filter (local predicates) → Project            (scalar queries)
    Scan → Filter → WindowedAggregate [→ Having/Order/Limit]  (aggregates)
    Scan + Scan → WindowedJoin → …                        (two-stream joins)

The scan is the batcher: it slices the source into ``batch_size``-row
batches and the predicate/projection loops then run per batch, amortizing
interpreter and call overhead across rows. Batch size never changes
results — each operator processes the rows of a batch in stream order and
emits its output in the same order the row-at-a-time pipeline would have.

Stream time advances with the tweets the scan yields; windowed operators
close windows when stream time passes their end, so results are emitted as
soon as the data allows — there is no wall-clock anywhere. Every producer
ends its output with exactly one ``last=True`` batch (possibly empty), the
end-of-stream punctuation downstream operators flush on.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator
from itertools import islice
from typing import Any

from repro.engine.expressions import (
    Broadcast,
    Evaluator,
    VectorEvaluator,
    expand_column,
)
from repro.engine.types import (
    DEFAULT_BATCH_SIZE,
    MISSING,
    Batch,
    ColumnBatch,
    EvalContext,
    Row,
    RowBatch,
    iter_rows,
)
from repro.sql.ast import WindowSpec
from repro.engine.windows import windows_containing

#: What operators consume and produce. Either batch flavor flows through
#: every operator: columnar stages test ``isinstance(batch, ColumnBatch)``
#: and row-oriented stages read the ``rows`` bridge, so mixed pipelines
#: (e.g. a RowBatch-producing join feeding a columnar filter) stay correct.
Batches = Iterable[Batch]


def rebatch(rows: Iterable[Row], batch_size: int) -> Iterator[RowBatch]:
    """Re-chunk a row stream into batches (join / merge output adapter)."""
    pending: list[Row] = []
    seq = 0
    for row in rows:
        pending.append(row)
        if len(pending) >= batch_size:
            yield RowBatch(pending, seq=seq)
            seq += 1
            pending = []
    yield RowBatch(pending, seq=seq, last=True)


class ScanOperator:
    """Source adapter: slices rows into batches, advancing stream time.

    ``source`` yields rows that must contain a ``created_at`` timestamp (the
    ``twitter`` source guarantees it). Stream time advances over the whole
    batch before it is released — the batch's rows are all "seen" by the
    time downstream operators evaluate them, exactly as if each row had
    been pulled individually.
    """

    def __init__(
        self,
        source: Iterable[Row],
        ctx: EvalContext,
        batch_size: int = DEFAULT_BATCH_SIZE,
        columnar: bool = False,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        self._source = source
        self._ctx = ctx
        self._batch_size = batch_size
        self._columnar = columnar

    def __iter__(self) -> Iterator[Batch]:
        ctx = self._ctx
        stats = ctx.stats
        size = self._batch_size
        columnar = self._columnar
        source = iter(self._source)
        seq = 0
        while True:
            rows = list(islice(source, size))
            last = len(rows) < size
            if rows:
                stats.rows_scanned += len(rows)
                stats.batches += 1
                stream_time = ctx.stream_time
                for row in rows:
                    timestamp = row.get("created_at")
                    if timestamp is not None and timestamp > stream_time:
                        stream_time = timestamp
                ctx.stream_time = stream_time
            if columnar:
                yield ColumnBatch.from_rows(rows, seq=seq, last=last)
            else:
                yield RowBatch(rows, seq=seq, last=last)
            if last:
                return
            seq += 1


class FilterOperator:
    """Applies one compiled predicate; keeps rows where it is exactly TRUE
    (NULL, like FALSE, drops the row — SQL WHERE semantics).

    When the planner could vectorize the predicate and the input batch is
    columnar, the whole verdict column is computed in one call and the
    batch compressed with ``take``; otherwise the scalar closure runs per
    row. Both paths keep identical counters and emit identical rows.
    """

    def __init__(
        self,
        child: Batches,
        predicate: Evaluator,
        ctx: EvalContext,
        vector_predicate: VectorEvaluator | None = None,
    ) -> None:
        self._child = child
        self._predicate = predicate
        self._ctx = ctx
        self._vector_predicate = vector_predicate

    def __iter__(self) -> Iterator[Batch]:
        ctx = self._ctx
        stats = ctx.stats
        predicate = self._predicate
        vector = self._vector_predicate
        for batch in self._child:
            if isinstance(batch, ColumnBatch):
                has_punct = batch.has_field("__punct__")
                if vector is not None and not has_punct:
                    n = batch.length
                    verdicts = vector(batch, ctx)
                    if isinstance(verdicts, Broadcast):
                        value = verdicts.value
                        out = (
                            batch
                            if value is not None and value
                            else batch.take([])
                        )
                    else:
                        out = batch.compress(verdicts)
                    stats.predicate_evaluations += n
                    stats.rows_after_filter += out.length
                else:
                    keep = []
                    evaluated = passed = 0
                    for i, row in enumerate(batch.rows):
                        if has_punct and "__punct__" in row:
                            keep.append(i)
                            continue
                        evaluated += 1
                        verdict = predicate(row, ctx)
                        if verdict is not None and verdict:
                            passed += 1
                            keep.append(i)
                    stats.predicate_evaluations += evaluated
                    stats.rows_after_filter += passed
                    out = batch.take(keep)
                if out.length or batch.last:
                    yield out
                if batch.last:
                    return
                continue
            kept: list[Row] = []
            append = kept.append
            evaluated = passed = 0
            for row in batch.rows:
                if "__punct__" in row:
                    # Sharded-execution punctuation carries time, not data;
                    # it passes every filter without touching the counters.
                    append(row)
                    continue
                evaluated += 1
                verdict = predicate(row, ctx)
                if verdict is not None and verdict:
                    passed += 1
                    append(row)
            stats.predicate_evaluations += evaluated
            stats.rows_after_filter += passed
            if kept or batch.last:
                yield RowBatch(kept, seq=batch.seq, last=batch.last)
            if batch.last:
                return


class ProjectOperator:
    """Evaluates the select list for non-aggregated queries.

    ``items`` maps output column name → evaluator. ``passthrough_time``
    keeps ``created_at`` on the output row (TwitInfo consumers need it) when
    the projection didn't select it explicitly.
    """

    def __init__(
        self,
        child: Batches,
        items: list[tuple[str, Evaluator]],
        ctx: EvalContext,
        passthrough_time: bool = True,
        vector_items: list[VectorEvaluator | None] | None = None,
        fused: Callable[[list[Row]], list[Row]] | None = None,
    ) -> None:
        self._child = child
        self._items = items
        self._ctx = ctx
        self._passthrough_time = passthrough_time
        self._vector_items = vector_items
        self._fused = fused

    def __iter__(self) -> Iterator[Batch]:
        ctx = self._ctx
        stats = ctx.stats
        items = self._items
        passthrough_time = self._passthrough_time
        vector_items = self._vector_items
        fused = self._fused
        for batch in self._child:
            if isinstance(batch, ColumnBatch):
                n = batch.length
                if fused is not None:
                    # All-field select list: one generated dict display per
                    # row, then re-attach homogeneous special columns.
                    specials: list[tuple[str, list]] = []
                    dense = True
                    for special in ("__tweet__", "__seq__"):
                        col = batch.field(special)
                        if col is not None:
                            if MISSING in col:
                                dense = False  # ragged specials: general path
                                break
                            specials.append((special, col))
                    if dense:
                        projected = fused(batch.rows)
                        for special, col in specials:
                            for out, value in zip(projected, col):
                                out[special] = value
                        stats.rows_emitted += n
                        if n or batch.last:
                            yield ColumnBatch.from_rows(
                                projected, seq=batch.seq, last=batch.last
                            )
                        if batch.last:
                            return
                        continue
                out_cols: dict[str, list[Any]] = {}
                rows: list[Row] | None = None
                for index, (name, evaluate) in enumerate(items):
                    vec = vector_items[index] if vector_items else None
                    if vec is not None:
                        out_cols[name] = expand_column(vec(batch, ctx), n)
                    else:
                        if rows is None:
                            rows = batch.rows
                        out_cols[name] = [evaluate(row, ctx) for row in rows]
                if passthrough_time and "created_at" not in out_cols:
                    out_cols["created_at"] = batch.values("created_at")
                for special in ("__tweet__", "__seq__"):
                    col = batch.field(special)
                    if col is not None:
                        out_cols[special] = col
                stats.rows_emitted += n
                if n or batch.last:
                    yield ColumnBatch(
                        out_cols, n, seq=batch.seq, last=batch.last
                    )
                if batch.last:
                    return
                continue
            projected: list[Row] = []
            append = projected.append
            for row in batch.rows:
                out: Row = {}
                for name, evaluate in items:
                    out[name] = evaluate(row, ctx)
                if passthrough_time and "created_at" not in out:
                    out["created_at"] = row.get("created_at")
                if "__tweet__" in row:
                    out["__tweet__"] = row["__tweet__"]
                if "__seq__" in row:
                    out["__seq__"] = row["__seq__"]
                append(out)
            stats.rows_emitted += len(projected)
            if projected or batch.last:
                yield RowBatch(projected, seq=batch.seq, last=batch.last)
            if batch.last:
                return


class _GroupState:
    """Accumulators and a representative row for one (window, group)."""

    __slots__ = ("accumulators", "representative", "count")

    def __init__(self, accumulators: list[Any], representative: Row) -> None:
        self.accumulators = accumulators
        self.representative = representative
        self.count = 0


class WindowedAggregateOperator:
    """GROUP BY + aggregates over tumbling/sliding time windows.

    Args:
        child: input batch stream (rows time-ordered).
        window: the window specification.
        group_evals: compiled grouping-key expressions ([] → one global
            group per window).
        agg_factories: per aggregate call site, a zero-arg factory returning
            a fresh accumulator, plus the compiled argument evaluator (None
            for COUNT(*)) and whether NULLs are skipped.
        output_items: output column name → post-aggregation evaluator. The
            post-evaluator runs over an environment row that contains the
            representative input row's fields plus ``__agg<i>`` results.
        having: optional post-aggregation predicate.
        order_by: optional [(evaluator, descending)] applied per window.
        limit: optional per-window row cap (after ordering).

    Output rows carry ``window_start`` and ``window_end`` columns, plus
    ``created_at`` set to the window end (emission time). Windows closed by
    a batch's rows are emitted with that batch, in exactly the order the
    row-at-a-time pipeline interleaved them.
    """

    def __init__(
        self,
        child: Batches,
        window: WindowSpec,
        group_evals: list[Evaluator],
        agg_factories: list[tuple[Any, Evaluator | None, bool]],
        output_items: list[tuple[str, Evaluator]],
        ctx: EvalContext,
        having: Evaluator | None = None,
        order_by: list[tuple[Evaluator, bool]] | None = None,
        limit: int | None = None,
        vector_group_evals: list[VectorEvaluator | None] | None = None,
        vector_agg_args: list[VectorEvaluator | None] | None = None,
    ) -> None:
        self._child = child
        self._window = window
        self._group_evals = group_evals
        self._agg_factories = agg_factories
        self._output_items = output_items
        self._ctx = ctx
        self._having = having
        self._order_by = order_by or []
        self._limit = limit
        # Whole-column precompute is sound only when *every* grouping key
        # is vectorizable (pure — a stateful key must be re-evaluated per
        # (row, window) exactly as the scalar loop does).
        self._vector_group_evals = (
            vector_group_evals
            if vector_group_evals is not None
            and all(v is not None for v in vector_group_evals)
            else None
        )
        self._vector_agg_args = vector_agg_args
        # (window_start, window_end) → {group_key: _GroupState}
        self._open: dict[tuple[float, float], dict[tuple, _GroupState]] = {}

    def __iter__(self) -> Iterator[Batch]:
        ctx = self._ctx
        window = self._window
        group_evals = self._group_evals
        agg_factories = self._agg_factories
        open_windows = self._open
        vector_groups = self._vector_group_evals
        vector_args = self._vector_agg_args
        tail_seq = 0
        for batch in self._child:
            tail_seq = batch.seq + 1
            emitted: list[Row] = []
            rows = batch.rows
            key_col: list[tuple] | None = None
            arg_cols: list[list[Any] | None] | None = None
            if (
                isinstance(batch, ColumnBatch)
                and not batch.has_field("__punct__")
            ):
                n = batch.length
                if vector_groups is not None:
                    if vector_groups:
                        key_col = list(
                            zip(
                                *(
                                    expand_column(vec(batch, ctx), n)
                                    for vec in vector_groups
                                )
                            )
                        )
                    else:
                        key_col = [()] * n
                if vector_args is not None:
                    arg_cols = [
                        expand_column(vec(batch, ctx), n)
                        if vec is not None
                        else None
                        for vec in vector_args
                    ]
            for i, row in enumerate(rows):
                timestamp = row.get("created_at", ctx.stream_time)
                # Close every window that ended at or before this row's time.
                self._close_due(timestamp, emitted)
                for bounds in windows_containing(timestamp, window):
                    groups = open_windows.setdefault(bounds, {})
                    if key_col is not None:
                        key = key_col[i]
                    else:
                        key = tuple(
                            evaluate(row, ctx) for evaluate in group_evals
                        )
                    state = groups.get(key)
                    if state is None:
                        state = _GroupState(
                            [factory() for factory, _arg, _skip in agg_factories],
                            representative=row,
                        )
                        groups[key] = state
                    state.count += 1
                    for site, (accumulator, (_factory, arg_eval, skip_nulls)) in enumerate(
                        zip(state.accumulators, agg_factories)
                    ):
                        if arg_eval is None:
                            accumulator.add(1)
                            continue
                        if arg_cols is not None and arg_cols[site] is not None:
                            value = arg_cols[site][i]
                        else:
                            value = arg_eval(row, ctx)
                        if value is None and skip_nulls:
                            continue
                        accumulator.add(value)
            if emitted:
                yield RowBatch(emitted, seq=batch.seq)
            if batch.last:
                break
        # End of stream: flush everything still open. The tail batch must
        # keep seq strictly increasing past the last input batch.
        tail: list[Row] = []
        self._close_due(float("inf"), tail)
        yield RowBatch(tail, seq=tail_seq, last=True)

    def _close_due(self, timestamp: float, emitted: list[Row]) -> None:
        due = sorted(
            bounds for bounds in self._open if bounds[1] <= timestamp
        )
        for bounds in due:
            groups = self._open.pop(bounds)
            self._ctx.stats.windows_closed += 1
            self._emit_window(bounds, groups, emitted)

    def _emit_window(
        self,
        bounds: tuple[float, float],
        groups: dict[tuple, _GroupState],
        emitted: list[Row],
    ) -> None:
        start, end = bounds
        window_rows: list[Row] = []
        for state in groups.values():
            env = dict(state.representative)
            for index, accumulator in enumerate(state.accumulators):
                env[f"__agg{index}"] = accumulator.result()
            if self._having is not None:
                verdict = self._having(env, self._ctx)
                if verdict is None or not verdict:
                    continue
            out: Row = {}
            for name, evaluate in self._output_items:
                out[name] = evaluate(env, self._ctx)
            out["window_start"] = start
            out["window_end"] = end
            out["created_at"] = end
            if "__seq__" in env:
                # Sharded execution: the merge orders same-window groups by
                # the sequence of the group's first (representative) row.
                out["__seq__"] = env["__seq__"]
            window_rows.append(out)
            self._ctx.stats.groups_emitted += 1
        for evaluate, descending in reversed(self._order_by):
            window_rows.sort(
                key=lambda r, e=evaluate: _sort_key(e(r, self._ctx)),
                reverse=descending,
            )
        if self._limit is not None:
            window_rows = window_rows[: self._limit]
        self._ctx.stats.rows_emitted += len(window_rows)
        emitted.extend(window_rows)


def _sort_key(value: Any) -> tuple[int, Any]:
    """NULLs sort first; mixed types won't raise."""
    if value is None:
        return (0, 0)
    if isinstance(value, (int, float, bool)):
        return (1, value)
    return (2, str(value))


class CountWindowedAggregateOperator:
    """GROUP BY + aggregates over tweet-count windows (``WINDOW n TWEETS``).

    Windows are defined over the input row *ordinal*: with size N and slide
    M, window k covers rows [k·M, k·M + N). The ordinal is global across
    batches. Emitted rows carry ``window_start``/``window_end`` as the
    timestamps of the window's first and last rows (so downstream time
    filtering still works) plus ``window_rows`` with the exact row count.

    This is the "window size on tweet count" alternative §2 weighs (and
    finds wanting for uneven groups — see benchmark E4).
    """

    def __init__(
        self,
        child: Batches,
        window: WindowSpec,
        group_evals: list[Evaluator],
        agg_factories: list[tuple[Any, Evaluator | None, bool]],
        output_items: list[tuple[str, Evaluator]],
        ctx: EvalContext,
        having: Evaluator | None = None,
        order_by: list[tuple[Evaluator, bool]] | None = None,
        limit: int | None = None,
    ) -> None:
        assert window.count_based
        self._child = child
        self._size = int(window.size_count)
        self._slide = int(window.slide)
        self._group_evals = group_evals
        self._agg_factories = agg_factories
        self._output_items = output_items
        self._ctx = ctx
        self._having = having
        self._order_by = order_by or []
        self._limit = limit

    def __iter__(self) -> Iterator[RowBatch]:
        # start_ordinal → (groups, first_ts, last_ts, rows_in_window)
        open_windows: dict[int, list] = {}
        index = -1
        tail_seq = 0
        for batch in self._child:
            tail_seq = batch.seq + 1
            emitted: list[Row] = []
            for row in batch.rows:
                index += 1
                due = sorted(
                    s for s in open_windows if s + self._size <= index
                )
                for start in due:
                    self._emit(open_windows.pop(start), emitted)
                latest = (index // self._slide) * self._slide
                start = latest
                while start > index - self._size and start >= 0:
                    state = open_windows.get(start)
                    timestamp = row.get("created_at", self._ctx.stream_time)
                    if state is None:
                        state = [{}, timestamp, timestamp, 0]
                        open_windows[start] = state
                    self._accumulate(state, row, timestamp)
                    start -= self._slide
                # Windows that started before row 0 don't exist; also handle
                # slide > size (sampling windows): rows between windows are
                # simply not accumulated anywhere.
            if emitted:
                yield RowBatch(emitted, seq=batch.seq)
            if batch.last:
                break
        # Tail seq stays strictly above the last input batch's.
        tail: list[Row] = []
        for start in sorted(open_windows):
            self._emit(open_windows[start], tail)
        yield RowBatch(tail, seq=tail_seq, last=True)

    def _accumulate(self, state: list, row: Row, timestamp: float) -> None:
        groups, _first, _last, _n = state
        state[2] = max(state[2], timestamp)
        state[3] += 1
        key = tuple(e(row, self._ctx) for e in self._group_evals)
        group = groups.get(key)
        if group is None:
            group = _GroupState(
                [factory() for factory, _a, _s in self._agg_factories],
                representative=row,
            )
            groups[key] = group
        group.count += 1
        for accumulator, (_factory, arg_eval, skip_nulls) in zip(
            group.accumulators, self._agg_factories
        ):
            if arg_eval is None:
                accumulator.add(1)
                continue
            value = arg_eval(row, self._ctx)
            if value is None and skip_nulls:
                continue
            accumulator.add(value)

    def _emit(self, state: list, emitted: list[Row]) -> None:
        groups, first_ts, last_ts, rows_in_window = state
        self._ctx.stats.windows_closed += 1
        window_rows: list[Row] = []
        for group in groups.values():
            env = dict(group.representative)
            for agg_index, accumulator in enumerate(group.accumulators):
                env[f"__agg{agg_index}"] = accumulator.result()
            if self._having is not None:
                verdict = self._having(env, self._ctx)
                if verdict is None or not verdict:
                    continue
            out: Row = {}
            for name, evaluate in self._output_items:
                out[name] = evaluate(env, self._ctx)
            out["window_start"] = first_ts
            out["window_end"] = last_ts
            out["window_rows"] = rows_in_window
            out["created_at"] = last_ts
            window_rows.append(out)
            self._ctx.stats.groups_emitted += 1
        for evaluate, descending in reversed(self._order_by):
            window_rows.sort(
                key=lambda r, e=evaluate: _sort_key(e(r, self._ctx)),
                reverse=descending,
            )
        if self._limit is not None:
            window_rows = window_rows[: self._limit]
        self._ctx.stats.rows_emitted += len(window_rows)
        emitted.extend(window_rows)


class WindowedJoinOperator:
    """Symmetric hash join between two time-ordered streams.

    Rows join when their timestamps lie within ``window.size_seconds`` of
    each other and their join keys are equal. The operator merges the two
    inputs by timestamp (pulling the side that is behind), keeps per-side
    hash tables keyed by join key, and evicts entries older than the window
    — the standard streaming band join.

    The join itself is row-at-a-time (the two-sided merge needs per-row
    control over which input advances); inputs are flattened and the output
    re-batched.

    Output rows are the left row's fields plus the right row's, with right
    fields renamed ``<prefix><name>`` on collision.
    """

    def __init__(
        self,
        left: Batches,
        right: Iterable[Row],
        left_key: Evaluator,
        right_key: Evaluator,
        window: WindowSpec,
        ctx: EvalContext,
        right_prefix: str = "r_",
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> None:
        self._left = left
        self._right = right
        self._left_key = left_key
        self._right_key = right_key
        self._window = window
        self._ctx = ctx
        self._right_prefix = right_prefix
        self._batch_size = batch_size

    def __iter__(self) -> Iterator[RowBatch]:
        return rebatch(self._join_rows(), self._batch_size)

    def _join_rows(self) -> Iterator[Row]:
        size = self._window.size_seconds
        left_table: dict[Any, list[Row]] = {}
        right_table: dict[Any, list[Row]] = {}
        left = iter_rows(self._left)
        right = iter(self._right)
        left_row = next(left, None)
        right_row = next(right, None)
        while left_row is not None or right_row is not None:
            take_left = right_row is None or (
                left_row is not None
                and left_row.get("created_at", 0.0)
                <= right_row.get("created_at", 0.0)
            )
            if take_left:
                row, advance = left_row, "left"
            else:
                row, advance = right_row, "right"
            assert row is not None
            now = row.get("created_at", 0.0)
            _evict(left_table, now - size)
            _evict(right_table, now - size)
            if advance == "left":
                key = self._left_key(row, self._ctx)
                if key is not None:
                    for match in right_table.get(key, ()):
                        yield self._merge(row, match)
                    left_table.setdefault(key, []).append(row)
                left_row = next(left, None)
            else:
                key = self._right_key(row, self._ctx)
                if key is not None:
                    for match in left_table.get(key, ()):
                        yield self._merge(match, row)
                    right_table.setdefault(key, []).append(row)
                right_row = next(right, None)

    def _merge(self, left: Row, right: Row) -> Row:
        out = dict(left)
        for name, value in right.items():
            if name in out and name != "created_at":
                out[f"{self._right_prefix}{name}"] = value
            elif name == "created_at":
                out["created_at"] = max(
                    out.get("created_at", 0.0), value or 0.0
                )
            else:
                out[name] = value
        self._ctx.stats.rows_emitted += 1
        return out


def _evict(table: dict[Any, list[Row]], horizon: float) -> None:
    """Drop buffered rows older than ``horizon`` from a join hash table."""
    dead_keys = []
    for key, rows in table.items():
        rows[:] = [r for r in rows if r.get("created_at", 0.0) >= horizon]
        if not rows:
            dead_keys.append(key)
    for key in dead_keys:
        del table[key]


class LookupJoinOperator:
    """Stream-table (dimension) join.

    The right side is a finite table without timestamps — a lookup
    dimension such as team → home city. Its rows are drained into a hash
    table once, on first pull; every stream row then joins against all
    matching table rows. Unmatched stream rows are dropped (inner-join
    semantics); pass ``left_outer=True`` to keep them with NULL-extended
    table columns.
    """

    def __init__(
        self,
        stream: Batches,
        table_rows: Iterable[Row],
        stream_key: Evaluator,
        table_key: Evaluator,
        table_schema: tuple[str, ...],
        ctx: EvalContext,
        right_prefix: str = "r_",
        left_outer: bool = False,
    ) -> None:
        self._stream = stream
        self._table_rows = table_rows
        self._stream_key = stream_key
        self._table_key = table_key
        self._table_schema = table_schema
        self._ctx = ctx
        self._right_prefix = right_prefix
        self._left_outer = left_outer

    def __iter__(self) -> Iterator[RowBatch]:
        table: dict[Any, list[Row]] = {}
        for row in self._table_rows:
            key = self._table_key(row, self._ctx)
            if key is not None:
                table.setdefault(key, []).append(row)
        null_extension = {name: None for name in self._table_schema}
        for batch in self._stream:
            joined: list[Row] = []
            for row in batch.rows:
                key = self._stream_key(row, self._ctx)
                matches = table.get(key, ()) if key is not None else ()
                if matches:
                    for match in matches:
                        joined.append(self._merge(row, match))
                elif self._left_outer:
                    joined.append(self._merge(row, null_extension))
            if joined or batch.last:
                yield RowBatch(joined, seq=batch.seq, last=batch.last)
            if batch.last:
                return

    def _merge(self, left: Row, right: Row) -> Row:
        out = dict(left)
        for name, value in right.items():
            if name == "created_at":
                continue
            if name in out:
                out[f"{self._right_prefix}{name}"] = value
            else:
                out[name] = value
        self._ctx.stats.rows_emitted += 1
        return out


class LimitOperator:
    """Stops the pipeline after ``limit`` rows, truncating mid-batch."""

    def __init__(self, child: Batches, limit: int) -> None:
        self._child = child
        self._limit = limit

    def __iter__(self) -> Iterator[Batch]:
        remaining = self._limit
        if remaining <= 0:
            yield RowBatch([], last=True)
            return
        tail_seq = 0
        for batch in self._child:
            tail_seq = batch.seq + 1
            size = len(batch)
            if size >= remaining:
                # head() truncates either batch flavor and re-punctuates.
                yield batch.head(remaining)
                return
            remaining -= size
            yield batch
            if batch.last:
                return
        # Child ended without a last batch (defensive): punctuate anyway,
        # with seq strictly above everything already yielded.
        yield RowBatch([], seq=tail_seq, last=True)


class IntoOperator:
    """Tees result rows into a storage table while passing them through."""

    def __init__(self, child: Batches, sink: Any) -> None:
        self._child = child
        self._sink = sink

    def __iter__(self) -> Iterator[RowBatch]:
        append = self._sink.append
        for batch in self._child:
            for row in batch.rows:
                append(row)
            yield batch
            if batch.last:
                return
