"""Aggregate functions.

Each aggregate is a small accumulator class with ``add(value)`` and
``result()``. The windowed group-by operator instantiates one accumulator
per (group, aggregate call) pair per window; the confidence-triggered
operator additionally reads ``confidence_interval()`` where available.
"""

from __future__ import annotations

import math
from typing import Any

from repro.errors import PlanError


class Aggregate:
    """Base accumulator; subclasses override add/result."""

    #: Whether NULL inputs are skipped (SQL semantics: they are, except
    #: COUNT(*)).
    skip_nulls = True

    def add(self, value: Any) -> None:
        raise NotImplementedError

    def result(self) -> Any:
        raise NotImplementedError


class CountAggregate(Aggregate):
    """COUNT(expr) — non-null inputs; COUNT(*) counts rows (Star argument)."""

    def __init__(self, count_rows: bool = False) -> None:
        self._count = 0
        self.skip_nulls = not count_rows

    def add(self, value: Any) -> None:
        self._count += 1

    def result(self) -> int:
        return self._count


class CountDistinctAggregate(Aggregate):
    """COUNT(DISTINCT expr)."""

    def __init__(self) -> None:
        self._seen: set[Any] = set()

    def add(self, value: Any) -> None:
        self._seen.add(value)

    def result(self) -> int:
        return len(self._seen)


class SumAggregate(Aggregate):
    def __init__(self) -> None:
        self._sum = 0.0
        self._any = False

    def add(self, value: Any) -> None:
        self._sum += float(value)
        self._any = True

    def result(self) -> float | None:
        return self._sum if self._any else None


class MinAggregate(Aggregate):
    def __init__(self) -> None:
        self._min: Any = None

    def add(self, value: Any) -> None:
        if self._min is None or value < self._min:
            self._min = value

    def result(self) -> Any:
        return self._min


class MaxAggregate(Aggregate):
    def __init__(self) -> None:
        self._max: Any = None

    def add(self, value: Any) -> None:
        if self._max is None or value > self._max:
            self._max = value

    def result(self) -> Any:
        return self._max


class AvgAggregate(Aggregate):
    """Running mean/variance via Welford; exposes a confidence interval,
    which is what the CONTROL-style emission strategy monitors."""

    def __init__(self) -> None:
        self.n = 0
        self._mean = 0.0
        self._m2 = 0.0

    def add(self, value: Any) -> None:
        self.n += 1
        x = float(value)
        delta = x - self._mean
        self._mean += delta / self.n
        self._m2 += delta * (x - self._mean)

    def result(self) -> float | None:
        return self._mean if self.n else None

    @property
    def variance(self) -> float:
        """Sample variance (0 with fewer than 2 observations)."""
        return self._m2 / (self.n - 1) if self.n > 1 else 0.0

    def confidence_interval(self, z: float = 1.96) -> float | None:
        """Half-width of the CI of the mean at the given z (None if n < 2)."""
        if self.n < 2:
            return None
        return z * math.sqrt(self.variance / self.n)


class StddevAggregate(AvgAggregate):
    def result(self) -> float | None:  # type: ignore[override]
        return math.sqrt(self.variance) if self.n > 1 else None


class FirstAggregate(Aggregate):
    def __init__(self) -> None:
        self._value: Any = None
        self._set = False

    def add(self, value: Any) -> None:
        if not self._set:
            self._value = value
            self._set = True

    def result(self) -> Any:
        return self._value


class LastAggregate(Aggregate):
    def __init__(self) -> None:
        self._value: Any = None

    def add(self, value: Any) -> None:
        self._value = value

    def result(self) -> Any:
        return self._value


#: Names the planner recognizes as aggregates.
AGGREGATE_NAMES = frozenset(
    {"count", "sum", "avg", "min", "max", "stddev", "first", "last"}
)


def make_aggregate(name: str, distinct: bool, count_rows: bool) -> Aggregate:
    """Instantiate an accumulator for one aggregate call site.

    Args:
        name: lowercase aggregate name.
        distinct: True for ``agg(DISTINCT expr)`` (only COUNT supports it).
        count_rows: True for ``COUNT(*)``.

    Raises:
        PlanError: unknown aggregate or unsupported DISTINCT.
    """
    key = name.lower()
    if key not in AGGREGATE_NAMES:
        raise PlanError(f"unknown aggregate function: {name!r}")
    if distinct:
        if key != "count":
            raise PlanError(f"DISTINCT is only supported with COUNT, not {name}")
        return CountDistinctAggregate()
    if key == "count":
        return CountAggregate(count_rows=count_rows)
    return {
        "sum": SumAggregate,
        "avg": AvgAggregate,
        "min": MinAggregate,
        "max": MaxAggregate,
        "stddev": StddevAggregate,
        "first": FirstAggregate,
        "last": LastAggregate,
    }[key]()
