"""TQLSAN — the engine's runtime invariant sanitizer and lock-order detector.

The engine's correctness rests on a small set of protocol invariants that
are easy to state and easy to break silently: batch ``seq`` stamps are
strictly increasing per producer, every producer punctuates with exactly
one ``last=True`` batch and nothing after it, ColumnBatches stay coherent
(column lengths agree, the ``MISSING`` sentinel never leaks into row
dicts, negative-probe caches never go stale), data handed across the
exchange is never mutated by the producing side afterwards, stats
counters only grow, and the trace probes reconcile with the engine's own
counters at close. PRs 1–7 pinned these indirectly through equivalence
sweeps; this module checks them *directly*, TSAN-style, at every operator
boundary.

Three cooperating pieces:

- :class:`SanitizeOperator` — a pipeline wrapper the planner installs at
  every stage boundary when ``EngineConfig.sanitize`` (or ``TWEEQL_SAN=1``
  in the environment, or ``tweeql --sanitize``) is on. Mirrors the
  ``TraceOperator`` pattern: when off, the planner adds **zero** wrappers
  and the hot path is byte-identical to an unsanitized build.
- :class:`LockRegistry` + :func:`registered_lock` — every lock the engine
  creates goes through :func:`registered_lock`, which returns a
  :class:`TrackedLock` recording per-thread acquisition stacks into a
  happens-before graph. Cycles in that graph are potential deadlocks
  (``TQL910``); the engine-source lint (:mod:`repro.sql.analysis.engine_lint`)
  flags any bare ``threading.Lock()`` that bypasses registration.
- :class:`Sanitizer` — the per-plan checking context: it owns the
  exchange :class:`HandoffLedger` (freeze/fingerprint on enqueue,
  verify on dequeue), runs the mandatory ``reconcile()`` cross-check at
  query close, and turns violations into structured
  :class:`~repro.errors.SanitizerError` records.

Violation codes (catalogued in ``docs/ANALYSIS.md`` and
``docs/SANITIZER.md``):

======= ====================================================================
TQL901  batch ``seq`` regression (not strictly increasing per producer)
TQL902  punctuation protocol: batch after ``last=True`` / stream ended
        without punctuation
TQL903  ColumnBatch incoherence (column/row length mismatch, stale
        negative-probe cache)
TQL904  ``MISSING`` sentinel leaked into a materialized row dict
TQL905  batch payload mutated after exchange handoff (fingerprint mismatch)
TQL906  stats counter regression (a ``QueryStats`` counter decreased)
TQL907  trace/stats reconciliation failed at query close
TQL910  lock-order cycle (potential deadlock) in the acquisition graph
TQL911  batch ownership violation (one pipeline stage driven from two
        threads)
======= ====================================================================

Everything here is deterministic: violation messages sort lock names and
carry stable operator/lane labels, so a sanitized CI lane can golden-match
its output.
"""

from __future__ import annotations

import os
import threading
import zlib
from collections.abc import Iterable, Iterator
from typing import Any

from repro.engine.types import Batch, ColumnBatch, MISSING, QueryStats, Row
from repro.errors import SanitizerError

__all__ = [
    "HandoffLedger",
    "LockRegistry",
    "SanitizeOperator",
    "Sanitizer",
    "TrackedLock",
    "enable_lock_tracking",
    "lock_registry",
    "lock_tracking",
    "registered_lock",
    "sanitize_env_enabled",
]


def sanitize_env_enabled() -> bool:
    """True when ``TWEEQL_SAN`` asks for sanitized execution."""
    return os.environ.get("TWEEQL_SAN", "").strip().lower() in (
        "1", "true", "on", "yes",
    )


# ---------------------------------------------------------------------------
# Lock registry: instrumented locks + happens-before acquisition graph
# ---------------------------------------------------------------------------


class _HeldLocks(threading.local):
    """Per-thread stack of currently-held tracked locks."""

    def __init__(self) -> None:
        self.stack: list[TrackedLock] = []
        self.depth: dict[int, int] = {}


class LockRegistry:
    """Happens-before graph over named lock acquisitions.

    Edges are recorded by *name*, not instance — two queries each taking
    ``sharded.services`` then ``sharded.error`` produce one edge — so the
    graph (and any cycle report) is deterministic across runs and across
    instances. A cycle ``A → B → A`` means two threads can take the same
    pair of locks in opposite orders: a potential deadlock, reported as
    ``TQL910``. Detection happens at edge-insertion time and is recorded
    rather than raised (raising inside an engine thread could deadlock the
    very teardown being diagnosed); :meth:`check` raises at query close.
    """

    def __init__(self) -> None:
        # Internal synchronization is deliberately a *raw* lock: the
        # registry cannot track itself, and the engine lint allowlists
        # this module for exactly that reason.
        self._mutex = threading.Lock()
        self._held = _HeldLocks()
        #: name -> set of names acquired while holding it.
        self._edges: dict[str, set[str]] = {}
        #: Deterministic violation records: (code, message) sorted-unique.
        self._violations: dict[tuple[str, str], None] = {}
        #: Names ever registered (for the how-to docs / debugging).
        self.names: dict[str, int] = {}

    # -- instrumentation callbacks (called by TrackedLock) ------------------

    def register(self, lock: "TrackedLock") -> None:
        with self._mutex:
            self.names[lock.name] = self.names.get(lock.name, 0) + 1

    def acquired(self, lock: "TrackedLock") -> None:
        held = self._held
        key = id(lock)
        depth = held.depth.get(key, 0)
        held.depth[key] = depth + 1
        if depth:
            return  # reentrant re-acquire adds no ordering information
        new_edges: list[tuple[str, str]] = []
        for outer in held.stack:
            if outer.name != lock.name:
                new_edges.append((outer.name, lock.name))
        held.stack.append(lock)
        if not new_edges:
            return
        with self._mutex:
            for src, dst in new_edges:
                targets = self._edges.setdefault(src, set())
                if dst in targets:
                    continue
                targets.add(dst)
                cycle = self._find_cycle(dst, src)
                if cycle is not None:
                    path = " -> ".join(cycle + [cycle[0]])
                    self._violations[(
                        "TQL910",
                        f"lock-order cycle (potential deadlock): {path}",
                    )] = None

    def released(self, lock: "TrackedLock") -> None:
        held = self._held
        key = id(lock)
        depth = held.depth.get(key, 0)
        if depth > 1:
            held.depth[key] = depth - 1
            return
        held.depth.pop(key, None)
        for index in range(len(held.stack) - 1, -1, -1):
            if held.stack[index] is lock:
                del held.stack[index]
                break

    def _find_cycle(self, start: str, goal: str) -> list[str] | None:
        """A path ``start → … → goal`` in the edge graph, if one exists.

        Called with the just-inserted edge ``goal → start`` already in the
        graph, so a returned path closes a cycle through it. Deterministic:
        neighbors are visited in sorted order.
        """
        stack = [(start, [start])]
        seen = {start}
        while stack:
            node, path = stack.pop()
            if node == goal:
                return path
            for neighbor in sorted(self._edges.get(node, ()), reverse=True):
                if neighbor not in seen:
                    seen.add(neighbor)
                    stack.append((neighbor, path + [neighbor]))
        return None

    # -- reporting -----------------------------------------------------------

    def report(self) -> list[tuple[str, str]]:
        """Recorded violations, deterministically ordered."""
        with self._mutex:
            return sorted(self._violations)

    def edges(self) -> list[tuple[str, str]]:
        """The acquisition graph as sorted (outer, inner) name pairs."""
        with self._mutex:
            return sorted(
                (src, dst)
                for src, targets in self._edges.items()
                for dst in targets
            )

    def check(self) -> None:
        """Raise ``TQL910`` for the first (deterministic) recorded cycle."""
        violations = self.report()
        if violations:
            code, message = violations[0]
            raise SanitizerError(
                message,
                code=code,
                hint="two code paths take these locks in opposite orders; "
                "pick one order and stick to it (see docs/SANITIZER.md)",
            )


class TrackedLock:
    """A ``Lock``/``RLock`` façade that reports acquisitions to the registry.

    Created by :func:`registered_lock`; behaves exactly like the wrapped
    primitive (context manager, ``acquire(blocking, timeout)``,
    ``locked()``). When no registry is active the per-operation cost is
    one module-global load and a ``None`` check.
    """

    __slots__ = ("_inner", "name")

    def __init__(self, inner: Any, name: str) -> None:
        self._inner = inner
        self.name = name

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            registry = _ACTIVE_REGISTRY
            if registry is not None:
                registry.acquired(self)
        return acquired

    def release(self) -> None:
        registry = _ACTIVE_REGISTRY
        if registry is not None:
            registry.released(self)
        self._inner.release()

    def locked(self) -> bool:
        return bool(self._inner.locked())

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: Any) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TrackedLock({self.name!r})"


#: The process-wide active registry; None keeps TrackedLock at its cheap
#: fast path. Installed by enable_lock_tracking() (idempotent) when a
#: sanitizing session plans its first query, or scoped via lock_tracking().
_ACTIVE_REGISTRY: LockRegistry | None = None


def lock_registry() -> LockRegistry | None:
    """The active registry, or None when lock tracking is off."""
    return _ACTIVE_REGISTRY


def enable_lock_tracking() -> LockRegistry:
    """Install (or return) the process-wide lock registry."""
    global _ACTIVE_REGISTRY
    if _ACTIVE_REGISTRY is None:
        _ACTIVE_REGISTRY = LockRegistry()
    return _ACTIVE_REGISTRY


class lock_tracking:
    """Context manager installing a fresh registry (tests use this).

    Restores the previous registry (possibly None) on exit, so a test
    asserting on one query's acquisition graph does not see edges from
    the rest of the suite.
    """

    def __init__(self) -> None:
        self.registry = LockRegistry()
        self._previous: LockRegistry | None = None

    def __enter__(self) -> LockRegistry:
        global _ACTIVE_REGISTRY
        self._previous = _ACTIVE_REGISTRY
        _ACTIVE_REGISTRY = self.registry
        return self.registry

    def __exit__(self, *exc: Any) -> None:
        global _ACTIVE_REGISTRY
        _ACTIVE_REGISTRY = self._previous


def registered_lock(name: str, *, rlock: bool = False) -> TrackedLock:
    """An engine lock registered with the lock-order detector.

    Every ``threading.Lock()`` / ``RLock()`` in engine code must be
    created through this helper (the engine-source lint enforces it).
    The wrapper is always returned — tracking activates lazily when a
    registry is installed, so locks created before ``--sanitize`` was
    seen still participate.
    """
    lock = TrackedLock(
        threading.RLock() if rlock else threading.Lock(), name
    )
    registry = _ACTIVE_REGISTRY
    if registry is not None:
        registry.register(lock)
    return lock


# ---------------------------------------------------------------------------
# Exchange handoff ledger: freeze/fingerprint on enqueue, verify on dequeue
# ---------------------------------------------------------------------------


def _fingerprint(rows: list[Row]) -> int:
    """Stable digest of a routed row-list's *values* (order included)."""
    return zlib.crc32(repr(rows).encode("utf-8", "backslashreplace"))


class HandoffLedger:
    """Fingerprints for payloads crossing the exchange's shard queues.

    The exchange enqueues whole routed row-lists; with the thread backend
    the worker receives the very same objects, so any later mutation by
    the producing side would silently corrupt a shard. :meth:`seal`
    fingerprints the payload at enqueue; :meth:`verify` recomputes at
    dequeue and raises ``TQL905`` on mismatch. Queues are FIFO per shard,
    so (shard, arrival index) pairs the two sides. The process backend
    pickles payloads across the fork — the child's ledger has no entry,
    so verification is naturally skipped (copies cannot alias).
    """

    def __init__(self, lock: TrackedLock) -> None:
        self._lock = lock
        self._sealed: dict[tuple[int, int], int] = {}
        self._enqueued: dict[int, int] = {}
        self._dequeued: dict[int, int] = {}

    def seal(self, shard: int, rows: list[Row]) -> None:
        digest = _fingerprint(rows)
        with self._lock:
            index = self._enqueued.get(shard, 0)
            self._enqueued[shard] = index + 1
            self._sealed[(shard, index)] = digest

    def verify(self, shard: int, rows: list[Row]) -> None:
        with self._lock:
            index = self._dequeued.get(shard, 0)
            self._dequeued[shard] = index + 1
            expected = self._sealed.pop((shard, index), None)
        if expected is None:
            return  # other side of a fork (or ledger not in play)
        if _fingerprint(rows) != expected:
            raise SanitizerError(
                f"exchange payload for shard {shard} (batch {index}) was "
                "mutated after handoff",
                code="TQL905",
                lane=f"worker-{shard}",
                hint="the exchange must never touch a routed row-list "
                "after enqueueing it; copy before mutating",
            )


# ---------------------------------------------------------------------------
# The per-plan sanitizer context
# ---------------------------------------------------------------------------


class Sanitizer:
    """Shared checking state for one physical plan.

    One instance is created at plan time (``Planner._make_sanitizer``)
    and shared by every :class:`SanitizeOperator` the planner installs,
    the exchange (for the handoff ledger), and the executor (for the
    close-time reconciliation). Thread-safe: worker lanes check
    concurrently.
    """

    def __init__(self, clock: Any = None) -> None:
        self.clock = clock
        self.handoff = HandoffLedger(registered_lock("sanitizer.handoff"))
        self.lock_registry = enable_lock_tracking()
        #: Wrappers installed under this sanitizer (off-mode asserts zero).
        self.wrappers = 0

    # -- violation plumbing ----------------------------------------------------

    def violation(
        self,
        code: str,
        message: str,
        *,
        operator: str | None = None,
        lane: str | None = None,
        hint: str | None = None,
        tracer: Any = None,
        batch_seq: int | None = None,
    ) -> SanitizerError:
        """Build (and trace) a structured violation.

        When the plan has a tracer the violation is recorded as an
        instant ``sanitizer`` span on the offending operator's lane, and
        the span rides on the raised error — the "offending operator's
        trace span" part of the TQL9xx contract.
        """
        where = operator or "query"
        if lane:
            where = f"{where}[{lane}]"
        full = f"{code}: {message} (at {where})"
        span = None
        if tracer is not None:
            span = tracer.instant(
                f"violation:{code}", "sanitizer", lane=lane or "main",
                code=code, operator=operator or "", message=message,
            )
        if hint is None:
            hint = (
                "re-run with TWEEQL_SAN=1 and EngineConfig.tracing=True to "
                "capture the full span context"
            )
        error = SanitizerError(
            full, code=code, operator=operator, lane=lane, hint=hint,
            span=span, batch_seq=batch_seq,
        )
        error.diagnostic = _diagnostic_for(error)
        return error

    # -- close-time checks ------------------------------------------------------

    def at_close(self, handle: Any, exhausted: bool) -> None:
        """Mandatory end-of-query checks (called by ``QueryHandle``).

        Lock-order cycles always raise. The probe/stats reconciliation
        runs only when the stream was drained to punctuation — a query
        abandoned mid-stream (LIMIT on an unbounded source,
        ``handle.close()``) legitimately leaves probes ahead of the
        counters.
        """
        self.lock_registry.check()
        if not exhausted:
            return
        tracer = getattr(handle, "tracer", None)
        if tracer is None or not tracer.probes:
            return
        from repro.obs.analyze import reconcile

        report = reconcile(handle)
        if not report["ok"]:
            raise self.violation(
                "TQL907",
                "trace probes disagree with the engine's own counters: "
                f"scan_rows={report['scan_rows']} vs "
                f"rows_scanned={report['rows_scanned']}, "
                f"emitted_rows={report['emitted_rows']} vs "
                f"rows_emitted={report['rows_emitted']}",
                tracer=tracer,
                hint="a stage is dropping, duplicating, or double-counting "
                "rows; EXPLAIN ANALYZE shows the per-operator census",
            )


def _diagnostic_for(error: SanitizerError) -> Any:
    """A Diagnostic mirroring the error, for uniform --format=json output."""
    from repro.sql.analysis.diagnostics import Diagnostic, Severity

    return Diagnostic(
        code=error.code or "TQL900",
        severity=Severity.ERROR,
        message=str(error),
        hint=error.hint,
        payload={
            "operator": error.operator,
            "lane": error.lane,
            "batch_seq": error.batch_seq,
        },
    )


# ---------------------------------------------------------------------------
# The operator-boundary wrapper
# ---------------------------------------------------------------------------

#: QueryStats counters the sanitizer requires to be monotonic.
_MONOTONIC_COUNTERS = tuple(QueryStats().as_dict())


class SanitizeOperator:
    """Checks every batch crossing one operator boundary.

    Installed innermost (under the TraceOperator, when both are on) so it
    observes exactly what the wrapped stage produced. Transparent to the
    data — batches pass through untouched — so sanitized and unsanitized
    runs are row-for-row identical; the only behavioral difference is one
    extra ``next()`` probe after the ``last`` batch, proving the producer
    really stopped.
    """

    def __init__(
        self,
        child: Iterable[Batch],
        sanitizer: Sanitizer,
        *,
        name: str,
        lane: str = "main",
        stats: QueryStats | None = None,
        tracer: Any = None,
    ) -> None:
        self._child = child
        self._san = sanitizer
        self._name = name
        self._lane = lane
        self._stats = stats
        self._tracer = tracer
        #: The single thread allowed to drive this stage (bound on first
        #: pull); a second thread pulling the same stage is TQL911.
        self._thread: int | None = None
        sanitizer.wrappers += 1

    def _fail(
        self, code: str, message: str,
        batch: Batch | None = None, hint: str | None = None,
    ) -> None:
        raise self._san.violation(
            code, message, operator=self._name, lane=self._lane,
            hint=hint, tracer=self._tracer,
            batch_seq=None if batch is None else batch.seq,
        )

    # -- per-batch checks ------------------------------------------------------

    def _check_ownership(self) -> None:
        ident = threading.get_ident()
        if self._thread is None:
            self._thread = ident
        elif self._thread != ident:
            self._fail(
                "TQL911",
                "stage driven from two threads (batch ownership violation): "
                f"bound to thread {self._thread}, pulled from {ident}",
                hint="each lane's pipeline belongs to exactly one thread; "
                "cross-thread data must travel through the exchange or "
                "fanout queues",
            )

    def _check_seq(self, batch: Batch, prev_seq: int | None) -> None:
        if not isinstance(batch.seq, int):
            self._fail(
                "TQL901",
                f"batch seq must be an int, got {type(batch.seq).__name__}",
                batch,
            )
        if prev_seq is not None and batch.seq <= prev_seq:
            self._fail(
                "TQL901",
                f"seq regression: batch seq {batch.seq} after {prev_seq} "
                "(must be strictly increasing per producer)",
                batch,
            )

    def _check_stats(self, previous: dict[str, int] | None) -> dict[str, int]:
        stats = self._stats
        if stats is None:
            return {}
        snapshot = stats.as_dict()
        if previous:
            for counter in _MONOTONIC_COUNTERS:
                if snapshot[counter] < previous[counter]:
                    self._fail(
                        "TQL906",
                        f"stats counter regression: {counter} went "
                        f"{previous[counter]} -> {snapshot[counter]}",
                        hint="QueryStats counters are append-only; "
                        "something reset or overwrote a live counter",
                    )
        return snapshot

    def _check_payload(self, batch: Batch) -> None:
        if isinstance(batch, ColumnBatch):
            self._check_column_batch(batch)
        else:
            if not isinstance(batch.rows, list):
                self._fail(
                    "TQL903",
                    "RowBatch.rows must be a list, got "
                    f"{type(batch.rows).__name__}",
                    batch,
                )
            self._check_rows(batch, batch.rows)

    def _check_column_batch(self, batch: ColumnBatch) -> None:
        length = batch.length
        if length < 0:
            self._fail("TQL903", f"negative batch length {length}", batch)
        backing = batch._rows
        if batch._lazy and backing is None:
            self._fail(
                "TQL903", "lazy ColumnBatch lost its backing row list", batch
            )
        if backing is not None and len(backing) != length:
            self._fail(
                "TQL903",
                f"row/column length mismatch: {len(backing)} backing rows "
                f"vs declared length {length}",
                batch,
            )
        absent = batch._absent or ()
        for name, column in batch.columns.items():
            if len(column) != length:
                self._fail(
                    "TQL903",
                    f"column {name!r} has {len(column)} cells but the "
                    f"batch declares {length} rows",
                    batch,
                )
            if name in absent and any(v is not MISSING for v in column):
                self._fail(
                    "TQL903",
                    f"stale negative-probe cache: {name!r} is marked "
                    "absent but a materialized column has real cells",
                    batch,
                    hint="the _absent set may only name fields no row "
                    "carries; it must be invalidated on materialization",
                )
        if backing is not None:
            self._check_rows(batch, backing)

    def _check_rows(self, batch: Batch, rows: list[Row]) -> None:
        for index, row in enumerate(rows):
            if not isinstance(row, dict):
                self._fail(
                    "TQL903",
                    f"row {index} is a {type(row).__name__}, not a dict",
                    batch,
                )
            for key, value in row.items():
                if value is MISSING:
                    self._fail(
                        "TQL904",
                        f"MISSING sentinel leaked into row {index} "
                        f"field {key!r}",
                        batch,
                        hint="MISSING is a column-layout cell marker; "
                        "to_rows() must omit such cells, never emit them",
                    )

    # -- the wrapper -----------------------------------------------------------

    def __iter__(self) -> Iterator[Batch]:
        child = iter(self._child)
        prev_seq: int | None = None
        stats_snapshot: dict[str, int] | None = None
        while True:
            batch = next(child, None)
            self._check_ownership()
            if batch is None:
                self._fail(
                    "TQL902",
                    "stream ended without last=True punctuation",
                    hint="every producer must terminate with exactly one "
                    "last batch (possibly empty)",
                )
                return  # pragma: no cover - _fail always raises
            self._check_seq(batch, prev_seq)
            prev_seq = batch.seq
            self._check_payload(batch)
            stats_snapshot = self._check_stats(stats_snapshot)
            if batch.last:
                # Exactly-once / never-after-last: the producer must now
                # be exhausted. One extra probe proves it (and is the only
                # place the sanitizer pulls harder than a real consumer).
                extra = next(child, None)
                if extra is not None:
                    self._fail(
                        "TQL902",
                        f"batch seq {extra.seq} produced after last=True "
                        f"punctuation (seq {batch.seq})",
                        extra,
                    )
                yield batch
                return
            yield batch
