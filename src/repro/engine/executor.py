"""Query execution handles.

The pipeline built by the planner is a pull-based iterator chain; the
executor wraps it in a :class:`QueryHandle` with the affordances a caller
wants from a long-running stream query: incremental fetching, cancellation
(closing the API connection), statistics, and EXPLAIN output.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.engine.planner import PhysicalPlan
from repro.engine.types import QueryStats, Row
from repro.errors import ExecutionError


class QueryHandle:
    """A running TweeQL query.

    Iterate it for result rows (dicts keyed by the output schema), or use
    :meth:`fetch` / :meth:`all` for batch access. ``stats`` exposes engine
    counters, ``explain()`` the plan, and ``close()`` cancels the stream.
    """

    def __init__(self, sql: str, plan: PhysicalPlan) -> None:
        self.sql = sql
        self._plan = plan
        self._iterator: Iterator[Row] | None = None
        self._closed = False
        self._released = False
        #: True once the pipeline delivered its last=True punctuation —
        #: the sanitizer's close-time reconcile() only applies to fully
        #: drained queries (an abandoned stream legitimately leaves the
        #: probes ahead of the counters).
        self._exhausted = False

    @property
    def schema(self) -> tuple[str, ...]:
        """Output column names."""
        return self._plan.output_schema

    @property
    def stats(self) -> QueryStats:
        """Engine counters for this query.

        Sharded plans aggregate the per-shard counters; ``rows_emitted``
        comes from the merge stage, which sees the post-LIMIT output.
        """
        plan = self._plan
        if plan.shard_ctxs:
            total = QueryStats()
            for ctx in plan.shard_ctxs:
                total.merge(ctx.stats)
            if plan.merge_stats is not None:
                total.rows_emitted = plan.merge_stats.rows_emitted
            return total
        return plan.ctx.stats

    @property
    def backfill_rows(self) -> int:
        """Rows served from the historical store ahead of the live tail
        (0 for pure-live plans, and until the backfill scan has run)."""
        return self._plan.backfill_rows

    @property
    def shard_stats(self) -> list[QueryStats]:
        """Per-stage counters for sharded plans (exchange first, then one
        entry per worker); empty for serial plans."""
        return [ctx.stats for ctx in self._plan.shard_ctxs]

    @property
    def shard_service_stats(self) -> list[dict]:
        """Per-stage ``{service name → ManagedCallStats}`` for sharded
        plans; empty for serial plans."""
        return list(self._plan.shard_service_stats)

    @property
    def service_stats(self) -> dict[str, dict]:
        """Per-service call and cache accounting.

        ``{service: {…ManagedCallStats…, "cache": {…CacheStats…}}}`` — the
        ``cache`` entry (hits, misses, hit_rate, …) is present only when
        the latency mode put an LRU in front of the service. When the
        session enabled retries, ``resilience`` (retries, recoveries,
        giveups, backoff time) and — with a breaker configured —
        ``breaker`` (state plus transition counters) appear too.

        Sharded plans sum the per-stage ManagedCall mirrors (see
        :attr:`shard_service_stats`) rather than reading the session's
        global counters: each call lands in exactly one stage mirror, so
        the sum neither double-counts nor — with the process backend,
        where a child's calls never touch the parent's globals — loses
        anything. Cache/resilience/breaker state lives on the shared
        parent-side service objects either way.
        """
        import dataclasses as _dc

        plan = self._plan
        shard_mirrors = plan.shard_service_stats
        out: dict[str, dict] = {}
        for name, managed in plan.ctx.services.items():
            if not name.endswith("_managed"):
                continue
            service_name = name.removesuffix("_managed")
            source = managed.stats
            if shard_mirrors:
                # Mirrors are keyed by the underlying service's own name
                # (e.g. "geocoder"), not the session alias ("geocode").
                mirror_key = getattr(
                    getattr(managed, "service", None), "name", service_name
                )
                total = None
                for stage in shard_mirrors:
                    mirror = stage.get(mirror_key)
                    if mirror is None:
                        continue
                    if total is None:
                        total = type(mirror)()
                    for f in _dc.fields(mirror):
                        setattr(
                            total, f.name,
                            getattr(total, f.name) + getattr(mirror, f.name),
                        )
                if total is not None:
                    source = total
            stats = dict(source.as_dict())
            cache = getattr(managed, "cache", None)
            if cache is not None:
                stats["cache"] = cache.stats.as_dict()
            service = getattr(managed, "service", None)
            resilience = getattr(service, "resilience", None)
            if resilience is not None:
                stats["resilience"] = resilience.as_dict()
            breaker = getattr(service, "breaker", None)
            if breaker is not None:
                stats["breaker"] = {
                    "state": breaker.state,
                    **breaker.stats.as_dict(),
                }
            out[service_name] = stats
        return out

    @property
    def filter_choice(self):
        """The API filter decision, when the query ran against twitter."""
        return self._plan.filter_choice

    @property
    def tracer(self):
        """The span recorder, when the session planned with tracing on."""
        return self._plan.tracer

    @property
    def connections(self) -> list:
        """Streaming connections this query has opened (so far)."""
        return list(self._plan.connections)

    def explain(self, analyze: bool = False, limit: int | None = None) -> str:
        """The plan description, one operator per line.

        With ``analyze=True`` the rendering is annotated with per-operator
        rows/batches/wall/self time, query totals, service accounting, and
        a span census — which requires the plan to have been built with
        ``EngineConfig.tracing`` on. Any rows not yet consumed are drained
        first (pass ``limit`` to cap that on unbounded streams).
        """
        if not analyze:
            return self._plan.explain()
        from repro.obs.analyze import render_analyze

        if not self._closed and not self._released:
            self.all(limit=limit)
        return render_analyze(self)

    def chrome_trace(self, process_name: str = "tweeql") -> dict:
        """The recorded trace as a Chrome trace document (dict)."""
        from repro.obs.analyze import _require_tracer
        from repro.obs.export import chrome_trace

        return chrome_trace(_require_tracer(self), process_name=process_name)

    def metrics(self):
        """This query's stats as one
        :class:`~repro.obs.metrics.MetricsRegistry` tree."""
        from repro.obs.metrics import query_metrics

        return query_metrics(self)

    def __iter__(self) -> Iterator[Row]:
        if self._closed:
            raise ExecutionError("query is closed")
        if self._iterator is None:
            self._iterator = self._iterate()
        return self._iterator

    def _iterate(self) -> Iterator[Row]:
        # The pipeline speaks RowBatch; the handle flattens back to rows at
        # the API boundary so callers never see batch framing.
        pipeline = iter(self._plan.pipeline)
        try:
            for batch in pipeline:
                if batch.last:
                    self._exhausted = True
                    # Release *before* yielding the final rows: a caller
                    # that fetches exactly the available row count leaves
                    # this generator suspended in the yield below, so the
                    # finally would never run and in-flight async service
                    # calls would never drain into the stats.
                    self._finish(pipeline)
                yield from batch.rows
                if batch.last:
                    break
        finally:
            # Pipeline error or the generator being closed (GC of an
            # abandoned handle): release everything now rather than
            # waiting on cycle GC. Idempotent after the in-loop release.
            self._finish(pipeline)

    def _finish(self, pipeline: Iterator) -> None:
        """Close the operator chain, then release plan resources.

        Closing the outermost generator runs the finally blocks of any
        trace wrappers (finalizing operator spans) before the query span
        is recorded.
        """
        close = getattr(pipeline, "close", None)
        if close is not None:
            close()
        self._release()

    def _release(self) -> None:
        """Tear down plan-owned resources exactly once.

        Order matters: worker threads are joined first (they may still be
        pulling the source), then API connections close, then in-flight
        service requests drain so their effects reach the stats.
        """
        if self._released:
            return
        self._released = True
        for closer in self._plan.closers:
            closer()
        for connection in self._plan.connections:
            connection.close()
        self._drain_managed()
        tracer = self.tracer
        if tracer is not None:
            tracer.add(
                "query", "query", tracer.started_at, tracer.clock.now,
                lane="main", rows_emitted=self.stats.rows_emitted,
            )
        sanitizer = self._plan.sanitizer
        if sanitizer is not None:
            # Mandatory close-time checks: lock-order cycles always;
            # probe/stats reconciliation when the stream fully drained.
            sanitizer.at_close(self, exhausted=self._exhausted)

    def _drain_managed(self) -> None:
        """Wait out in-flight async service requests (stats visibility)."""
        for managed in self._plan.managed_calls:
            managed.drain()

    def fetch(self, n: int) -> list[Row]:
        """Pull up to ``n`` result rows (fewer at end of stream)."""
        iterator = iter(self)
        rows: list[Row] = []
        for _ in range(n):
            row = next(iterator, None)
            if row is None:
                break
            rows.append(row)
        return rows

    def all(self, limit: int | None = None) -> list[Row]:
        """Drain the query (careful on unbounded streams — pass ``limit``).

        Drains in-flight async service requests afterwards so their effects
        are visible in the stats.
        """
        rows: list[Row] = []
        for row in self:
            rows.append(row)
            if limit is not None and len(rows) >= limit:
                break
        self._drain_managed()
        return rows

    def to_csv(self, path: str, limit: int | None = None) -> int:
        """Drain the query into a CSV file; returns the row count.

        Columns follow the output schema; internal ``__``-prefixed fields
        are dropped. Pass ``limit`` on unbounded streams.
        """
        import csv

        columns = [name for name in self.schema if not name.startswith("__")]
        written = 0
        with open(path, "w", newline="", encoding="utf-8") as f:
            writer = csv.DictWriter(f, fieldnames=columns, extrasaction="ignore")
            writer.writeheader()
            for row in self:
                writer.writerow(row)
                written += 1
                if limit is not None and written >= limit:
                    break
        self._drain_managed()
        return written

    def close(self) -> None:
        """Cancel the query: stop worker threads, close API connections,
        and drain in-flight service requests."""
        if self._closed:
            return
        self._closed = True
        self._release()
