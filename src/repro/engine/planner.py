"""Query planning: AST → physical operator pipeline.

The planner implements the decisions the paper describes:

1. **API filter choice** ("Uncertain Selectivities"): the WHERE clause is
   split into conjuncts; conjuncts expressible as streaming-API filters
   (keyword ``track``, geographic ``locations``, userid ``follow``) become
   candidates, their selectivities are estimated from a shared
   ``statuses/sample`` draw, and the rarest is pushed to the API. The rest
   stay local.
2. **Adaptive local filtering** (Eddies): with several local conjuncts and
   ``use_eddy`` enabled, the local filter is an
   :class:`~repro.engine.eddies.EddyOperator` instead of a fixed-order
   conjunction.
3. **High-latency UDFs**: when the query calls latitude/longitude/
   named_entities and the latency mode is ``batched`` or ``async``, a
   :class:`~repro.engine.latency.PrefetchOperator` is inserted upstream of
   the consumer so round trips overlap stream processing.
4. **Aggregation**: windowed GROUP BY when ``WINDOW`` is present;
   confidence-triggered emission (CONTROL-style) when the query has
   aggregates but no window and the session configured a
   :class:`~repro.engine.confidence.ConfidencePolicy`.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Iterable, Iterator
from dataclasses import dataclass, field
from typing import Any

from repro.engine import operators as ops
from repro.engine import parallel
from repro.engine.aggregates import AGGREGATE_NAMES, make_aggregate
from repro.engine.confidence import ConfidenceAggregateOperator, ConfidencePolicy
from repro.engine.eddies import AdaptivePredicate, EddyOperator
from repro.engine.expressions import (
    Evaluator,
    VectorEvaluator,
    build_fused_projector,
    compile_expr,
    compile_vector_expr,
    contains_aggregate,
    contains_high_latency,
    resolve_bbox,
)
from repro.engine.functions import FunctionRegistry
from repro.engine.latency import ManagedCall, PrefetchOperator
from repro.engine.selectivity import FilterCandidate, FilterChoice, choose_api_filter
from repro.engine.types import DEFAULT_BATCH_SIZE, EvalContext, Row, RowBatch
from repro.errors import PlanError
from repro.sql import ast

# ---------------------------------------------------------------------------
# Source bindings
# ---------------------------------------------------------------------------


@dataclass
class SourceBinding:
    """One FROM-able source.

    ``api`` is set for the live ``twitter`` source; ``rows_factory`` for
    registered static/test sources (each call returns a fresh row iterator).
    """

    name: str
    schema: tuple[str, ...]
    api: Any = None  # StreamingAPI | None
    rows_factory: Callable[[], Iterable[Row]] | None = None


@dataclass
class PhysicalPlan:
    """The executable result of planning one statement.

    ``pipeline`` yields :class:`~repro.engine.types.RowBatch` units; the
    executor flattens them back to rows at the API boundary.
    """

    pipeline: Iterable[RowBatch]
    output_schema: tuple[str, ...]
    ctx: EvalContext
    explain_lines: list[str] = field(default_factory=list)
    filter_choice: FilterChoice | None = None
    connections: list[Any] = field(default_factory=list)
    managed_calls: list[Any] = field(default_factory=list)
    #: Sharded plans: one EvalContext per stats-bearing stage (the exchange
    #: first, then each worker). Empty for serial plans.
    shard_ctxs: list[EvalContext] = field(default_factory=list)
    #: Sharded plans: per stage, {service name → ManagedCallStats mirror}.
    shard_service_stats: list[dict[str, Any]] = field(default_factory=list)
    #: Sharded plans: stats of the merge stage; its ``rows_emitted`` is the
    #: authoritative output count (per-shard counters over-count under
    #: merge-side LIMIT).
    merge_stats: Any = None
    #: Callbacks that tear down plan-owned resources (worker threads).
    closers: list[Callable[[], None]] = field(default_factory=list)
    #: Span recorder (:class:`repro.obs.trace.Tracer`) when
    #: ``EngineConfig.tracing`` was on at plan time; None otherwise, in
    #: which case the pipeline carries no instrumentation at all.
    tracer: Any = None
    #: Invariant checker (:class:`repro.engine.sanitizer.Sanitizer`) when
    #: ``EngineConfig.sanitize`` / ``TWEEQL_SAN=1`` was on at plan time;
    #: None otherwise (zero sanitize wrappers, like tracing).
    sanitizer: Any = None
    #: Rows served from the historical store before the live tail took
    #: over (set at run time by the hybrid backfill source; 0 otherwise).
    backfill_rows: int = 0

    def explain(self) -> str:
        """Human-readable plan description."""
        return "\n".join(self.explain_lines)


def _lazy_connection_rows(open_connection: Callable[[], Any], plan: "PhysicalPlan"):
    """Row generator that opens its API connection only on first pull.

    Planning must not consume scarce streaming connections: a session may
    plan (EXPLAIN) many queries without running them, and the real API's
    connection budget was tiny. The connection is registered on the plan
    at open time so :meth:`QueryHandle.close` can cancel it.
    """

    def rows():
        connection = open_connection()
        connection.tracer = plan.tracer
        plan.connections.append(connection)
        for tweet in connection:
            yield tweet.to_row()

    return rows()


# ---------------------------------------------------------------------------
# Helpers: conjunct splitting and API-candidate extraction
# ---------------------------------------------------------------------------


def split_conjuncts(expr: ast.Expr | None) -> list[ast.Expr]:
    """Flatten a WHERE tree into top-level AND conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, ast.BinaryOp) and expr.op == "AND":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def _time_window(
    conjuncts: list[ast.Expr],
) -> tuple[float | None, float | None]:
    """``created_at`` literal bounds as a (start, end) superset window.

    Reads ``created_at <cmp> <literal>`` conjuncts (either operand
    order) and returns conservative *scan* bounds for the backfill
    split: strict bounds are widened to their inclusive neighbors, so
    the store range scan may return a few extra boundary rows — the
    window conjuncts stay in the local filter stage, which drops them.
    (None, None) means no recognizable window (whole-store backfill).
    """
    start: float | None = None
    end: float | None = None

    def bound(op: str, value: float) -> None:
        nonlocal start, end
        if op in (">=", ">"):
            start = value if start is None else max(start, value)
        elif op == "<":
            end = value if end is None else min(end, value)
        elif op == "<=":
            widened = math.nextafter(value, math.inf)
            end = widened if end is None else min(end, widened)

    _FLIP = {">": "<", "<": ">", ">=": "<=", "<=": ">="}
    for conjunct in conjuncts:
        if not (
            isinstance(conjunct, ast.BinaryOp)
            and conjunct.op in _FLIP
        ):
            continue
        left, right, op = conjunct.left, conjunct.right, conjunct.op
        if not isinstance(left, ast.FieldRef):
            # ``<literal> <cmp> created_at`` — normalize the orientation.
            left, right, op = right, left, _FLIP[op]
        if (
            isinstance(left, ast.FieldRef)
            and left.name.lower() == "created_at"
            and isinstance(right, ast.Literal)
            and isinstance(right.value, (int, float))
            and not isinstance(right.value, bool)
        ):
            bound(op, float(right.value))
    return start, end


def _track_keywords(expr: ast.Expr) -> list[str] | None:
    """Keywords when ``expr`` is (an OR of) ``text CONTAINS <literal>``."""
    if isinstance(expr, ast.BinaryOp) and expr.op == "OR":
        left = _track_keywords(expr.left)
        right = _track_keywords(expr.right)
        if left is not None and right is not None:
            return left + right
        return None
    if (
        isinstance(expr, ast.BinaryOp)
        and expr.op == "CONTAINS"
        and isinstance(expr.left, ast.FieldRef)
        and expr.left.name.lower() == "text"
        and isinstance(expr.right, ast.Literal)
        and isinstance(expr.right.value, str)
    ):
        return [expr.right.value]
    return None


def _bbox_filter(expr: ast.Expr):
    """BoundingBox when ``expr`` is ``location IN [bounding box …]``."""
    if (
        isinstance(expr, ast.BinaryOp)
        and expr.op == "IN_BBOX"
        and isinstance(expr.left, ast.FieldRef)
        and expr.left.name.lower() in ("location", "geo", "point")
        and isinstance(expr.right, ast.BBox)
    ):
        return resolve_bbox(expr.right)
    return None


def _follow_ids(expr: ast.Expr) -> list[int] | None:
    """User ids when ``expr`` is ``user_id = n`` or ``user_id IN (…)``."""
    if (
        isinstance(expr, ast.BinaryOp)
        and expr.op == "="
        and isinstance(expr.left, ast.FieldRef)
        and expr.left.name.lower() == "user_id"
        and isinstance(expr.right, ast.Literal)
        and isinstance(expr.right.value, int)
    ):
        return [expr.right.value]
    if (
        isinstance(expr, ast.InList)
        and isinstance(expr.operand, ast.FieldRef)
        and expr.operand.name.lower() == "user_id"
        and all(
            isinstance(v, ast.Literal) and isinstance(v.value, int)
            for v in expr.values
        )
    ):
        return [v.value for v in expr.values]  # type: ignore[union-attr]
    return None


def extract_api_candidates(
    conjuncts: list[ast.Expr],
) -> list[tuple[int, FilterCandidate]]:
    """(conjunct index, candidate) pairs for API-eligible conjuncts."""
    found: list[tuple[int, FilterCandidate]] = []
    for index, conjunct in enumerate(conjuncts):
        keywords = _track_keywords(conjunct)
        if keywords is not None:
            kw = tuple(keywords)
            found.append(
                (
                    index,
                    FilterCandidate(
                        kind="track",
                        description=f"track({', '.join(kw)})",
                        api_kwargs={"track": kw},
                        matches=lambda tweet, kw=kw: tweet.matches_any_keyword(kw),
                    ),
                )
            )
            continue
        box = _bbox_filter(conjunct)
        if box is not None:
            found.append(
                (
                    index,
                    FilterCandidate(
                        kind="locations",
                        description=f"locations({box.name or box})",
                        api_kwargs={"locations": (box,)},
                        matches=lambda tweet, box=box: box.contains_point(tweet.geo),
                    ),
                )
            )
            continue
        ids = _follow_ids(conjunct)
        if ids is not None:
            id_set = frozenset(ids)
            found.append(
                (
                    index,
                    FilterCandidate(
                        kind="follow",
                        description=f"follow({len(id_set)} users)",
                        api_kwargs={"follow": tuple(id_set)},
                        matches=lambda tweet, ids=id_set: tweet.user.user_id in ids,
                    ),
                )
            )
    return found


# ---------------------------------------------------------------------------
# Aggregate rewriting
# ---------------------------------------------------------------------------


@dataclass
class AggSite:
    """One distinct aggregate call site across SELECT/HAVING/ORDER BY."""

    call: ast.FuncCall
    placeholder: str  # "__agg<i>"


def _rewrite_aggregates(
    expr: ast.Expr, sites: list[AggSite], by_sql: dict[str, AggSite]
) -> ast.Expr:
    """Replace aggregate calls with placeholder field refs, registering
    each distinct call (by rendered SQL) once."""
    if isinstance(expr, ast.FuncCall):
        if expr.name in AGGREGATE_NAMES:
            key = expr.to_sql()
            site = by_sql.get(key)
            if site is None:
                site = AggSite(call=expr, placeholder=f"__agg{len(sites)}")
                sites.append(site)
                by_sql[key] = site
            return ast.FieldRef(site.placeholder)
        return ast.FuncCall(
            name=expr.name,
            args=tuple(_rewrite_aggregates(a, sites, by_sql) for a in expr.args),
            distinct=expr.distinct,
        )
    if isinstance(expr, ast.BinaryOp):
        return ast.BinaryOp(
            expr.op,
            _rewrite_aggregates(expr.left, sites, by_sql),
            _rewrite_aggregates(expr.right, sites, by_sql),
        )
    if isinstance(expr, ast.UnaryOp):
        return ast.UnaryOp(expr.op, _rewrite_aggregates(expr.operand, sites, by_sql))
    if isinstance(expr, ast.InList):
        return ast.InList(
            _rewrite_aggregates(expr.operand, sites, by_sql),
            tuple(_rewrite_aggregates(v, sites, by_sql) for v in expr.values),
        )
    return expr


# ---------------------------------------------------------------------------
# The planner
# ---------------------------------------------------------------------------


class Planner:
    """Builds physical plans for one session's catalog and configuration."""

    def __init__(
        self,
        sources: dict[str, SourceBinding],
        registry: FunctionRegistry,
        services: dict[str, Any],
        clock,
        config,
        table_factory: Callable[[str], Any],
        store: Any = None,
    ) -> None:
        self._sources = sources
        self._registry = registry
        self._services = services
        self._clock = clock
        self._config = config
        self._table_factory = table_factory
        #: Historical tier (:class:`repro.storage.historical.
        #: HistoricalStore`) backing the backfill split; None disables it.
        self._store = store

    def plan(self, statement: ast.SelectStatement) -> PhysicalPlan:
        """Plan one parsed statement into a runnable pipeline.

        With ``EngineConfig.workers > 1`` the plan is sharded (exchange +
        N worker pipelines + ordered merge) whenever the statement shape
        allows it; shapes that depend on global row order fall back to the
        serial pipeline with an EXPLAIN note.

        Validation runs through the static analyzer first, so every
        rejection carries a stable ``TQL…`` code and a source span; the
        inline raises below remain as backstops for states the analyzer
        cannot see (and keep this module self-contained under direct
        unit testing).
        """
        self.analyze(statement).raise_first_error()

        from repro.errors import UnknownSourceError

        binding = self._sources.get(statement.source.lower())
        if binding is None:
            raise UnknownSourceError(
                statement.source, tuple(sorted(self._sources))
            )
        return self._plan_validated(statement)

    def analyze(self, statement: ast.SelectStatement):
        """This catalog/config's plan-gating analysis of one statement.

        Returns the gated :class:`repro.sql.analysis.AnalysisResult` —
        only the errors the planner enforces. (Imported lazily: the
        analysis package depends on engine leaf modules, so a top-level
        import here would cycle through ``repro.engine.__init__``.)
        """
        from repro.sql import analysis

        result = analysis.analyze_statement(
            statement,
            catalog=analysis.catalog_from_sources(self._sources),
            registry=self._registry,
            config=self._config,
        )
        return analysis.gate_result(result)

    def _plan_validated(self, statement: ast.SelectStatement) -> PhysicalPlan:
        """Build the pipeline for a statement the analyzer accepted."""
        binding = self._sources.get(statement.source.lower())
        assert binding is not None

        workers = getattr(self._config, "workers", 1)
        if workers > 1:
            reason = self._shard_blocker(statement)
            if reason is None:
                backend, workers, notes = self._resolve_backend(
                    statement, workers
                )
                return self._plan_sharded(
                    statement, binding, workers,
                    backend=backend, backend_notes=notes,
                )
            plan = self._plan_serial(statement, binding)
            plan.explain_lines.append(f"Parallel: serial fallback ({reason})")
            if getattr(self._config, "shard_backend", "thread") == "process":
                plan.explain_lines.append(
                    "Parallel: process backend requested but the plan runs "
                    "serially (see fallback reason above)"
                )
            return plan
        return self._plan_serial(statement, binding)

    # -- shard backend ---------------------------------------------------------

    def _process_blocker(self, statement: ast.SelectStatement) -> str | None:
        """Why this statement cannot use process workers, or None.

        A forked child's virtual clock is a frozen copy, so any worker
        stage that *advances* the session clock — high-latency (simulated
        web-service) calls, and the punctuation-coupled confidence
        emission path — must stay on threads, where
        :class:`~repro.engine.parallel.LockedManagedCall` serializes clock
        access. Fork itself must be available: worker pipelines are
        unpicklable closures that only fork can transplant.
        """
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            return "fork start method unavailable on this platform"
        has_aggregates = bool(statement.group_by) or any(
            not isinstance(item.expr, ast.Star) and contains_aggregate(item.expr)
            for item in statement.select
        )
        if (
            has_aggregates
            and statement.window is None
            and self._config.confidence_policy is not None
        ):
            return "confidence-triggered emission is clock/punctuation-coupled"
        exprs: list[ast.Expr] = [
            item.expr
            for item in statement.select
            if not isinstance(item.expr, ast.Star)
        ]
        exprs.extend(split_conjuncts(statement.where))
        exprs.extend(statement.group_by)
        if statement.having is not None:
            exprs.append(statement.having)
        exprs.extend(expr for expr, _desc in statement.order_by)
        for expr in exprs:
            if contains_high_latency(expr, self._registry):
                return "web-service calls must run on the session clock"
        return None

    def _resolve_backend(
        self, statement: ast.SelectStatement, workers: int
    ) -> tuple[str, int, list[str]]:
        """Pick thread vs process workers; clamp process fan-out to cores.

        Thread shards are *logical* partitions — the determinism contract
        makes results identical at any worker count, and N threads on one
        core cost little — so thread worker counts are never clamped (the
        TQL309 lint warns instead). Process workers each cost a fork and
        real memory, so asking for more than ``os.cpu_count()`` is clamped
        unless ``EngineConfig.clamp_workers`` is off (tests use that to
        exercise the process fabric on small hosts).
        """
        import os

        backend = getattr(self._config, "shard_backend", "thread")
        if backend not in ("thread", "process"):
            raise PlanError(
                f"unknown shard_backend {backend!r}; use 'thread' or 'process'"
            )
        notes: list[str] = []
        if backend != "process":
            return backend, workers, notes
        reason = self._process_blocker(statement)
        if reason is None and getattr(self._config, "clamp_workers", True):
            cores = os.cpu_count() or 1
            if workers > cores:
                if cores >= 2:
                    notes.append(
                        f"Parallel: workers clamped {workers} -> {cores} "
                        "(os.cpu_count(); process workers cost real cores)"
                    )
                    workers = cores
                else:
                    reason = (
                        f"host has {cores} CPU core(s); process sharding "
                        "cannot beat serial"
                    )
        if reason is not None:
            notes.append(
                f"Parallel: process backend unavailable ({reason}); "
                "using thread workers"
            )
            backend = "thread"
        return backend, workers, notes

    # -- columnar layout -------------------------------------------------------

    def _columnar_for(
        self, statement: ast.SelectStatement, batch_size: int
    ) -> bool:
        """Whether this plan's scans should emit ColumnBatches.

        Row-at-a-time plans (batch 1) gain nothing from a transpose, and
        join pipelines are row-oriented end to end, so both keep the
        legacy RowBatch layout; everything else defaults to columnar
        (``EngineConfig.columnar`` turns it off for A/B comparison).
        """
        return (
            bool(getattr(self._config, "columnar", True))
            and batch_size > 1
            and statement.join is None
        )

    # -- tracing / sanitizing --------------------------------------------------

    def _sanitize_enabled(self) -> bool:
        """True when this plan should run under the invariant sanitizer."""
        if getattr(self._config, "sanitize", False):
            return True
        from repro.engine.sanitizer import sanitize_env_enabled

        return sanitize_env_enabled()

    def _make_tracer(self) -> Any:
        """A fresh Tracer when the config asks for one, else None.

        Disabled tracing means *no* wrapper objects anywhere in the
        pipeline — the plan is structurally identical to a pre-tracing
        build, so the hot path pays nothing. Sanitized runs always carry
        a tracer: SanitizerError reports ride on trace spans, and the
        close-time ``reconcile()`` cross-check needs operator probes.
        """
        if not (
            getattr(self._config, "tracing", False) or self._sanitize_enabled()
        ):
            return None
        from repro.obs.trace import Tracer

        return Tracer(
            self._clock,
            batch_spans=getattr(self._config, "trace_batch_spans", True),
        )

    def _make_sanitizer(self) -> Any:
        """A fresh Sanitizer when sanitize mode is on, else None."""
        if not self._sanitize_enabled():
            return None
        from repro.engine.sanitizer import Sanitizer

        return Sanitizer(self._clock)

    def _sanitize_stats(self, plan: PhysicalPlan, lane: str) -> Any:
        """The QueryStats the sanitizer monitors for this lane.

        ``plan.ctx`` is the merge context on sharded plans (and worker 0
        aliases the top-level plan object), so stats must be resolved by
        lane, falling back to the plan's own context for the serial case.
        """
        if plan.ctx.lane == lane:
            return plan.ctx.stats
        for ctx in plan.shard_ctxs:
            if ctx.lane == lane:
                return ctx.stats
        return plan.ctx.stats

    def _trace(
        self, pipeline: ops.Batches, name: str, plan: PhysicalPlan,
        lane: str = "main",
    ) -> ops.Batches:
        """Wrap one stage in the enabled instrumentation (no-op when off).

        The sanitize wrapper goes innermost so it observes exactly what
        the wrapped stage produced; the trace wrapper goes outermost so
        its batch spans also cover the sanitizer's checks.
        """
        if plan.sanitizer is not None:
            from repro.engine.sanitizer import SanitizeOperator

            pipeline = SanitizeOperator(
                pipeline,
                plan.sanitizer,
                name=name,
                lane=lane,
                stats=self._sanitize_stats(plan, lane),
                tracer=plan.tracer,
            )
        if plan.tracer is None:
            return pipeline
        from repro.obs.trace import TraceOperator

        probe = plan.tracer.probe(name, lane)
        return TraceOperator(pipeline, probe, plan.tracer)

    def _attach_service_tracers(self, tracer: Any) -> None:
        """Point the session's service wrappers at this plan's tracer.

        Service objects are session-owned and shared across plans, so the
        most recently planned query owns their spans; planning with
        tracing off resets them (``tracer=None``) so a later untraced run
        records nothing.
        """
        for name, managed in self._services.items():
            if not name.endswith("_managed"):
                continue
            managed.tracer = tracer
            service = getattr(managed, "service", None)
            if service is not None and hasattr(service, "resilience"):
                service.tracer = tracer

    # -- batch sizing ----------------------------------------------------------

    def _batch_blocker(self, statement: ast.SelectStatement) -> str | None:
        """Why this statement must run row-at-a-time, or None.

        The scan advances stream time over a whole batch before any of the
        batch's rows are evaluated, so an expression that *reads* stream
        time per row — ``now()`` — would see the batch's horizon instead of
        its own row's arrival time. Everything else is batch-invariant:
        resolvers are pure and operators preserve row order.
        """
        exprs: list[ast.Expr] = [
            item.expr
            for item in statement.select
            if not isinstance(item.expr, ast.Star)
        ]
        exprs.extend(split_conjuncts(statement.where))
        exprs.extend(statement.group_by)
        if statement.having is not None:
            exprs.append(statement.having)
        exprs.extend(expr for expr, _desc in statement.order_by)
        for expr in exprs:
            for node in ast.walk(expr):
                if isinstance(node, ast.FuncCall) and node.name == "now":
                    return "now() reads stream time row by row"
        return None

    def _batch_size_for(
        self, statement: ast.SelectStatement, plan: PhysicalPlan
    ) -> int:
        """The effective batch size for this statement, with EXPLAIN note."""
        configured = getattr(self._config, "batch_size", DEFAULT_BATCH_SIZE)
        if configured != 1:
            reason = self._batch_blocker(statement)
            if reason is not None:
                plan.explain_lines.append(
                    f"Batch: 1 row/batch (row-at-a-time fallback: {reason})"
                )
                return 1
        layout = (
            ", columnar"
            if self._columnar_for(statement, configured)
            else ""
        )
        plan.explain_lines.append(
            f"Batch: {configured} row{'s' if configured != 1 else ''}/batch"
            + layout
        )
        return configured

    def _plan_serial(
        self, statement: ast.SelectStatement, binding: SourceBinding
    ) -> PhysicalPlan:
        ctx = EvalContext(clock=self._clock, services=dict(self._services))
        plan = PhysicalPlan(
            pipeline=iter(()), output_schema=(), ctx=ctx
        )
        plan.tracer = self._make_tracer()
        plan.sanitizer = self._make_sanitizer()
        ctx.tracer = plan.tracer
        self._attach_service_tracers(plan.tracer)
        explain = plan.explain_lines

        conjuncts = split_conjuncts(statement.where)

        # ---- source access + API filter choice ----
        source_rows = self._build_source(binding, conjuncts, plan)
        batch_size = self._batch_size_for(statement, plan)
        columnar = self._columnar_for(statement, batch_size)
        schema = binding.schema
        pipeline: ops.Batches = ops.ScanOperator(
            source_rows, ctx, batch_size, columnar=columnar
        )
        pipeline = self._trace(pipeline, f"Scan({binding.name})", plan)

        if statement.join is not None:
            pipeline, schema = self._build_join(
                statement, pipeline, schema, ctx, plan, batch_size
            )
            pipeline = self._trace(pipeline, "Join", plan)

        # ---- local predicates ----
        before = pipeline
        pipeline = self._build_filters(
            conjuncts, pipeline, schema, ctx, plan, columnar=columnar
        )
        if pipeline is not before:
            pipeline = self._trace(pipeline, "Filter", plan)

        has_aggregates = bool(statement.group_by) or any(
            not isinstance(item.expr, ast.Star) and contains_aggregate(item.expr)
            for item in statement.select
        )

        # Scalar LIMIT sits below prefetch/projection: projection is 1:1,
        # so truncating the filtered batch here yields the same rows while
        # sparing per-row downstream work — and keeps ``rows_emitted``
        # exact (the projection would otherwise count a whole batch before
        # a post-projection limit trimmed it).
        if not has_aggregates and statement.limit is not None:
            pipeline = ops.LimitOperator(pipeline, statement.limit)
            explain.append(f"Limit: {statement.limit}")
            pipeline = self._trace(pipeline, "Limit", plan)

        # ---- high-latency prefetch ----
        before = pipeline
        pipeline = self._maybe_prefetch(statement, pipeline, schema, ctx, plan)
        if pipeline is not before:
            pipeline = self._trace(pipeline, "Prefetch", plan)

        # ---- projection / aggregation ----
        if has_aggregates:
            pipeline, output_schema = self._build_aggregation(
                statement, pipeline, schema, ctx, plan, columnar=columnar
            )
            pipeline = self._trace(pipeline, "Aggregate", plan)
        else:
            if statement.having is not None:
                raise PlanError("HAVING requires aggregation")
            if statement.order_by:
                raise PlanError(
                    "ORDER BY requires a windowed aggregate query (streams "
                    "have no global order to sort)"
                )
            pipeline, output_schema = self._build_projection(
                statement, pipeline, schema, ctx, columnar=columnar
            )
            pipeline = self._trace(pipeline, "Project", plan)

        if statement.into is not None:
            sink = self._table_factory(statement.into)
            pipeline = ops.IntoOperator(pipeline, sink)
            explain.append(f"Into: table {statement.into!r}")
            pipeline = self._trace(pipeline, "Into", plan)

        plan.pipeline = pipeline
        plan.output_schema = output_schema
        return plan

    # -- source --------------------------------------------------------------

    def _build_source(
        self,
        binding: SourceBinding,
        conjuncts: list[ast.Expr],
        plan: PhysicalPlan,
    ) -> Iterable[Row]:
        explain = plan.explain_lines
        if binding.api is None:
            assert binding.rows_factory is not None
            explain.append(f"Scan: registered source {binding.name!r}")
            return binding.rows_factory()

        api = binding.api
        # The backfill window is read *before* the API-filter choice
        # deletes its conjunct: the window conjuncts (created_at bounds)
        # are never API-eligible, so both passes see disjoint conjuncts.
        window = _time_window(conjuncts)
        candidates = extract_api_candidates(conjuncts)
        server_matches = None
        if not candidates:
            explain.append(
                "Scan: twitter firehose (no API-eligible predicate; elevated "
                "access tier)"
            )
            live_rows = _lazy_connection_rows(api.unfiltered, plan)
            return self._maybe_backfill(live_rows, server_matches, window, plan)

        from repro.errors import RateLimitError

        try:
            choice = choose_api_filter(
                api,
                [candidate for _idx, candidate in candidates],
                sample_rate=self._config.sample_rate,
                sample_limit=self._config.sample_limit,
            )
        except RateLimitError:
            # Sampling is metered; when the budget is gone, degrade to the
            # first candidate rather than failing the query.
            from repro.engine.selectivity import FilterChoice, SelectivityEstimate

            fallback = candidates[0][1]
            choice = FilterChoice(
                chosen=fallback,
                estimates=(
                    SelectivityEstimate(
                        candidate=fallback, sample_size=0, matched=0
                    ),
                ),
                sample_size=0,
            )
            explain.append(
                "  (sample budget exhausted; fell back to the first "
                "API-eligible filter)"
            )
        plan.filter_choice = choice
        chosen_index = next(
            idx
            for idx, candidate in candidates
            if candidate is choice.chosen
        )
        # The API applies the chosen conjunct server-side; drop it locally.
        del conjuncts[chosen_index]
        explain.append(f"Scan: twitter via API filter {choice.chosen.description}")
        if len(choice.estimates) > 1:
            explain.extend("  " + line for line in choice.explain().splitlines())
        kwargs = choice.chosen.api_kwargs
        # Backfill rows bypass the server, so the server-side conjunct
        # must be re-applied to them locally.
        server_matches = choice.chosen.matches
        live_rows = _lazy_connection_rows(lambda: api.filter(**kwargs), plan)
        return self._maybe_backfill(live_rows, server_matches, window, plan)

    def _maybe_backfill(
        self,
        live_rows: Iterable[Row],
        server_matches: Callable[[Any], bool] | None,
        window: tuple[float | None, float | None],
        plan: PhysicalPlan,
    ) -> Iterable[Row]:
        """Wrap the live connection in a backfill + live-tail split.

        With a historical store and ``EngineConfig.backfill`` on, the
        query's time window is split at the store's *watermark* (largest
        archived ``created_at``): rows at or below it come straight from
        the indexed SQLite scan — no connection opened, no clock advance
        — and the live tail contributes only rows strictly above it.

        The two runs are timestamp-disjoint by construction, so the
        ordered concatenation *is* the seq-stamped k-way merge from
        ``parallel.py`` degenerated to two pre-sorted runs: the scan
        operator re-stamps batch seqs exactly as the exchange tagger
        would, and downstream operators see one monotone stream. Window
        conjuncts are left in the local filter stage, which makes the
        store's range bounds purely an access-path optimization — a
        superset scan stays correct.
        """
        backfill_on = (
            self._store is not None
            and getattr(self._config, "backfill", False)
        )
        if not backfill_on:
            return live_rows
        store = self._store
        start, end = window
        plan.explain_lines.append(
            "Backfill: historical store "
            f"[{'…' if start is None else f'{start:g}'}, "
            f"{'…' if end is None else f'{end:g}'}) up to the store "
            "watermark, then live tail (timestamp-disjoint merge)"
        )

        def rows() -> Iterator[Row]:
            watermark = store.watermark()
            cut = None
            if watermark is not None:
                # nextafter makes the backfill half-open bound include
                # rows at exactly the watermark.
                cut = math.nextafter(watermark, math.inf)
                if end is not None:
                    cut = min(cut, end)
            served = 0
            if cut is not None and (start is None or start < cut):
                for tweet in store.scan(start, cut):
                    if server_matches is not None and not server_matches(
                        tweet
                    ):
                        continue
                    served += 1
                    yield tweet.to_row()
            plan.backfill_rows = served
            for row in live_rows:
                if cut is not None and row["created_at"] < cut:
                    continue  # history already served this timestamp range
                yield row

        return rows()

    # -- local predicates -----------------------------------------------------

    def _build_filters(
        self,
        conjuncts: list[ast.Expr],
        pipeline: ops.Batches,
        schema: tuple[str, ...],
        ctx: EvalContext,
        plan: PhysicalPlan,
        columnar: bool = False,
    ) -> ops.Batches:
        """The local predicate stage: an eddy or a fixed conjunction.

        With a columnar layout, each conjunct additionally gets a
        vectorized form when its expression supports one (pure
        comparisons / boolean logic / regex — no UDF calls); the
        FilterOperator uses it per ColumnBatch and falls back to the
        scalar closure otherwise. Conjunct order — and therefore
        ``predicate_evaluations`` accounting — is identical either way.
        """
        if not conjuncts:
            return pipeline
        predicate_evals = [
            (
                conjunct.to_sql(),
                compile_expr(conjunct, self._registry, schema, ctx),
            )
            for conjunct in conjuncts
        ]
        if self._config.use_eddy and len(predicate_evals) > 1:
            # The eddy reorders predicates per row; it stays row-wise.
            adaptive = [
                AdaptivePredicate(name, evaluate)
                for name, evaluate in predicate_evals
            ]
            pipeline = EddyOperator(
                pipeline, adaptive, ctx,
                resort_every=self._config.eddy_resort_every,
            )
            plan.explain_lines.append(
                "Filter: eddy over "
                + ", ".join(name for name, _ in predicate_evals)
            )
        else:
            vectorized = 0
            for conjunct, (_name, evaluate) in zip(conjuncts, predicate_evals):
                vector = (
                    compile_vector_expr(conjunct, self._registry, schema, ctx)
                    if columnar
                    else None
                )
                if vector is not None:
                    vectorized += 1
                pipeline = ops.FilterOperator(
                    pipeline, evaluate, ctx, vector_predicate=vector
                )
            note = "Filter: " + " AND ".join(n for n, _ in predicate_evals)
            if vectorized:
                note += f" [vectorized {vectorized}/{len(predicate_evals)}]"
            plan.explain_lines.append(note)
        return pipeline

    # -- join ----------------------------------------------------------------

    def _build_join(
        self,
        statement: ast.SelectStatement,
        left_pipeline: ops.Batches,
        left_schema: tuple[str, ...],
        ctx: EvalContext,
        plan: PhysicalPlan,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> tuple[ops.Batches, tuple[str, ...]]:
        join = statement.join
        assert join is not None
        right_binding = self._sources.get(join.source.lower())
        if right_binding is None:
            from repro.errors import UnknownSourceError

            raise UnknownSourceError(join.source, tuple(sorted(self._sources)))
        # A right side without timestamps is a dimension table: lookup
        # join, no window needed. Two timestamped streams band-join within
        # the WINDOW.
        is_lookup = "created_at" not in {
            n.lower() for n in right_binding.schema
        }
        if not is_lookup and (
            statement.window is None or statement.window.count_based
        ):
            raise PlanError("stream-stream JOIN requires a *time* WINDOW "
                            "clause (streams join within a time band)")
        if right_binding.api is not None:
            right_rows: Iterable[Row] = _lazy_connection_rows(
                right_binding.api.unfiltered, plan
            )
        else:
            assert right_binding.rows_factory is not None
            right_rows = right_binding.rows_factory()

        condition = join.condition
        if not (
            isinstance(condition, ast.BinaryOp)
            and condition.op == "="
            and isinstance(condition.left, ast.FieldRef)
            and isinstance(condition.right, ast.FieldRef)
        ):
            raise PlanError(
                "JOIN ON must be an equality between two field references"
            )
        left_names = {n.lower() for n in left_schema}
        right_names = {n.lower() for n in right_binding.schema}
        names = (condition.left.name.lower(), condition.right.name.lower())
        if names[0] in left_names and names[1] in right_names:
            left_field, right_field = names
        elif names[1] in left_names and names[0] in right_names:
            right_field, left_field = names
        else:
            raise PlanError(
                f"cannot resolve join fields {names[0]!r}, {names[1]!r} "
                "against the two sources"
            )
        left_key = compile_expr(
            ast.FieldRef(left_field), self._registry, left_schema, ctx
        )
        right_key = compile_expr(
            ast.FieldRef(right_field), self._registry, right_binding.schema, ctx
        )
        merged_schema = left_schema + tuple(
            f"r_{name}" if name in left_names else name
            for name in right_binding.schema
            if name != "created_at"
        )
        if is_lookup:
            plan.explain_lines.append(
                f"Join: {statement.source} ⋈ table {join.source} on "
                f"{left_field} = {right_field} (lookup)"
            )
            pipeline: ops.Batches = ops.LookupJoinOperator(
                left_pipeline,
                right_rows,
                left_key,
                right_key,
                tuple(
                    f"r_{name}" if name in left_names else name
                    for name in right_binding.schema
                ),
                ctx,
            )
            return pipeline, merged_schema
        plan.explain_lines.append(
            f"Join: {statement.source} ⋈ {join.source} on "
            f"{left_field} = {right_field}, band {statement.window.size_seconds:g}s"
        )
        pipeline = ops.WindowedJoinOperator(
            left_pipeline,
            right_rows,
            left_key,
            right_key,
            statement.window,
            ctx,
            batch_size=batch_size,
        )
        return pipeline, merged_schema

    # -- high-latency prefetch -------------------------------------------------

    def _maybe_prefetch(
        self,
        statement: ast.SelectStatement,
        pipeline: ops.Batches,
        schema: tuple[str, ...],
        ctx: EvalContext,
        plan: PhysicalPlan,
    ) -> ops.Batches:
        mode = self._config.latency_mode
        if mode not in ("batched", "async"):
            return pipeline

        # Find distinct high-latency calls anywhere in the statement.
        exprs: list[ast.Expr] = [item.expr for item in statement.select
                                 if not isinstance(item.expr, ast.Star)]
        exprs.extend(statement.group_by)
        if statement.having is not None:
            exprs.append(statement.having)
        seen_args: set[str] = set()
        extractors: list[tuple[ManagedCall, Callable[[Row], Any]]] = []
        for expr in exprs:
            for node in ast.walk(expr):
                if not isinstance(node, ast.FuncCall):
                    continue
                if node.name in AGGREGATE_NAMES or node.name not in self._registry:
                    continue
                spec = self._registry.lookup(node.name)
                if not spec.high_latency or not node.args:
                    continue
                key = node.args[0].to_sql()
                dedup = f"{spec.service}:{key}"
                if dedup in seen_args:
                    continue
                seen_args.add(dedup)
                # Resolve through the context, not the session catalog:
                # sharded worker contexts carry locked per-shard proxies.
                managed = ctx.services.get(f"{spec.service}_managed")
                if managed is None:
                    continue
                arg_eval = compile_expr(node.args[0], self._registry, schema, ctx)

                def extract(row: Row, arg_eval=arg_eval) -> Any:
                    value = arg_eval(row, ctx)
                    if value is None or (isinstance(value, str) and not value.strip()):
                        return None
                    return str(value)

                extractors.append((managed, extract))
                if managed not in plan.managed_calls:
                    plan.managed_calls.append(managed)
        if not extractors:
            return pipeline
        plan.explain_lines.append(
            f"Prefetch: {mode} per-batch warm-up for {len(extractors)} "
            "high-latency call(s)"
        )
        return PrefetchOperator(pipeline, extractors, ctx)

    # -- projection ------------------------------------------------------------

    def _build_projection(
        self,
        statement: ast.SelectStatement,
        pipeline: ops.Batches,
        schema: tuple[str, ...],
        ctx: EvalContext,
        columnar: bool = False,
    ) -> tuple[ops.Batches, tuple[str, ...]]:
        items: list[tuple[str, Evaluator]] = []
        vector_items: list[VectorEvaluator | None] = []
        output_names: list[str] = []
        schema_set = {name.lower() for name in schema}
        fused_pairs: list[tuple[str, str]] | None = []
        for item in statement.select:
            if isinstance(item.expr, ast.Star):
                for name in schema:
                    if name.startswith("__"):
                        continue
                    items.append(
                        (name, lambda row, _ctx, name=name: row.get(name))
                    )
                    # Star fields project as whole columns: no per-cell work.
                    vector_items.append(
                        lambda batch, _ctx, name=name: batch.values(name)
                    )
                    if fused_pairs is not None:
                        fused_pairs.append((name, name))
                    output_names.append(name)
                continue
            evaluate = compile_expr(item.expr, self._registry, schema, ctx)
            name = item.output_name
            items.append((name, evaluate))
            vector_items.append(
                compile_vector_expr(item.expr, self._registry, schema, ctx)
                if columnar
                else None
            )
            if (
                fused_pairs is not None
                and isinstance(item.expr, ast.FieldRef)
                and item.expr.name.lower() in schema_set
            ):
                fused_pairs.append((name, item.expr.name.lower()))
            else:
                # A computed item: the fused all-field constructor no
                # longer applies; per-item vector/scalar evaluation runs.
                fused_pairs = None
            output_names.append(name)
        fused = None
        if columnar and fused_pairs:
            if "created_at" not in output_names:
                fused_pairs.append(("created_at", "created_at"))
            fused = build_fused_projector(fused_pairs)
        pipeline = ops.ProjectOperator(
            pipeline, items, ctx,
            vector_items=vector_items if columnar else None,
            fused=fused,
        )
        if "created_at" not in output_names:
            output_names.append("created_at")
        return pipeline, tuple(output_names)

    # -- aggregation -----------------------------------------------------------

    def _build_aggregation(
        self,
        statement: ast.SelectStatement,
        pipeline: ops.Batches,
        schema: tuple[str, ...],
        ctx: EvalContext,
        plan: PhysicalPlan,
        defer: parallel.DeferredOrderLimit | None = None,
        columnar: bool = False,
    ) -> tuple[ops.Batches, tuple[str, ...]]:
        sites: list[AggSite] = []
        by_sql: dict[str, AggSite] = {}

        rewritten_items: list[tuple[str, ast.Expr]] = []
        alias_evals: dict[str, Evaluator] = {}
        for item in statement.select:
            if isinstance(item.expr, ast.Star):
                raise PlanError("SELECT * cannot be combined with aggregates")
            rewritten = _rewrite_aggregates(item.expr, sites, by_sql)
            rewritten_items.append((item.output_name, rewritten))
            if item.alias and not contains_aggregate(item.expr):
                alias_evals[item.alias] = compile_expr(
                    item.expr, self._registry, schema, ctx
                )

        having_rewritten = (
            _rewrite_aggregates(statement.having, sites, by_sql)
            if statement.having is not None
            else None
        )
        order_rewritten = [
            (_rewrite_aggregates(expr, sites, by_sql), desc)
            for expr, desc in statement.order_by
        ]

        env_schema = schema + tuple(site.placeholder for site in sites)

        group_evals = [
            compile_expr(expr, self._registry, schema, ctx, aliases=alias_evals)
            for expr in statement.group_by
        ]
        vector_group_evals = [
            compile_vector_expr(
                expr, self._registry, schema, ctx, aliases=alias_evals
            )
            if columnar
            else None
            for expr in statement.group_by
        ]

        agg_factories = []
        vector_agg_args: list[VectorEvaluator | None] = []
        for site in sites:
            call = site.call
            if len(call.args) != 1:
                raise PlanError(
                    f"aggregate {call.name}() takes exactly one argument"
                )
            count_rows = isinstance(call.args[0], ast.Star)
            if count_rows and call.name != "count":
                raise PlanError(f"only COUNT accepts '*', not {call.name}")
            arg_eval = (
                None
                if count_rows
                else compile_expr(call.args[0], self._registry, schema, ctx,
                                  aliases=alias_evals)
            )
            vector_agg_args.append(
                compile_vector_expr(call.args[0], self._registry, schema, ctx,
                                    aliases=alias_evals)
                if columnar and not count_rows
                else None
            )
            probe = make_aggregate(call.name, call.distinct, count_rows)
            agg_factories.append(
                (
                    lambda call=call, count_rows=count_rows: make_aggregate(
                        call.name, call.distinct, count_rows
                    ),
                    arg_eval,
                    probe.skip_nulls,
                )
            )

        output_items = [
            (
                name,
                compile_expr(expr, self._registry, env_schema, ctx,
                             aliases=alias_evals),
            )
            for name, expr in rewritten_items
        ]
        having_eval = (
            compile_expr(having_rewritten, self._registry, env_schema, ctx,
                         aliases=alias_evals)
            if having_rewritten is not None
            else None
        )
        order_evals = [
            (
                compile_expr(expr, self._registry, env_schema, ctx,
                             aliases=alias_evals),
                desc,
            )
            for expr, desc in order_rewritten
        ]

        output_schema = tuple(name for name, _ in rewritten_items)

        if statement.window is not None:
            if statement.window.count_based:
                plan.explain_lines.append(
                    f"Aggregate: {len(sites)} aggregate(s), "
                    f"{len(group_evals)} group key(s), "
                    f"window {statement.window.size_count} tweets "
                    f"slide {int(statement.window.slide)} tweets"
                )
                pipeline = ops.CountWindowedAggregateOperator(
                    pipeline,
                    statement.window,
                    group_evals,
                    agg_factories,
                    output_items,
                    ctx,
                    having=having_eval,
                    order_by=order_evals,
                    limit=statement.limit,
                )
                return pipeline, output_schema + (
                    "window_start", "window_end", "window_rows"
                )
            plan.explain_lines.append(
                f"Aggregate: {len(sites)} aggregate(s), "
                f"{len(group_evals)} group key(s), "
                f"window {statement.window.size_seconds:g}s "
                f"slide {statement.window.slide:g}s"
            )
            if defer is not None:
                # Sharded: a worker holds only a slice of each window, so
                # ORDER BY / LIMIT move past the merge (WindowFinalize).
                defer.order_evals = order_evals
                defer.limit = statement.limit
            pipeline = ops.WindowedAggregateOperator(
                pipeline,
                statement.window,
                group_evals,
                agg_factories,
                output_items,
                ctx,
                having=having_eval,
                order_by=[] if defer is not None else order_evals,
                limit=None if defer is not None else statement.limit,
                vector_group_evals=vector_group_evals if columnar else None,
                vector_agg_args=vector_agg_args if columnar else None,
            )
            return pipeline, output_schema + ("window_start", "window_end")

        policy: ConfidencePolicy | None = self._config.confidence_policy
        if policy is not None:
            if len(sites) != 1 or sites[0].call.name != "avg":
                raise PlanError(
                    "confidence-triggered emission supports exactly one AVG "
                    "aggregate; add a WINDOW clause for other aggregate mixes"
                )
            if statement.order_by or statement.limit is not None:
                raise PlanError(
                    "ORDER BY / LIMIT are not supported with "
                    "confidence-triggered emission"
                )
            value_eval = agg_factories[0][1]
            assert value_eval is not None
            plan.explain_lines.append(
                "Aggregate: confidence-triggered AVG emission "
                f"(ci≤{policy.ci_halfwidth:g}, z={policy.z:g}, "
                f"max_age={policy.max_age_seconds})"
            )
            pipeline = ConfidenceAggregateOperator(
                pipeline,
                group_evals,
                value_eval,
                output_items,
                ctx,
                policy=policy,
            )
            return pipeline, output_schema + (
                "n", "ci_halfwidth", "emit_reason"
            )

        raise PlanError(
            "aggregate queries need a WINDOW clause (or a session "
            "confidence policy for AVG; see EngineConfig.confidence_policy)"
        )

    # -- sharded execution -----------------------------------------------------

    def _shard_blocker(self, statement: ast.SelectStatement) -> str | None:
        """Why this statement cannot shard, or None when it can.

        Everything listed here depends on a *global* property of the stream
        that hash partitioning destroys: joins see both sides, count-based
        windows bucket by global row ordinal, a global aggregate is one
        group, stateful UDFs fold over arrival order, and ``now()`` reads
        the global stream time. Partial-result emission depends on service
        call *timing*, which thread interleaving would perturb.
        """
        if statement.join is not None:
            return "stream joins need co-partitioned inputs"
        if statement.window is not None and statement.window.count_based:
            return "count-based windows depend on global row ordinals"
        has_aggregates = bool(statement.group_by) or any(
            not isinstance(item.expr, ast.Star) and contains_aggregate(item.expr)
            for item in statement.select
        )
        if has_aggregates and not statement.group_by:
            return "global aggregates form a single group"
        if self._config.latency_mode == "async" and self._config.partial_results:
            return "partial results depend on in-flight call timing"
        exprs: list[ast.Expr] = [
            item.expr
            for item in statement.select
            if not isinstance(item.expr, ast.Star)
        ]
        exprs.extend(split_conjuncts(statement.where))
        exprs.extend(statement.group_by)
        if statement.having is not None:
            exprs.append(statement.having)
        exprs.extend(expr for expr, _desc in statement.order_by)
        for expr in exprs:
            for node in ast.walk(expr):
                if not isinstance(node, ast.FuncCall):
                    continue
                if node.name in AGGREGATE_NAMES or node.name not in self._registry:
                    continue
                if node.name == "now":
                    return "now() reads the global stream time"
                if self._registry.lookup(node.name).stateful:
                    return (
                        f"stateful UDF {node.name}() folds over global "
                        "row order"
                    )
        return None

    def _plan_sharded(
        self,
        statement: ast.SelectStatement,
        binding: SourceBinding,
        workers: int,
        backend: str = "thread",
        backend_notes: tuple[str, ...] = (),
    ) -> PhysicalPlan:
        """Exchange → N worker pipelines → ordered merge.

        The exchange thread pulls the (single) source, hash-partitions on
        the GROUP BY key (aggregates) or tweet id (scalar queries), and
        stamps each row with a global sequence number. Worker pipelines are
        built by the same helpers as the serial plan, each with its own
        EvalContext whose services are lock-guarded proxies. The merge
        reassembles shard outputs into the exact serial emission order (see
        :mod:`repro.engine.parallel`).

        With ``backend="process"`` the worker pipelines run in forked
        child processes instead of threads; the exchange/merge topology,
        ordering contract, and stats surface are unchanged (per-shard
        stats ship back in each child's final result payload).
        """
        merge_ctx = EvalContext(
            clock=self._clock, services=dict(self._services), lane="merge"
        )
        plan = PhysicalPlan(pipeline=iter(()), output_schema=(), ctx=merge_ctx)
        plan.merge_stats = merge_ctx.stats
        plan.tracer = self._make_tracer()
        plan.sanitizer = self._make_sanitizer()
        merge_ctx.tracer = plan.tracer
        self._attach_service_tracers(plan.tracer)
        explain = plan.explain_lines

        conjuncts = split_conjuncts(statement.where)
        source_rows = self._build_source(binding, conjuncts, plan)
        schema = binding.schema

        has_aggregates = bool(statement.group_by) or any(
            not isinstance(item.expr, ast.Star) and contains_aggregate(item.expr)
            for item in statement.select
        )
        windowed_mode = has_aggregates and statement.window is not None
        confidence_mode = (
            has_aggregates
            and statement.window is None
            and self._config.confidence_policy is not None
        )
        if has_aggregates and not windowed_mode and not confidence_mode:
            raise PlanError(
                "aggregate queries need a WINDOW clause (or a session "
                "confidence policy for AVG; see EngineConfig.confidence_policy)"
            )

        batch_size = self._batch_size_for(statement, plan)
        columnar = self._columnar_for(statement, batch_size)
        explain.extend(backend_notes)
        exchange = parallel.ShardedExecution(
            workers, batch_size=batch_size, backend=backend
        )
        exchange.tracer = plan.tracer
        exchange.sanitizer = plan.sanitizer
        exchange_services, exchange_service_stats = parallel.locked_services(
            self._services, exchange.lock
        )
        exchange_ctx = EvalContext(
            clock=self._clock, services=exchange_services,
            tracer=plan.tracer, lane="exchange",
        )
        plan.shard_ctxs.append(exchange_ctx)
        plan.shard_service_stats.append(exchange_service_stats)

        # ---- partition function (runs on the exchange thread) ----
        if has_aggregates:
            aliases: dict[str, Evaluator] = {}
            for item in statement.select:
                if isinstance(item.expr, ast.Star):
                    raise PlanError("SELECT * cannot be combined with aggregates")
                if item.alias and not contains_aggregate(item.expr):
                    aliases[item.alias] = compile_expr(
                        item.expr, self._registry, schema, exchange_ctx
                    )
            key_evals = [
                compile_expr(
                    expr, self._registry, schema, exchange_ctx, aliases=aliases
                )
                for expr in statement.group_by
            ]

            def partition(
                row: Row, seq: int, _evals=key_evals, _ctx=exchange_ctx,
                _n=workers,
            ) -> int:
                key = tuple(evaluate(row, _ctx) for evaluate in _evals)
                return parallel.stable_hash(key) % _n

            partition_desc = "hash(" + ", ".join(
                expr.to_sql() for expr in statement.group_by
            ) + ")"
        elif "tweet_id" in schema:

            def partition(row: Row, seq: int, _n=workers) -> int:
                value = row.get("tweet_id")
                if value is None:
                    return seq % _n
                return parallel.stable_hash(value) % _n

            partition_desc = "hash(tweet_id)"
        else:

            def partition(row: Row, seq: int, _n=workers) -> int:
                return seq % _n

            partition_desc = "round-robin"

        # ---- exchange-side stages ----
        exchange_source: ops.Batches = ops.ScanOperator(
            source_rows, exchange_ctx, batch_size
        )
        exchange_source = self._trace(
            exchange_source, f"Scan({binding.name})", plan, lane="exchange"
        )
        if confidence_mode:
            # Age-out punctuation must reflect *post-filter* rows (the
            # serial operator only sees triggers that passed WHERE), so the
            # WHERE stage runs on the exchange in this mode.
            before = exchange_source
            exchange_source = self._build_filters(
                conjuncts, exchange_source, schema, exchange_ctx, plan
            )
            if exchange_source is not before:
                exchange_source = self._trace(
                    exchange_source, "Filter", plan, lane="exchange"
                )
        explain.append(
            f"Exchange: {partition_desc} over {workers} shards"
            + (" (post-filter, punctuated)" if confidence_mode else "")
            + f" [{backend} backend]"
        )

        # ---- worker pipelines ----
        defer = parallel.DeferredOrderLimit() if windowed_mode else None
        pipelines: list[ops.Batches] = []
        output_schema: tuple[str, ...] = ()
        limit_noted = False
        for index in range(workers):
            worker_services, worker_service_stats = parallel.locked_services(
                self._services, exchange.lock
            )
            lane = f"worker-{index}"
            ctx_w = EvalContext(
                clock=self._clock, services=worker_services,
                tracer=plan.tracer, lane=lane,
            )
            plan.shard_ctxs.append(ctx_w)
            plan.shard_service_stats.append(worker_service_stats)
            # Worker 0 contributes the EXPLAIN lines; the others build
            # against throwaway plans so stages aren't listed N times.
            # The tracer is shared either way — every worker lane probes.
            wplan = (
                plan
                if index == 0
                else PhysicalPlan(pipeline=iter(()), output_schema=(), ctx=ctx_w)
            )
            wplan.tracer = plan.tracer
            wplan.sanitizer = plan.sanitizer
            pipeline: ops.Batches = parallel.ShardScan(
                exchange.shard_input(index), ctx_w, columnar=columnar
            )
            pipeline = self._trace(pipeline, "ShardScan", wplan, lane=lane)
            if not confidence_mode:
                before = pipeline
                pipeline = self._build_filters(
                    conjuncts, pipeline, schema, ctx_w, wplan,
                    columnar=columnar,
                )
                if pipeline is not before:
                    pipeline = self._trace(pipeline, "Filter", wplan, lane=lane)
            # Per-shard scalar LIMIT below projection, as in the serial
            # plan: a shard never emits more than LIMIT rows, and the
            # merge-side LimitOperator enforces the global cap.
            if not has_aggregates and statement.limit is not None:
                pipeline = ops.LimitOperator(pipeline, statement.limit)
                if not limit_noted:
                    explain.append(
                        f"Limit: {statement.limit} "
                        "(per shard, re-applied after merge)"
                    )
                    limit_noted = True
                pipeline = self._trace(pipeline, "Limit", wplan, lane=lane)
            before = pipeline
            pipeline = self._maybe_prefetch(
                statement, pipeline, schema, ctx_w, wplan
            )
            if pipeline is not before:
                pipeline = self._trace(pipeline, "Prefetch", wplan, lane=lane)
            if has_aggregates:
                pipeline, output_schema = self._build_aggregation(
                    statement, pipeline, schema, ctx_w, wplan, defer=defer,
                    columnar=columnar,
                )
                pipeline = self._trace(pipeline, "Aggregate", wplan, lane=lane)
            else:
                if statement.having is not None:
                    raise PlanError("HAVING requires aggregation")
                if statement.order_by:
                    raise PlanError(
                        "ORDER BY requires a windowed aggregate query "
                        "(streams have no global order to sort)"
                    )
                pipeline, output_schema = self._build_projection(
                    statement, pipeline, schema, ctx_w, columnar=columnar
                )
                pipeline = self._trace(pipeline, "Project", wplan, lane=lane)
            if index > 0:
                plan.managed_calls.extend(wplan.managed_calls)
            pipelines.append(pipeline)

        # ---- merge + post-merge stages ----
        if windowed_mode:
            tagger = parallel.window_tagger
            merge_desc = "window end"
        elif confidence_mode:
            tagger = parallel.confidence_tagger
            merge_desc = "emission trigger"
        else:
            tagger = parallel.scalar_tagger
            merge_desc = "stream order"
        exchange.configure(
            exchange_source,
            partition,
            pipelines,
            [tagger] * workers,
            broadcast_punctuation=confidence_mode,
            # shard_ctxs[0] / shard_service_stats[0] belong to the exchange
            # stage, which always runs in the parent; only worker stats
            # need to travel back across a process boundary.
            worker_ctxs=plan.shard_ctxs[1:],
            worker_service_stats=plan.shard_service_stats[1:],
        )
        merged: ops.Batches = exchange.merged()
        merged = self._trace(merged, "Merge", plan, lane="merge")
        explain.append(f"Merge: {workers}-way ordered merge on {merge_desc}")
        if defer is not None and (defer.order_evals or defer.limit is not None):
            merged = parallel.WindowFinalizeOperator(
                merged, defer.order_evals, defer.limit, merge_ctx
            )
            explain.append("Finalize: per-window ORDER BY / LIMIT after merge")
            merged = self._trace(merged, "Finalize", plan, lane="merge")
        if not has_aggregates and statement.limit is not None:
            merged = ops.LimitOperator(merged, statement.limit)
            merged = self._trace(merged, "Limit", plan, lane="merge")
        merged = parallel.CountingOperator(merged, merge_ctx)
        if statement.into is not None:
            sink = self._table_factory(statement.into)
            merged = ops.IntoOperator(merged, sink)
            explain.append(f"Into: table {statement.into!r}")
        # The Output probe wraps the counting stage, so its row total is
        # the authoritative post-merge emission count reconcile() checks.
        merged = self._trace(merged, "Output", plan, lane="merge")

        plan.pipeline = merged
        plan.output_schema = output_schema
        plan.closers.append(exchange.shutdown)
        return plan
