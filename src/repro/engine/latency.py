"""High-latency operator machinery.

The paper: web-service UDF requests "optimistically take hundreds of
milliseconds apiece, but incur little processing cost on behalf of the
query processor … We employ caching to avoid requests, and batching when an
API allows multiple simultaneous requests", and points to asynchronous
iteration (Goldman & Widom's WSQ/DSQ) as the design for overlapping
necessary requests with stream processing.

:class:`ManagedCall` wraps one :class:`~repro.geo.service.SimulatedWebService`
with all three techniques, selected by mode:

- ``blocking`` — the naive baseline: one synchronous round trip per call.
- ``cached``   — an LRU (optionally TTL) cache in front of blocking calls;
  repeated keys (Zipf-distributed profile locations!) skip the trip.
- ``batched``  — cache plus a prefetch path that resolves many pending keys
  in one batch round trip.
- ``async``    — cache plus a bounded pool of in-flight asynchronous
  requests; prefetched keys resolve while the stream flows, and a consumer
  that needs an unresolved key stalls only until *that* request lands.

:class:`PrefetchOperator` gives batched/async modes their lookahead
structurally: each :class:`~repro.engine.types.RowBatch` flowing through it
has its service keys extracted, deduplicated, and handed to ``prefetch()``
as one call — by the time the batch's rows reach the projection, every
result is cached or in flight. The batch size *is* the lookahead.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator
from dataclasses import dataclass
from typing import Any

from repro.engine.resilience import ResilientService
from repro.engine.types import EvalContext, Row, RowBatch
from repro.errors import ServiceError
from repro.geo.service import SimulatedWebService
from repro.storage.cache import LRUCache

#: Valid ManagedCall modes.
MODES = ("blocking", "cached", "batched", "async")


@dataclass
class ManagedCallStats:
    """Call accounting on top of the underlying service's own stats.

    ``stall_seconds`` is time a consumer spent *blocked* waiting for a
    value it needed right then; ``prefetch_seconds`` is time spent in
    batch-prefetch round trips ahead of need. The E5 benchmark compares
    modes on stalls, so the two must not be conflated.
    """

    calls: int = 0
    cache_hits: int = 0
    stalls: int = 0
    stall_seconds: float = 0.0
    prefetch_seconds: float = 0.0
    prefetched: int = 0
    partials: int = 0

    def as_dict(self) -> dict[str, float]:
        return {
            "calls": self.calls,
            "cache_hits": self.cache_hits,
            "stalls": self.stalls,
            "stall_seconds": round(self.stall_seconds, 6),
            "prefetch_seconds": round(self.prefetch_seconds, 6),
            "prefetched": self.prefetched,
            "partials": self.partials,
        }


class ManagedCall:
    """A service call wrapped with caching, batching, and async prefetch.

    Args:
        service: the simulated remote service — raw, or wrapped in a
            :class:`~repro.engine.resilience.ResilientService` when the
            session enabled retries (the two expose the same surface).
        mode: one of :data:`MODES`.
        cache_capacity: LRU size for the non-blocking modes.
        cache_ttl: optional TTL in virtual seconds.
        pool_depth: max concurrent in-flight async requests.
        negative_cache: cache failures (``None``) too — a location that
            didn't geocode a second ago still won't.
        partial_results: in ``async`` mode, never stall on an in-flight
            request — return ``None`` now (counted in ``stats.partials``)
            and let the landed value serve *later* rows. The paper points
            at Raman & Hellerstein's partial-results data model as the
            design that would permit exactly this trade of completeness
            for zero blocking.

    Calling the instance resolves one key to a value (``None`` on service
    failure). ``prefetch(keys)`` warms the cache ahead of need; it is a
    no-op in ``blocking`` and ``cached`` modes.
    """

    def __init__(
        self,
        service: SimulatedWebService | ResilientService,
        mode: str = "cached",
        cache_capacity: int = 10_000,
        cache_ttl: float | None = None,
        pool_depth: int = 8,
        negative_cache: bool = True,
        partial_results: bool = False,
    ) -> None:
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
        if pool_depth <= 0:
            raise ValueError("pool_depth must be positive")
        if partial_results and mode != "async":
            raise ValueError("partial_results requires async mode")
        self._partial_results = partial_results
        self._service = service
        self._mode = mode
        self._clock = service.clock
        self._negative_cache = negative_cache
        self._pool_depth = pool_depth
        self._cache: LRUCache | None = None
        if mode != "blocking":
            self._cache = LRUCache(
                capacity=cache_capacity,
                ttl_seconds=cache_ttl,
                clock=self._clock if cache_ttl is not None else None,
            )
        #: key → virtual completion time of the in-flight async request.
        self._in_flight: dict[Any, float] = {}
        self.stats = ManagedCallStats()
        #: Span recorder (set by the planner when tracing is on). Checked
        #: once per service interaction, never per row.
        self.tracer: Any = None

    @property
    def mode(self) -> str:
        return self._mode

    @property
    def cache(self) -> LRUCache | None:
        return self._cache

    @property
    def service(self) -> SimulatedWebService | ResilientService:
        return self._service

    # -- resolution ----------------------------------------------------------

    def __call__(self, key: Any) -> Any:
        """Resolve one key, using whatever the mode has already arranged."""
        self.stats.calls += 1
        if self._cache is not None and self._cache.contains(key):
            self.stats.cache_hits += 1
            return self._cache.get(key)
        if self._partial_results:
            # Partial-results mode: never block. If the value is in flight,
            # report "unknown yet"; if it was never requested, launch it
            # asynchronously (pool permitting) and still answer NULL now.
            # Later rows with the same key get the landed value.
            if key not in self._in_flight and len(self._in_flight) < self._pool_depth:
                self._launch_async(key)
            self.stats.partials += 1
            return None
        if key in self._in_flight:
            # The async request is still in the air: stall until it lands.
            done_at = self._in_flight[key]
            stall = max(0.0, done_at - self._clock.now)
            self.stats.stalls += 1
            self.stats.stall_seconds += stall
            before = self._clock.now
            self._clock.advance_to(max(done_at, self._clock.now))
            if self.tracer is not None:
                self.tracer.add(
                    self._service.name, "stall", before, self._clock.now,
                    lane="services", key=str(key), path="in_flight",
                )
            # The completion callback has now run and populated the cache.
            if self._cache is not None and self._cache.contains(key):
                self.stats.cache_hits += 1
                return self._cache.get(key)
        return self._request_blocking(key)

    def _request_blocking(self, key: Any) -> Any:
        before = self._clock.now
        try:
            value = self._service.request(key)
        except ServiceError:
            value = None
        self.stats.stall_seconds += self._clock.now - before
        self.stats.stalls += 1
        if self.tracer is not None:
            self.tracer.add(
                self._service.name, "service", before, self._clock.now,
                lane="services", key=str(key), path="blocking",
                failed=value is None,
            )
        self._store(key, value)
        return value

    def _store(self, key: Any, value: Any) -> None:
        if self._cache is None:
            return
        if value is None and not self._negative_cache:
            return
        self._cache.put(key, value)

    # -- prefetch paths --------------------------------------------------------

    def prefetch(self, keys: Iterable[Any]) -> None:
        """Warm the cache for keys about to be needed.

        Deduplicates against the cache and in-flight set. Batched mode
        resolves misses with batch round trips; async mode launches
        requests into the bounded pool; other modes ignore the hint.
        """
        if self._mode not in ("batched", "async"):
            return
        pending: list[Any] = []
        seen: set[Any] = set()
        for key in keys:
            if key is None or key in seen:
                continue
            seen.add(key)
            if self._cache is not None and self._cache.contains(key):
                continue
            if key in self._in_flight:
                continue
            pending.append(key)
        if not pending:
            return
        if self._mode == "batched":
            self._prefetch_batched(pending)
        else:
            self._prefetch_async(pending)

    def _prefetch_batched(self, keys: list[Any]) -> None:
        limit = self._service.max_batch_size
        for start in range(0, len(keys), limit):
            chunk = keys[start : start + limit]
            before = self._clock.now
            try:
                results = self._service.request_batch(chunk)
            except ServiceError:
                results = [None] * len(chunk)
            # A prefetch round trip is work done ahead of need, not a
            # consumer stall — account it separately.
            self.stats.prefetch_seconds += self._clock.now - before
            if self.tracer is not None:
                self.tracer.add(
                    self._service.name, "service", before, self._clock.now,
                    lane="services", path="batch", keys=len(chunk),
                )
            for key, value in zip(chunk, results):
                if isinstance(value, Exception):
                    # A transiently failed item stays uncached: the
                    # consumer's blocking fallback (retried, when the
                    # session enabled retries) gets a fresh shot instead
                    # of reading a pinned NULL.
                    continue
                self._store(key, value)
                self.stats.prefetched += 1

    def _prefetch_async(self, keys: list[Any]) -> None:
        for key in keys:
            while len(self._in_flight) >= self._pool_depth:
                if self._partial_results:
                    # Never block: drop the hint; the key is either
                    # prefetched by a later refill or answered as partial.
                    return
                # Pool full: wait for an in-flight request to land.
                before = self._clock.now
                self.stats.stalls += 1
                self._await_in_flight()
                self.stats.stall_seconds += self._clock.now - before
                if self.tracer is not None:
                    self.tracer.add(
                        self._service.name, "stall", before, self._clock.now,
                        lane="services", path="pool_full",
                    )
            self._launch_async(key)
            self.stats.prefetched += 1

    def _launch_async(self, key: Any) -> None:
        """Fire one async request (caller has checked the pool)."""

        def on_done(value: Any, error: Exception | None, key=key) -> None:
            self._in_flight.pop(key, None)
            if error is not None:
                # A late final failure (the retried async chain gave up
                # after a consumer already resolved the key via the
                # blocking fallback) must not clobber the landed value.
                if self._cache is not None and self._cache.contains(key):
                    return
                self._store(key, None)
                return
            # Success always lands — including over a prior negative entry.
            self._store(key, value)

        done_at = self._service.request_async(key, on_done)
        self._in_flight[key] = done_at
        if self.tracer is not None:
            # Span covers launch → promised completion; retries land later.
            self.tracer.add(
                self._service.name, "service", self._clock.now, done_at,
                lane="services", key=str(key), path="async",
            )

    def _await_in_flight(self) -> None:
        """Advance the clock until in-flight requests can make progress.

        An entry can outlive its promised completion time when the service
        rescheduled it (an async retry chain); advancing to the clock's
        next pending deadline then makes progress where re-advancing to
        the stale promise would spin.
        """
        earliest = min(self._in_flight.values())
        if earliest > self._clock.now:
            self._clock.advance_to(earliest)
            return
        deadline = self._clock.next_deadline()
        if deadline is None:
            # Nothing scheduled can resolve these; don't spin forever.
            self._in_flight.clear()
            return
        self._clock.advance_to(max(deadline, self._clock.now))

    def drain(self) -> None:
        """Wait for every in-flight async request (end-of-stream cleanup)."""
        while self._in_flight:
            self._await_in_flight()


class PrefetchOperator:
    """Warms managed calls with each batch's service keys before release.

    For every batch flowing through, each managed call receives the keys
    the batch's rows will need as one ``prefetch()`` call — deduplicated
    within the batch, with NULL keys and punctuation rows skipped — then
    the batch passes downstream unchanged. By the time the projection
    evaluates ``latitude(loc)``, the geocode result is cached or in
    flight; the engine's batch size is the prefetch lookahead, so one
    batch round trip amortizes over up to ``batch_size`` distinct keys.
    """

    def __init__(
        self,
        child: Iterable[RowBatch],
        extractors: list[tuple[ManagedCall, Callable[[Row], Any]]],
        ctx: EvalContext,
    ) -> None:
        self._child = child
        self._extractors = extractors
        self._ctx = ctx

    def __iter__(self) -> Iterator[RowBatch]:
        extractors = self._extractors
        for batch in self._child:
            if batch.rows:
                for managed, extract in extractors:
                    keys: list[Any] = []
                    seen: set[Any] = set()
                    for row in batch.rows:
                        if "__punct__" in row:
                            continue
                        key = extract(row)
                        if key is None or key in seen:
                            continue
                        seen.add(key)
                        keys.append(key)
                    if keys:
                        managed.prefetch(keys)
            yield batch
            if batch.last:
                return
