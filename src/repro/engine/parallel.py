"""Sharded parallel query execution.

The serial engine runs one pull-based batch pipeline per query. This module
adds the ``workers=N`` path: an **exchange** hash-partitions the source
stream across N worker pipelines running in a thread pool, and a
timestamp-ordered **k-way merge** reassembles shard outputs into exactly
the row sequence the serial engine would have produced. Rows cross every
thread boundary in whole batches — the exchange routes one source
:class:`~repro.engine.types.RowBatch` per lock acquisition and ships
routed row-lists per queue operation, and workers ship tagged output
batches back — so queue and lock traffic is per batch, not per row.

Determinism contract
--------------------
Results must be *byte-identical* to the serial engine, order included,
under the virtual clock. Three mechanisms make that hold:

- The exchange stamps every routed row with a global sequence number
  (``__seq__``), strictly increasing in stream order. Scalar pipelines
  propagate it through projection; the merge orders by it, which *is*
  stream order.
- Aggregating pipelines partition by the GROUP BY key, so a group lives
  entirely in one shard and its accumulators see exactly the rows the
  serial engine's would. Emissions are tagged ``(window_end,
  window_start, first-seen seq of the group)`` — the serial engine closes
  windows in increasing end order and emits groups in first-seen order,
  so merging on that tag reproduces its sequence. Per-window ORDER BY /
  LIMIT cannot run shard-locally and are deferred to a post-merge
  finalizer that applies the same sort the serial operator would.
- Confidence-triggered aggregation emits on *triggers* (the row whose
  arrival aged-out or confirmed a group). The exchange runs the WHERE
  stage itself and broadcasts a punctuation carrying each post-filter
  row's timestamp to every other shard, so age-based flushes fire at the
  same triggers as in the serial engine; emissions are tagged with the
  trigger's sequence number.

Thread safety: the virtual clock, the simulated web services, and the
:class:`~repro.engine.latency.ManagedCall` wrappers are single-threaded
constructs. Workers reach them only through :class:`LockedManagedCall`
proxies sharing one lock, which also collect per-shard
:class:`~repro.engine.latency.ManagedCallStats`. Row *values* remain
deterministic because the service resolvers are pure; only latency
accounting depends on thread scheduling.

Known limits (the planner falls back to serial for these): joins,
count-based windows, global aggregates (single group), and statements
calling stateful UDFs or ``now()`` — all of which depend on global row
order that sharding destroys.

Process backend
---------------
``backend="process"`` runs the same exchange/merge protocol with worker
*processes* (``multiprocessing`` fork context) instead of threads, so
CPU-bound shard pipelines execute on real cores rather than time-slicing
one GIL. Fork is mandatory: the configured worker pipelines are closures
over the session (clock, registry, compiled expressions) that cannot be
pickled, but a forked child inherits them wholesale — only *data* crosses
the process boundary. Routed row-lists travel down per-shard
``multiprocessing.Queue``s (pickled), workers transpose them into
ColumnBatches locally, and tagged output rows come back the same way.
When a worker pipeline exhausts, the child ships one final ``result``
payload — its QueryStats counters, per-shard service-stats mirrors, trace
probes, and spans — which the parent folds into the parent-side worker
contexts, so ``handle.stats``, ``handle.service_stats``, EXPLAIN ANALYZE
and ``reconcile()`` report identically to the thread backend. (Worker-lane
*timings* differ: a forked child's virtual clock is frozen, so its batch
spans have zero duration; counts and census are identical.)

The planner only selects the process backend for plans whose worker
pipelines never touch the session clock — statements calling high-latency
(web-service) functions, and confidence-triggered emission, stay on the
thread backend, where :class:`LockedManagedCall` keeps the clock coherent.
"""

from __future__ import annotations

import dataclasses
import queue
import threading
import zlib
from collections.abc import Callable, Iterable, Iterator
from concurrent.futures import ThreadPoolExecutor
from typing import Any

from repro.engine.latency import ManagedCall, ManagedCallStats
from repro.engine.operators import _sort_key
from repro.engine.sanitizer import registered_lock
from repro.engine.types import (
    DEFAULT_BATCH_SIZE,
    Batch,
    ColumnBatch,
    EvalContext,
    Row,
    RowBatch,
)

#: Queue poll interval; every blocking loop re-checks the stop event at
#: this granularity so shutdown is prompt.
_POLL_SECONDS = 0.05

_END = object()


def stable_hash(value: Any) -> int:
    """Process-stable hash for partition keys.

    Python's builtin ``hash`` is salted for strings, so two runs (or the
    equivalence test's serial/sharded sessions under different
    PYTHONHASHSEED) would partition differently. CRC32 over ``repr`` is
    stable, cheap, and defined for every value a group key can hold.
    """
    return zlib.crc32(repr(value).encode("utf-8", "backslashreplace"))


# ---------------------------------------------------------------------------
# Locked service proxies
# ---------------------------------------------------------------------------


_MANAGED_FIELDS = tuple(f.name for f in dataclasses.fields(ManagedCallStats))


class LockedManagedCall:
    """A thread-safe façade over a shared :class:`ManagedCall`.

    All forwarded operations hold ``lock`` (shared with the exchange's
    source pulls) because the underlying call advances the virtual clock
    and mutates its cache. The proxy's own ``stats`` mirror accumulates
    the *delta* each forwarded operation produced, giving per-shard
    ManagedCallStats on top of the service's global counters.
    """

    def __init__(self, inner: ManagedCall, lock: threading.RLock) -> None:
        self._inner = inner
        self._lock = lock
        self.stats = ManagedCallStats()

    @property
    def mode(self) -> str:
        return self._inner.mode

    @property
    def cache(self):
        return self._inner.cache

    @property
    def service(self):
        return self._inner.service

    def _snapshot(self) -> tuple:
        return tuple(getattr(self._inner.stats, f) for f in _MANAGED_FIELDS)

    def _accumulate(self, before: tuple) -> None:
        after = self._snapshot()
        for name, b, a in zip(_MANAGED_FIELDS, before, after):
            setattr(self.stats, name, getattr(self.stats, name) + (a - b))

    def __call__(self, key: Any) -> Any:
        with self._lock:
            before = self._snapshot()
            try:
                return self._inner(key)
            finally:
                self._accumulate(before)

    def prefetch(self, keys: Iterable[Any]) -> None:
        keys = list(keys)
        with self._lock:
            before = self._snapshot()
            try:
                self._inner.prefetch(keys)
            finally:
                self._accumulate(before)

    def drain(self) -> None:
        with self._lock:
            self._inner.drain()


def locked_services(
    services: dict[str, Any], lock: threading.RLock
) -> tuple[dict[str, Any], dict[str, ManagedCallStats]]:
    """Wrap every ManagedCall in ``services`` with a locking proxy.

    Returns the proxied mapping plus {service name → per-shard stats
    mirror}. Aliases of one ManagedCall (``geocode`` / ``geocode_managed``)
    share one proxy so the mirror is not double-counted.
    """
    proxies: dict[str, Any] = {}
    by_id: dict[int, LockedManagedCall] = {}
    stats: dict[str, ManagedCallStats] = {}
    for name, svc in services.items():
        if isinstance(svc, ManagedCall):
            proxy = by_id.get(id(svc))
            if proxy is None:
                proxy = LockedManagedCall(svc, lock)
                by_id[id(svc)] = proxy
                stats[svc.service.name] = proxy.stats
            proxies[name] = proxy
        else:
            proxies[name] = svc
    return proxies, stats


# ---------------------------------------------------------------------------
# Output taggers (worker side): strip ordering metadata into a merge tag
# ---------------------------------------------------------------------------


def scalar_tagger(row: Row) -> tuple[tuple, Row]:
    """Scalar pipelines: merge on the source row's global sequence."""
    return (row.pop("__seq__"),), row


def window_tagger(row: Row) -> tuple[tuple, Row]:
    """Windowed aggregates: (window end, window start, group-first-seen)."""
    seq = row.pop("__seq__")
    return (row["window_end"], row["window_start"], seq), row


def confidence_tagger(row: Row) -> tuple[tuple, Row]:
    """Confidence emissions carry their full order tag (see confidence.py)."""
    return row.pop("__order__"), row


# ---------------------------------------------------------------------------
# Worker-side stages
# ---------------------------------------------------------------------------


class ShardScan:
    """Worker-side source adapter over a shard's input queue.

    Wraps each routed row-list the exchange shipped into a
    :class:`~repro.engine.types.RowBatch` and advances the worker
    context's stream time like a ScanOperator, but does *not* count
    ``rows_scanned`` — the exchange's scan already counted every source
    row once, matching the serial engine's counter. A final empty
    ``last`` batch punctuates end of input.
    """

    def __init__(
        self,
        source: Iterable[list[Row]],
        ctx: EvalContext,
        columnar: bool = False,
    ) -> None:
        self._source = source
        self._ctx = ctx
        self._columnar = columnar

    def __iter__(self) -> Iterator[Batch]:
        ctx = self._ctx
        columnar = self._columnar
        seq = 0
        for rows in self._source:
            stream_time = ctx.stream_time
            for row in rows:
                timestamp = row.get("created_at")
                if timestamp is not None and timestamp > stream_time:
                    stream_time = timestamp
            ctx.stream_time = stream_time
            if columnar:
                # Routed row-lists transpose here, on the worker's side of
                # the queue (and, for the process backend, of the fork).
                yield ColumnBatch.from_rows(rows, seq=seq)
            else:
                yield RowBatch(rows, seq=seq)
            seq += 1
        yield RowBatch([], seq=seq, last=True)


@dataclasses.dataclass
class DeferredOrderLimit:
    """Per-window ORDER BY / LIMIT stripped from shard-local aggregation.

    A worker only holds a slice of each window's groups, so ordering and
    capping move to :class:`WindowFinalizeOperator` after the merge. The
    planner fills this while building the worker pipelines.
    """

    order_evals: list[tuple[Callable, bool]] = dataclasses.field(
        default_factory=list
    )
    limit: int | None = None


# ---------------------------------------------------------------------------
# Post-merge stages
# ---------------------------------------------------------------------------


class WindowFinalizeOperator:
    """Applies per-window ORDER BY / LIMIT after the merge.

    Workers cannot order or cap a window they only hold a slice of, so the
    sharded planner strips both from the per-shard aggregate operators and
    re-applies them here, over the merged stream, with exactly the serial
    operator's stable sort and NULL ordering. The merged stream arrives
    grouped by window (the merge orders on window bounds), so one bucket
    is buffered at a time.
    """

    def __init__(
        self,
        child: Iterable[RowBatch],
        order_by: list[tuple[Callable, bool]],
        limit: int | None,
        ctx: EvalContext,
    ) -> None:
        self._child = child
        self._order_by = order_by
        self._limit = limit
        self._ctx = ctx

    def __iter__(self) -> Iterator[RowBatch]:
        bucket: list[Row] = []
        current: tuple | None = None
        seq = 0
        for batch in self._child:
            finalized: list[Row] = []
            for row in batch.rows:
                bounds = (row.get("window_end"), row.get("window_start"))
                if current is not None and bounds != current:
                    finalized.extend(self._flush(bucket))
                    bucket = []
                current = bounds
                bucket.append(row)
            if finalized:
                yield RowBatch(finalized, seq=seq)
                seq += 1
            if batch.last:
                break
        yield RowBatch(list(self._flush(bucket)), seq=seq, last=True)

    def _flush(self, bucket: list[Row]) -> list[Row]:
        for evaluate, descending in reversed(self._order_by):
            bucket.sort(
                key=lambda r, e=evaluate: _sort_key(e(r, self._ctx)),
                reverse=descending,
            )
        if self._limit is not None:
            bucket = bucket[: self._limit]
        return bucket


class CountingOperator:
    """Counts merged output rows into the merge context's stats.

    Per-shard ``rows_emitted`` counters over-count when a per-worker or
    per-window LIMIT trims rows at the merge, so the aggregated stats take
    ``rows_emitted`` from this counter instead of the shard sum.
    """

    def __init__(self, child: Iterable[RowBatch], ctx: EvalContext) -> None:
        self._child = child
        self._ctx = ctx

    def __iter__(self) -> Iterator[RowBatch]:
        stats = self._ctx.stats
        for batch in self._child:
            stats.rows_emitted += len(batch.rows)
            yield batch
            if batch.last:
                return


# ---------------------------------------------------------------------------
# The execution fabric: exchange thread, worker threads, merging consumer
# ---------------------------------------------------------------------------


class _ShardInput:
    """Iterable of routed row-lists a worker's ShardScan pulls; fed by the
    exchange. Each item is one whole exchange batch — queue traffic is per
    batch, not per row."""

    def __init__(
        self,
        q: queue.Queue,
        stop: threading.Event,
        sanitizer: Any = None,
        shard: int = 0,
    ) -> None:
        self._q = q
        self._stop = stop
        self._sanitizer = sanitizer
        self._shard = shard

    def __iter__(self) -> Iterator[list[Row]]:
        sanitizer = self._sanitizer
        while True:
            try:
                batch = self._q.get(timeout=_POLL_SECONDS)
            except queue.Empty:
                if self._stop.is_set():
                    return
                continue
            if batch is None:  # sentinel: source exhausted
                return
            if sanitizer is not None:
                sanitizer.handoff.verify(self._shard, batch)
            yield batch


class ShardedExecution:
    """Runs N worker pipelines over a hash-partitioned stream.

    Lifecycle: the planner constructs it, builds the worker pipelines over
    :meth:`shard_input` iterables, then calls :meth:`configure`. Threads
    start lazily on the first pull of :meth:`merged` (planning/EXPLAIN must
    not spawn threads). :meth:`shutdown` is idempotent and joins every
    thread; the merge generator invokes it from its ``finally`` so natural
    exhaustion, an abandoned iterator (GC), and ``QueryHandle.close`` all
    tear the fabric down.

    Queues: worker inputs are bounded (backpressure on the exchange);
    worker outputs are unbounded — a worker never blocks on output, so it
    always drains its input, so the exchange always makes progress, so the
    merge (which may wait a long time on a sparse shard) cannot deadlock
    the pipeline. The cost is buffering fast shards' results while a slow
    shard catches up.
    """

    def __init__(
        self,
        n_workers: int,
        batch_size: int = DEFAULT_BATCH_SIZE,
        backend: str = "thread",
    ) -> None:
        if n_workers < 2:
            raise ValueError("sharded execution needs at least 2 workers")
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        if backend not in ("thread", "process"):
            raise ValueError(f"unknown shard backend {backend!r}")
        self.n = n_workers
        self.backend = backend
        self.lock = registered_lock("sharded.services", rlock=True)
        self._mp: Any = None
        if backend == "process":
            import multiprocessing

            # Fork is required: worker pipelines are unpicklable closures
            # that a forked child inherits for free. The planner verifies
            # availability before choosing this backend.
            self._mp = multiprocessing.get_context("fork")
            self.stop = self._mp.Event()
            self._in = [self._mp.Queue(maxsize=64) for _ in range(n_workers)]
            self._out = [self._mp.Queue() for _ in range(n_workers)]
            self._done = [self._mp.Event() for _ in range(n_workers)]
        else:
            self.stop = threading.Event()
            self._in = [queue.Queue(maxsize=64) for _ in range(n_workers)]
            self._out = [queue.Queue() for _ in range(n_workers)]
            self._done = [threading.Event() for _ in range(n_workers)]
        self._batch = batch_size
        #: Per-shard tagged rows already pulled off the output queue but not
        #: yet consumed by the merge heap (workers ship whole batches).
        self._pending: list[list[tuple[tuple, Row]]] = [
            [] for _ in range(n_workers)
        ]
        self._pending_pos = [0] * n_workers
        self._error: BaseException | None = None
        self._error_lock = registered_lock("sharded.error")
        self._pool: ThreadPoolExecutor | None = None
        self._procs: list[Any] = []
        self._started = False
        self._closed = False
        #: Span recorder (set by the planner when tracing is on); the
        #: exchange thread emits one ``route`` marker per source batch.
        self.tracer: Any = None
        #: Invariant checker (set by the planner when sanitize mode is
        #: on); the exchange fingerprints each routed row-list at enqueue
        #: and the worker-side ShardScan input verifies it at dequeue
        #: (TQL905). Thread backend only — the process backend pickles
        #: payloads across the fork, so copies cannot alias.
        self.sanitizer: Any = None
        # Filled by configure():
        self._source: Iterable[Batch] | None = None
        self._partition: Callable[[Row, int], int] | None = None
        self._pipelines: list[Iterable[Batch]] = []
        self._taggers: list[Callable[[Row], tuple[tuple, Row]]] = []
        self._broadcast_punctuation = False
        self._worker_ctxs: list[EvalContext] = []
        self._worker_service_stats: list[dict[str, ManagedCallStats]] = []
        self._result_applied = [False] * n_workers

    # -- wiring ----------------------------------------------------------------

    def shard_input(self, worker: int) -> _ShardInput:
        """The row iterable worker ``worker``'s pipeline scans."""
        sanitizer = self.sanitizer if self.backend == "thread" else None
        return _ShardInput(self._in[worker], self.stop, sanitizer, worker)

    def configure(
        self,
        source: Iterable[Batch],
        partition: Callable[[Row, int], int],
        pipelines: list[Iterable[Batch]],
        taggers: list[Callable[[Row], tuple[tuple, Row]]],
        broadcast_punctuation: bool = False,
        worker_ctxs: list[EvalContext] | None = None,
        worker_service_stats: list[dict[str, ManagedCallStats]] | None = None,
    ) -> None:
        """Attach the source, partitioner, and built worker pipelines.

        ``worker_ctxs`` / ``worker_service_stats`` are the parent-side
        per-shard contexts and ManagedCall mirrors; the process backend
        folds each child's end-of-stream result payload into them so the
        observability surface matches the thread backend.
        """
        self._source = source
        self._partition = partition
        self._pipelines = pipelines
        self._taggers = taggers
        self._broadcast_punctuation = broadcast_punctuation
        self._worker_ctxs = worker_ctxs or []
        self._worker_service_stats = worker_service_stats or []

    # -- threads ---------------------------------------------------------------

    def _record_error(self, error: BaseException) -> None:
        with self._error_lock:
            if self._error is None:
                self._error = error
        self.stop.set()

    def _raise_if_error(self) -> None:
        with self._error_lock:
            error = self._error
        if error is not None:
            self.stop.set()
            raise error

    def _exchange(self) -> None:
        """Producer: pull source batches, partition their rows, and route.

        Whole batches move under one lock acquisition and whole routed
        row-lists move per queue operation — the synchronization cost is
        per batch, not per row.
        """
        assert self._source is not None and self._partition is not None
        partition = self._partition
        broadcast = self._broadcast_punctuation
        pending: list[list[Row]] = [[] for _ in range(self.n)]
        try:
            iterator = iter(self._source)
            seq = 0
            while True:
                if self.stop.is_set():
                    return  # cancelled: no sentinels, workers see stop
                if all(done.is_set() for done in self._done):
                    break
                # Source pulls share the service lock: the stream advances
                # the virtual clock, and so do worker service calls.
                with self.lock:
                    batch = next(iterator, _END)
                if batch is _END:
                    break
                if self.tracer is not None:
                    self.tracer.instant(
                        "route", "exchange", lane="exchange",
                        seq=batch.seq, rows=len(batch.rows), last=batch.last,
                    )
                for row in batch.rows:
                    shard = partition(row, seq)
                    tagged = dict(row)  # never mutate caller-owned row dicts
                    tagged["__seq__"] = seq
                    pending[shard].append(tagged)
                    if broadcast:
                        timestamp = row.get("created_at")
                        for other in range(self.n):
                            if other != shard:
                                pending[other].append(
                                    {
                                        "__punct__": True,
                                        "created_at": timestamp,
                                        "__seq__": seq,
                                    }
                                )
                    seq += 1
                for shard_id, routed in enumerate(pending):
                    if len(routed) >= self._batch:
                        self._put_batch(shard_id, routed)
                        pending[shard_id] = []
                if batch.last:
                    break
        except BaseException as error:  # noqa: BLE001 — surfaced at the merge
            self._record_error(error)
            return
        finally:
            if not self.stop.is_set():
                for shard_id, routed in enumerate(pending):
                    if routed:
                        self._put_batch(shard_id, routed)
                    self._put_batch(shard_id, None)

    def _put_batch(self, shard: int, batch: list[Row] | None) -> None:
        if (
            batch is not None
            and self.sanitizer is not None
            and self.backend == "thread"
        ):
            # Freeze-on-handoff: fingerprint the routed payload before it
            # becomes visible to the worker; the worker-side _ShardInput
            # re-fingerprints at dequeue and raises TQL905 on mismatch.
            self.sanitizer.handoff.seal(shard, batch)
        while not self.stop.is_set():
            if batch is not None and self._done[shard].is_set():
                return  # worker finished early (LIMIT); drop its feed
            try:
                self._in[shard].put(batch, timeout=_POLL_SECONDS)
                return
            except queue.Full:
                continue

    def _worker(self, worker: int) -> None:
        tagger = self._taggers[worker]
        out = self._out[worker]
        try:
            for batch in self._pipelines[worker]:
                if batch.rows:
                    # Ship the whole tagged batch as one queue item.
                    out.put(("rows", [tagger(row) for row in batch.rows]))
                if batch.last:
                    break
        except BaseException as error:  # noqa: BLE001
            self._record_error(error)
        finally:
            self._done[worker].set()
            out.put(("end",))

    # -- process-backend worker (runs in the forked child) ---------------------

    def _worker_process(self, worker: int) -> None:
        tagger = self._taggers[worker]
        out = self._out[worker]
        failed = False
        try:
            for batch in self._pipelines[worker]:
                rows = batch.rows
                if rows:
                    out.put(("rows", [tagger(row) for row in rows]))
                if batch.last:
                    break
        except BaseException as error:  # noqa: BLE001
            failed = True
            self._done[worker].set()
            out.put(("error", _picklable_error(error)))
            out.put(("end",))
        if not failed:
            self._done[worker].set()
            out.put(("result", self._worker_payload(worker)))
            out.put(("end",))

    def _worker_payload(self, worker: int) -> dict[str, Any]:
        """Everything the parent needs to mirror this child's accounting."""
        ctx = self._worker_ctxs[worker]
        payload: dict[str, Any] = {
            "stats": ctx.stats.as_dict(),
            "service_stats": {},
            "probes": [],
            "spans": [],
        }
        if worker < len(self._worker_service_stats):
            payload["service_stats"] = {
                name: dataclasses.asdict(mirror)
                for name, mirror in self._worker_service_stats[worker].items()
            }
        tracer = ctx.tracer
        if tracer is not None:
            lane = ctx.lane
            payload["probes"] = [
                (p.name, p.rows, p.batches, p.wall_seconds, p.first_ts, p.last_ts)
                for p in tracer.probes
                if p.lane == lane
            ]
            payload["spans"] = [
                s.as_dict() for s in tracer.spans if s.lane == lane
            ]
        return payload

    def _apply_result(self, worker: int, payload: dict[str, Any]) -> None:
        """Fold a child's result payload into the parent-side mirrors.

        Assignment, not accumulation: the parent-side worker context never
        ran, so its counters are zero — and re-applying (the shutdown
        drain may race the merge) stays idempotent via ``_result_applied``.
        """
        if self._result_applied[worker]:
            return
        self._result_applied[worker] = True
        if worker >= len(self._worker_ctxs):
            return
        ctx = self._worker_ctxs[worker]
        for name, value in payload.get("stats", {}).items():
            setattr(ctx.stats, name, value)
        if worker < len(self._worker_service_stats):
            mirrors = self._worker_service_stats[worker]
            for name, fields in payload.get("service_stats", {}).items():
                mirror = mirrors.get(name)
                if mirror is not None:
                    for field_name, value in fields.items():
                        setattr(mirror, field_name, value)
        tracer = ctx.tracer
        if tracer is None:
            return
        lane_probes = [p for p in tracer.probes if p.lane == ctx.lane]
        for probe, shipped in zip(lane_probes, payload.get("probes", ())):
            name, rows, batches, wall, first_ts, last_ts = shipped
            if probe.name != name:  # pragma: no cover - defensive
                continue
            probe.rows = rows
            probe.batches = batches
            probe.wall_seconds = wall
            probe.first_ts = first_ts
            probe.last_ts = last_ts
        # Re-emit the child's spans under the parent tracer, remapping ids
        # so batch spans keep pointing at their operator span.
        id_map: dict[int, int] = {}
        for shipped_span in payload.get("spans", ()):
            parent_id = shipped_span.get("parent_id")
            span = tracer.add(
                shipped_span["name"],
                shipped_span["kind"],
                shipped_span["start"],
                shipped_span["end"],
                lane=shipped_span["lane"],
                parent_id=(
                    id_map.get(parent_id) if parent_id is not None else None
                ),
                **shipped_span.get("attrs", {}),
            )
            id_map[shipped_span["span_id"]] = span.span_id

    def start(self) -> None:
        """Spawn the exchange and the workers (idempotent)."""
        if self._started:
            return
        self._started = True
        if self.backend == "process":
            # Fork the workers *before* any parent thread starts pulling
            # the source, so every child inherits the pre-run pipeline
            # state; then run the exchange on a parent thread as usual.
            self._procs = [
                self._mp.Process(
                    target=self._worker_process, args=(worker,), daemon=True
                )
                for worker in range(self.n)
            ]
            for proc in self._procs:
                proc.start()
            self._pool = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="tweeql-shard"
            )
            self._pool.submit(self._exchange)
            return
        self._pool = ThreadPoolExecutor(
            max_workers=self.n + 1, thread_name_prefix="tweeql-shard"
        )
        self._pool.submit(self._exchange)
        for worker in range(self.n):
            self._pool.submit(self._worker, worker)

    def shutdown(self) -> None:
        """Stop every thread/process and join them (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self.stop.set()
        if self._pool is not None:
            self._pool.shutdown(wait=True)
        if self.backend != "process":
            return
        for proc in self._procs:
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - stuck child
                proc.terminate()
                proc.join(timeout=1.0)
        # Salvage any result payloads the merge never reached (early
        # close / LIMIT), so stats stay as truthful as the thread backend's.
        for shard in range(self.n):
            try:
                while True:
                    item = self._out[shard].get_nowait()
                    if item[0] == "result":
                        self._apply_result(shard, item[1])
            except (queue.Empty, OSError, ValueError):
                pass
        for q in list(self._in) + list(self._out):
            q.close()
            q.cancel_join_thread()

    # -- consumer --------------------------------------------------------------

    def merged(self) -> Iterator[RowBatch]:
        """The k-way ordered merge of shard outputs (lazy thread start).

        Consumes whole tagged batches from the worker output queues,
        feeds the heap row by row (ordering is per row), and re-chunks
        the merged sequence into output batches.
        """
        import heapq

        try:
            self.start()
            heap: list[tuple[tuple, int, Row]] = []
            for shard in range(self.n):
                entry = self._next_output(shard)
                if entry is not None:
                    heapq.heappush(heap, entry)
            out: list[Row] = []
            seq = 0
            while heap:
                _tag, shard, row = heapq.heappop(heap)
                out.append(row)
                if len(out) >= self._batch:
                    yield RowBatch(out, seq=seq)
                    seq += 1
                    out = []
                entry = self._next_output(shard)
                if entry is not None:
                    heapq.heappush(heap, entry)
            self._raise_if_error()
            yield RowBatch(out, seq=seq, last=True)
        finally:
            self.shutdown()

    def _next_output(self, shard: int) -> tuple[tuple, int, Row] | None:
        pending = self._pending[shard]
        position = self._pending_pos[shard]
        if position < len(pending):
            tag, row = pending[position]
            self._pending_pos[shard] = position + 1
            return (tag, shard, row)
        while True:
            self._raise_if_error()
            try:
                item = self._out[shard].get(timeout=_POLL_SECONDS)
            except queue.Empty:
                if self.stop.is_set():
                    return None
                if self.backend == "process" and self._dead(shard):
                    from repro.errors import ExecutionError

                    self._record_error(
                        ExecutionError(
                            f"shard {shard} worker process died "
                            f"(exit code {self._procs[shard].exitcode})"
                        )
                    )
                    self._raise_if_error()
                continue
            kind = item[0]
            if kind == "end":
                return None
            if kind == "result":
                self._apply_result(shard, item[1])
                continue
            if kind == "error":
                self._record_error(item[1])
                self._raise_if_error()
                continue
            rows = item[1]
            if not rows:
                continue
            self._pending[shard] = rows
            self._pending_pos[shard] = 1
            tag, row = rows[0]
            return (tag, shard, row)

    def _dead(self, shard: int) -> bool:
        """A child that exited without punctuating its output queue."""
        if shard >= len(self._procs):
            return False
        proc = self._procs[shard]
        if proc.is_alive():
            return False
        try:
            return self._out[shard].empty() and proc.exitcode != 0
        except (OSError, ValueError):  # pragma: no cover - closed queue
            return True


def _picklable_error(error: BaseException) -> BaseException:
    """The error itself when it pickles, else a faithful substitute."""
    import pickle

    try:
        pickle.loads(pickle.dumps(error))
        return error
    except Exception:
        from repro.errors import ExecutionError

        return ExecutionError(f"{type(error).__name__}: {error}")
