"""Sharded parallel query execution.

The serial engine runs one pull-based iterator chain per query. This module
adds the ``workers=N`` path: an **exchange** hash-partitions the source
stream across N worker pipelines running in a thread pool, and a
timestamp-ordered **k-way merge** reassembles shard outputs into exactly
the row sequence the serial engine would have produced.

Determinism contract
--------------------
Results must be *byte-identical* to the serial engine, order included,
under the virtual clock. Three mechanisms make that hold:

- The exchange stamps every routed row with a global sequence number
  (``__seq__``), strictly increasing in stream order. Scalar pipelines
  propagate it through projection; the merge orders by it, which *is*
  stream order.
- Aggregating pipelines partition by the GROUP BY key, so a group lives
  entirely in one shard and its accumulators see exactly the rows the
  serial engine's would. Emissions are tagged ``(window_end,
  window_start, first-seen seq of the group)`` — the serial engine closes
  windows in increasing end order and emits groups in first-seen order,
  so merging on that tag reproduces its sequence. Per-window ORDER BY /
  LIMIT cannot run shard-locally and are deferred to a post-merge
  finalizer that applies the same sort the serial operator would.
- Confidence-triggered aggregation emits on *triggers* (the row whose
  arrival aged-out or confirmed a group). The exchange runs the WHERE
  stage itself and broadcasts a punctuation carrying each post-filter
  row's timestamp to every other shard, so age-based flushes fire at the
  same triggers as in the serial engine; emissions are tagged with the
  trigger's sequence number.

Thread safety: the virtual clock, the simulated web services, and the
:class:`~repro.engine.latency.ManagedCall` wrappers are single-threaded
constructs. Workers reach them only through :class:`LockedManagedCall`
proxies sharing one lock, which also collect per-shard
:class:`~repro.engine.latency.ManagedCallStats`. Row *values* remain
deterministic because the service resolvers are pure; only latency
accounting depends on thread scheduling.

Known limits (the planner falls back to serial for these): joins,
count-based windows, global aggregates (single group), and statements
calling stateful UDFs or ``now()`` — all of which depend on global row
order that sharding destroys.
"""

from __future__ import annotations

import dataclasses
import queue
import threading
import zlib
from collections.abc import Callable, Iterable, Iterator
from concurrent.futures import ThreadPoolExecutor
from typing import Any

from repro.engine.latency import ManagedCall, ManagedCallStats
from repro.engine.operators import _sort_key
from repro.engine.types import EvalContext, Row

#: Queue poll interval; every blocking loop re-checks the stop event at
#: this granularity so shutdown is prompt.
_POLL_SECONDS = 0.05

#: Rows per exchange → worker batch (amortizes queue synchronization).
INPUT_BATCH = 64

_END = object()


def stable_hash(value: Any) -> int:
    """Process-stable hash for partition keys.

    Python's builtin ``hash`` is salted for strings, so two runs (or the
    equivalence test's serial/sharded sessions under different
    PYTHONHASHSEED) would partition differently. CRC32 over ``repr`` is
    stable, cheap, and defined for every value a group key can hold.
    """
    return zlib.crc32(repr(value).encode("utf-8", "backslashreplace"))


# ---------------------------------------------------------------------------
# Locked service proxies
# ---------------------------------------------------------------------------


_MANAGED_FIELDS = tuple(f.name for f in dataclasses.fields(ManagedCallStats))


class LockedManagedCall:
    """A thread-safe façade over a shared :class:`ManagedCall`.

    All forwarded operations hold ``lock`` (shared with the exchange's
    source pulls) because the underlying call advances the virtual clock
    and mutates its cache. The proxy's own ``stats`` mirror accumulates
    the *delta* each forwarded operation produced, giving per-shard
    ManagedCallStats on top of the service's global counters.
    """

    def __init__(self, inner: ManagedCall, lock: threading.RLock) -> None:
        self._inner = inner
        self._lock = lock
        self.stats = ManagedCallStats()

    @property
    def mode(self) -> str:
        return self._inner.mode

    @property
    def cache(self):
        return self._inner.cache

    @property
    def service(self):
        return self._inner.service

    def _snapshot(self) -> tuple:
        return tuple(getattr(self._inner.stats, f) for f in _MANAGED_FIELDS)

    def _accumulate(self, before: tuple) -> None:
        after = self._snapshot()
        for name, b, a in zip(_MANAGED_FIELDS, before, after):
            setattr(self.stats, name, getattr(self.stats, name) + (a - b))

    def __call__(self, key: Any) -> Any:
        with self._lock:
            before = self._snapshot()
            try:
                return self._inner(key)
            finally:
                self._accumulate(before)

    def prefetch(self, keys: Iterable[Any]) -> None:
        keys = list(keys)
        with self._lock:
            before = self._snapshot()
            try:
                self._inner.prefetch(keys)
            finally:
                self._accumulate(before)

    def drain(self) -> None:
        with self._lock:
            self._inner.drain()


def locked_services(
    services: dict[str, Any], lock: threading.RLock
) -> tuple[dict[str, Any], dict[str, ManagedCallStats]]:
    """Wrap every ManagedCall in ``services`` with a locking proxy.

    Returns the proxied mapping plus {service name → per-shard stats
    mirror}. Aliases of one ManagedCall (``geocode`` / ``geocode_managed``)
    share one proxy so the mirror is not double-counted.
    """
    proxies: dict[str, Any] = {}
    by_id: dict[int, LockedManagedCall] = {}
    stats: dict[str, ManagedCallStats] = {}
    for name, svc in services.items():
        if isinstance(svc, ManagedCall):
            proxy = by_id.get(id(svc))
            if proxy is None:
                proxy = LockedManagedCall(svc, lock)
                by_id[id(svc)] = proxy
                stats[svc.service.name] = proxy.stats
            proxies[name] = proxy
        else:
            proxies[name] = svc
    return proxies, stats


# ---------------------------------------------------------------------------
# Output taggers (worker side): strip ordering metadata into a merge tag
# ---------------------------------------------------------------------------


def scalar_tagger(row: Row) -> tuple[tuple, Row]:
    """Scalar pipelines: merge on the source row's global sequence."""
    return (row.pop("__seq__"),), row


def window_tagger(row: Row) -> tuple[tuple, Row]:
    """Windowed aggregates: (window end, window start, group-first-seen)."""
    seq = row.pop("__seq__")
    return (row["window_end"], row["window_start"], seq), row


def confidence_tagger(row: Row) -> tuple[tuple, Row]:
    """Confidence emissions carry their full order tag (see confidence.py)."""
    return row.pop("__order__"), row


# ---------------------------------------------------------------------------
# Worker-side stages
# ---------------------------------------------------------------------------


class ShardScan:
    """Worker-side source adapter over a shard's input queue.

    Advances the worker context's stream time like a ScanOperator but does
    *not* count ``rows_scanned`` — the exchange's scan already counted every
    source row once, matching the serial engine's counter.
    """

    def __init__(self, source: Iterable[Row], ctx: EvalContext) -> None:
        self._source = source
        self._ctx = ctx

    def __iter__(self) -> Iterator[Row]:
        for row in self._source:
            timestamp = row.get("created_at")
            if timestamp is not None and timestamp > self._ctx.stream_time:
                self._ctx.stream_time = timestamp
            yield row


@dataclasses.dataclass
class DeferredOrderLimit:
    """Per-window ORDER BY / LIMIT stripped from shard-local aggregation.

    A worker only holds a slice of each window's groups, so ordering and
    capping move to :class:`WindowFinalizeOperator` after the merge. The
    planner fills this while building the worker pipelines.
    """

    order_evals: list[tuple[Callable, bool]] = dataclasses.field(
        default_factory=list
    )
    limit: int | None = None


# ---------------------------------------------------------------------------
# Post-merge stages
# ---------------------------------------------------------------------------


class WindowFinalizeOperator:
    """Applies per-window ORDER BY / LIMIT after the merge.

    Workers cannot order or cap a window they only hold a slice of, so the
    sharded planner strips both from the per-shard aggregate operators and
    re-applies them here, over the merged stream, with exactly the serial
    operator's stable sort and NULL ordering. The merged stream arrives
    grouped by window (the merge orders on window bounds), so one bucket
    is buffered at a time.
    """

    def __init__(
        self,
        child: Iterable[Row],
        order_by: list[tuple[Callable, bool]],
        limit: int | None,
        ctx: EvalContext,
    ) -> None:
        self._child = child
        self._order_by = order_by
        self._limit = limit
        self._ctx = ctx

    def __iter__(self) -> Iterator[Row]:
        bucket: list[Row] = []
        current: tuple | None = None
        for row in self._child:
            bounds = (row.get("window_end"), row.get("window_start"))
            if current is not None and bounds != current:
                yield from self._flush(bucket)
                bucket = []
            current = bounds
            bucket.append(row)
        yield from self._flush(bucket)

    def _flush(self, bucket: list[Row]) -> Iterator[Row]:
        for evaluate, descending in reversed(self._order_by):
            bucket.sort(
                key=lambda r, e=evaluate: _sort_key(e(r, self._ctx)),
                reverse=descending,
            )
        if self._limit is not None:
            bucket = bucket[: self._limit]
        yield from bucket


class CountingOperator:
    """Counts merged output rows into the merge context's stats.

    Per-shard ``rows_emitted`` counters over-count when a per-worker or
    per-window LIMIT trims rows at the merge, so the aggregated stats take
    ``rows_emitted`` from this counter instead of the shard sum.
    """

    def __init__(self, child: Iterable[Row], ctx: EvalContext) -> None:
        self._child = child
        self._ctx = ctx

    def __iter__(self) -> Iterator[Row]:
        for row in self._child:
            self._ctx.stats.rows_emitted += 1
            yield row


# ---------------------------------------------------------------------------
# The execution fabric: exchange thread, worker threads, merging consumer
# ---------------------------------------------------------------------------


class _ShardInput:
    """Iterable a worker's ScanOperator pulls; fed by the exchange."""

    def __init__(self, q: queue.Queue, stop: threading.Event) -> None:
        self._q = q
        self._stop = stop

    def __iter__(self) -> Iterator[Row]:
        while True:
            try:
                batch = self._q.get(timeout=_POLL_SECONDS)
            except queue.Empty:
                if self._stop.is_set():
                    return
                continue
            if batch is None:  # sentinel: source exhausted
                return
            yield from batch


class ShardedExecution:
    """Runs N worker pipelines over a hash-partitioned stream.

    Lifecycle: the planner constructs it, builds the worker pipelines over
    :meth:`shard_input` iterables, then calls :meth:`configure`. Threads
    start lazily on the first pull of :meth:`merged` (planning/EXPLAIN must
    not spawn threads). :meth:`shutdown` is idempotent and joins every
    thread; the merge generator invokes it from its ``finally`` so natural
    exhaustion, an abandoned iterator (GC), and ``QueryHandle.close`` all
    tear the fabric down.

    Queues: worker inputs are bounded (backpressure on the exchange);
    worker outputs are unbounded — a worker never blocks on output, so it
    always drains its input, so the exchange always makes progress, so the
    merge (which may wait a long time on a sparse shard) cannot deadlock
    the pipeline. The cost is buffering fast shards' results while a slow
    shard catches up.
    """

    def __init__(self, n_workers: int, input_batch: int = INPUT_BATCH) -> None:
        if n_workers < 2:
            raise ValueError("sharded execution needs at least 2 workers")
        self.n = n_workers
        self.lock = threading.RLock()
        self.stop = threading.Event()
        self._batch = input_batch
        self._in: list[queue.Queue] = [queue.Queue(maxsize=64) for _ in range(n_workers)]
        self._out: list[queue.Queue] = [queue.Queue() for _ in range(n_workers)]
        self._done = [threading.Event() for _ in range(n_workers)]
        self._error: BaseException | None = None
        self._error_lock = threading.Lock()
        self._pool: ThreadPoolExecutor | None = None
        self._started = False
        self._closed = False
        # Filled by configure():
        self._source: Iterable[Row] | None = None
        self._partition: Callable[[Row, int], int] | None = None
        self._pipelines: list[Iterable[Row]] = []
        self._taggers: list[Callable[[Row], tuple[tuple, Row]]] = []
        self._broadcast_punctuation = False

    # -- wiring ----------------------------------------------------------------

    def shard_input(self, worker: int) -> _ShardInput:
        """The row iterable worker ``worker``'s pipeline scans."""
        return _ShardInput(self._in[worker], self.stop)

    def configure(
        self,
        source: Iterable[Row],
        partition: Callable[[Row, int], int],
        pipelines: list[Iterable[Row]],
        taggers: list[Callable[[Row], tuple[tuple, Row]]],
        broadcast_punctuation: bool = False,
    ) -> None:
        """Attach the source, partitioner, and built worker pipelines."""
        self._source = source
        self._partition = partition
        self._pipelines = pipelines
        self._taggers = taggers
        self._broadcast_punctuation = broadcast_punctuation

    # -- threads ---------------------------------------------------------------

    def _record_error(self, error: BaseException) -> None:
        with self._error_lock:
            if self._error is None:
                self._error = error
        self.stop.set()

    def _raise_if_error(self) -> None:
        with self._error_lock:
            error = self._error
        if error is not None:
            self.stop.set()
            raise error

    def _exchange(self) -> None:
        """Producer: pull the (single) source, partition, and route."""
        assert self._source is not None and self._partition is not None
        pending: list[list[Row]] = [[] for _ in range(self.n)]
        try:
            iterator = iter(self._source)
            seq = 0
            while True:
                if self.stop.is_set():
                    return  # cancelled: no sentinels, workers see stop
                if all(done.is_set() for done in self._done):
                    break
                # Source pulls share the service lock: the stream advances
                # the virtual clock, and so do worker service calls.
                with self.lock:
                    row = next(iterator, _END)
                if row is _END:
                    break
                shard = self._partition(row, seq)
                tagged = dict(row)  # never mutate caller-owned row dicts
                tagged["__seq__"] = seq
                pending[shard].append(tagged)
                if self._broadcast_punctuation:
                    timestamp = row.get("created_at")
                    for other in range(self.n):
                        if other != shard:
                            pending[other].append(
                                {
                                    "__punct__": True,
                                    "created_at": timestamp,
                                    "__seq__": seq,
                                }
                            )
                seq += 1
                for shard_id, batch in enumerate(pending):
                    if len(batch) >= self._batch:
                        self._put_batch(shard_id, batch)
                        pending[shard_id] = []
        except BaseException as error:  # noqa: BLE001 — surfaced at the merge
            self._record_error(error)
            return
        finally:
            if not self.stop.is_set():
                for shard_id, batch in enumerate(pending):
                    if batch:
                        self._put_batch(shard_id, batch)
                    self._put_batch(shard_id, None)

    def _put_batch(self, shard: int, batch: list[Row] | None) -> None:
        while not self.stop.is_set():
            if batch is not None and self._done[shard].is_set():
                return  # worker finished early (LIMIT); drop its feed
            try:
                self._in[shard].put(batch, timeout=_POLL_SECONDS)
                return
            except queue.Full:
                continue

    def _worker(self, worker: int) -> None:
        tagger = self._taggers[worker]
        out = self._out[worker]
        try:
            for row in self._pipelines[worker]:
                out.put(("row", *tagger(row)))
        except BaseException as error:  # noqa: BLE001
            self._record_error(error)
        finally:
            self._done[worker].set()
            out.put(("end",))

    def start(self) -> None:
        """Spawn the exchange and worker threads (idempotent)."""
        if self._started:
            return
        self._started = True
        self._pool = ThreadPoolExecutor(
            max_workers=self.n + 1, thread_name_prefix="tweeql-shard"
        )
        self._pool.submit(self._exchange)
        for worker in range(self.n):
            self._pool.submit(self._worker, worker)

    def shutdown(self) -> None:
        """Stop every thread and join them (idempotent, safe pre-start)."""
        if self._closed:
            return
        self._closed = True
        self.stop.set()
        if self._pool is not None:
            self._pool.shutdown(wait=True)

    # -- consumer --------------------------------------------------------------

    def merged(self) -> Iterator[Row]:
        """The k-way ordered merge of shard outputs (lazy thread start)."""
        import heapq

        try:
            self.start()
            heap: list[tuple[tuple, int, Row]] = []
            for shard in range(self.n):
                entry = self._next_output(shard)
                if entry is not None:
                    heapq.heappush(heap, entry)
            while heap:
                _tag, shard, row = heapq.heappop(heap)
                yield row
                entry = self._next_output(shard)
                if entry is not None:
                    heapq.heappush(heap, entry)
            self._raise_if_error()
        finally:
            self.shutdown()

    def _next_output(self, shard: int) -> tuple[tuple, int, Row] | None:
        while True:
            self._raise_if_error()
            try:
                item = self._out[shard].get(timeout=_POLL_SECONDS)
            except queue.Empty:
                if self.stop.is_set():
                    return None
                continue
            if item[0] == "end":
                return None
            _kind, tag, row = item
            return (tag, shard, row)
