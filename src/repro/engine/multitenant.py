"""Multi-tenant shared-scan execution.

TwitInfo's demo shape — one query, one stream connection, one scan per
tracked event — is the opposite of how a service with many users runs.
This module adds the shared-scan layer: **one** Firehose connection and
**one** scan per source, with post-scan batches fanned out to every live
tenant query.

Architecture (the fanout protocol)
----------------------------------
A :class:`SharedScanGroup` admits tenant queries *before* the stream
starts (admission control), then runs three kinds of threads, reusing the
exchange/worker substrate of :mod:`repro.engine.parallel`:

- the **fanout** thread pulls source batches through one ScanOperator
  (source pulls hold the group lock — the stream advances the shared
  virtual clock), evaluates every tenant's WHERE conjuncts *fanout-side*
  with a per-row memo keyed by the conjunct's rendered SQL — so a filter
  prefix shared by N tenants is evaluated **once** per row, not N times —
  and routes passing rows into per-tenant bounded queues;
- one **tenant worker** thread per query runs the residual pipeline
  (prefetch → aggregate/project → into; no filter stage — filtering
  already happened) and ships output batches to an unbounded queue;
- the **consumer** (the tenant's :class:`~repro.engine.executor.QueryHandle`)
  drains that queue on the caller's thread.

Backpressure policy
-------------------
Tenant input queues are bounded (``EngineConfig.shared_buffer_batches``).
A worker never blocks on output (unbounded out-queues), so under normal
operation it always drains its input and the fanout never stalls. When a
tenant's pipeline is genuinely slower than the stream (a slow UDF, a
stuck consumer), the fanout blocks on its full queue for at most
``EngineConfig.shared_stall_seconds`` of wall time and then **evicts**
the tenant — its handle raises :class:`~repro.errors.ExecutionError`,
siblings never wait longer than the stall budget. A tenant that finishes
early (LIMIT) or whose handle is closed is **detached**: its feed is
dropped, nothing else changes. When every tenant is done the fanout
stops pulling and closes the shared connection, so early completion is
visible in the connection's :class:`~repro.twitter.stream.ConnectionStats`.

Admission control
-----------------
``query()`` rejects with a typed :class:`~repro.errors.AdmissionError`:

- ``TQL401`` — the group is at ``max_tenants`` capacity;
- ``TQL402`` — the statement cannot share a scan (joins, ``INTO
  STREAM``, ``now()``, or a FROM source other than the group's);
- ``TQL403`` — the group already started streaming (or is closed).

Equivalence contract
--------------------
Shared execution is **row-for-row identical** to running each query on
its own session, provided transport is lossless (``delivery_ratio=1.0``
— per-connection delivery-loss RNG draws differ between a shared
firehose connection and N per-query filtered connections, exactly as two
independent real connections would drop different tweets). The
tenant-equivalence suite in ``tests/multitenant/`` pins this. Stats are
*not* promised equal: a tenant's ``rows_scanned`` counts rows routed to
it (post shared filter), and ``predicate_evaluations`` accrue on the
fanout context where the sharing happens.
"""

from __future__ import annotations

import queue
import threading
from collections.abc import Iterator
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any

from repro.engine import operators as ops
from repro.engine import parallel
from repro.engine.executor import QueryHandle
from repro.engine.expressions import compile_expr, contains_aggregate
from repro.engine.sanitizer import registered_lock
from repro.engine.planner import (
    Planner,
    PhysicalPlan,
    SourceBinding,
    split_conjuncts,
)
from repro.engine.types import (
    DEFAULT_BATCH_SIZE,
    EvalContext,
    Row,
    RowBatch,
)
from repro.errors import AdmissionError, ExecutionError, PlanError
from repro.sql import ast, parse

_POLL_SECONDS = parallel._POLL_SECONDS
_END = object()
_MISS = object()

_HIT_INDEX = parallel._MANAGED_FIELDS.index("cache_hits")


# ---------------------------------------------------------------------------
# Cross-tenant shared service cache accounting
# ---------------------------------------------------------------------------


@dataclass
class SharedCacheStats:
    """Cross-tenant accounting for one service's shared cache.

    ``cross_tenant_hits`` counts cache hits on keys first requested by a
    *different* tenant — the work sharing that motivates running tenants
    on one session (geocode/entity results are identical across tenants).
    """

    requests: int = 0
    hits: int = 0
    cross_tenant_hits: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    @property
    def cross_tenant_hit_rate(self) -> float:
        return self.cross_tenant_hits / self.requests if self.requests else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "requests": self.requests,
            "hits": self.hits,
            "cross_tenant_hits": self.cross_tenant_hits,
            "hit_rate": round(self.hit_rate, 6),
            "cross_tenant_hit_rate": round(self.cross_tenant_hit_rate, 6),
        }


class SharedServiceCache:
    """Key-ownership map over the session's (already shared) UDF caches.

    The :class:`~repro.engine.latency.ManagedCall` LRUs are session-owned,
    so tenants share them by construction; this object only *attributes*
    that sharing — which tenant first requested each key, and how many
    hits crossed tenant boundaries. All mutation happens under the group
    lock (the proxies call :meth:`record` while holding it).
    """

    def __init__(self) -> None:
        self._owners: dict[tuple[str, Any], int] = {}
        self._per_service: dict[str, SharedCacheStats] = {}

    def service_stats(self, service: str) -> SharedCacheStats:
        stats = self._per_service.get(service)
        if stats is None:
            stats = self._per_service[service] = SharedCacheStats()
        return stats

    def record(self, service: str, tenant: int, key: Any, hit: bool) -> None:
        """Account one tenant request; claims ownership on first sight."""
        owner = self._owners.setdefault((service, key), tenant)
        stats = self.service_stats(service)
        stats.requests += 1
        if hit:
            stats.hits += 1
            if owner != tenant:
                stats.cross_tenant_hits += 1

    def claim(self, service: str, tenant: int, key: Any) -> None:
        """Ownership-only record (prefetch warms keys without a lookup)."""
        self._owners.setdefault((service, key), tenant)

    def as_dict(self) -> dict[str, dict[str, float]]:
        return {
            name: stats.as_dict()
            for name, stats in sorted(self._per_service.items())
        }


class TenantManagedCall(parallel.LockedManagedCall):
    """A tenant's lock-guarded view of a shared :class:`ManagedCall`.

    Extends the per-shard stats mirror of
    :class:`~repro.engine.parallel.LockedManagedCall` with cross-tenant
    cache attribution: every call reports to the group's
    :class:`SharedServiceCache` whether it hit, and who owned the key.
    """

    def __init__(
        self,
        inner: Any,
        lock: threading.RLock,
        tenant: int,
        shared: SharedServiceCache,
    ) -> None:
        super().__init__(inner, lock)
        self._tenant = tenant
        self._shared = shared
        self._service_name = inner.service.name

    def __call__(self, key: Any) -> Any:
        with self._lock:
            before = self._snapshot()
            try:
                return self._inner(key)
            finally:
                after = self._snapshot()
                self._accumulate(before)
                self._shared.record(
                    self._service_name,
                    self._tenant,
                    key,
                    hit=after[_HIT_INDEX] > before[_HIT_INDEX],
                )

    def prefetch(self, keys: Any) -> None:
        keys = list(keys)
        with self._lock:
            for key in keys:
                self._shared.claim(self._service_name, self._tenant, key)
            before = self._snapshot()
            try:
                self._inner.prefetch(keys)
            finally:
                self._accumulate(before)


def tenant_services(
    services: dict[str, Any],
    lock: threading.RLock,
    tenant: int,
    shared: SharedServiceCache,
) -> tuple[dict[str, Any], dict[str, Any]]:
    """Per-tenant service catalog: shared-cache proxies over ManagedCalls.

    Mirrors :func:`repro.engine.parallel.locked_services` — aliases of one
    ManagedCall share one proxy so the per-tenant stats mirror is not
    double-counted — but the proxies additionally attribute cache traffic
    to this tenant in the group's :class:`SharedServiceCache`.
    """
    from repro.engine.latency import ManagedCall

    proxies: dict[str, Any] = {}
    by_id: dict[int, TenantManagedCall] = {}
    stats: dict[str, Any] = {}
    for name, svc in services.items():
        if isinstance(svc, ManagedCall):
            proxy = by_id.get(id(svc))
            if proxy is None:
                proxy = TenantManagedCall(svc, lock, tenant, shared)
                by_id[id(svc)] = proxy
                stats[svc.service.name] = proxy.stats
            proxies[name] = proxy
        else:
            proxies[name] = svc
    return proxies, stats


# ---------------------------------------------------------------------------
# Tenant bookkeeping and pipeline endpoints
# ---------------------------------------------------------------------------


@dataclass
class GroupStats:
    """Group-level counters (admission, routing, sharing, lifecycle)."""

    admitted: int = 0
    rejected: int = 0
    evicted: int = 0
    detached: int = 0
    #: Total row deliveries across tenants (one row routed to 3 tenants
    #: counts 3).
    rows_routed: int = 0
    #: Predicate evaluations *saved* by the per-row conjunct memo — each
    #: is an evaluation an independent run would have performed again.
    evaluations_shared: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "admitted": self.admitted,
            "rejected": self.rejected,
            "evicted": self.evicted,
            "detached": self.detached,
            "rows_routed": self.rows_routed,
            "evaluations_shared": self.evaluations_shared,
        }


class _Tenant:
    """One admitted query's runtime state inside the group."""

    def __init__(self, index: int, sql: str, buffer_batches: int) -> None:
        self.index = index
        self.sql = sql
        self.queue: queue.Queue = queue.Queue(maxsize=buffer_batches)
        self.out: queue.Queue = queue.Queue()
        self.done = threading.Event()
        self.evicted = threading.Event()
        self.evicted_reason: str | None = None
        self.detached = False
        self.error: BaseException | None = None
        self.conjunct_keys: tuple[str, ...] = ()
        self.pipeline: Any = None
        self.ctx: EvalContext | None = None
        self.rows_routed = 0
        self.buffer_highwater = 0

    @property
    def finished(self) -> bool:
        """No more input should be routed to this tenant."""
        return self.done.is_set() or self.detached or self.evicted.is_set()

    def as_dict(self) -> dict[str, Any]:
        return {
            "rows_routed": self.rows_routed,
            "buffer_depth": self.queue.qsize(),
            "buffer_highwater": self.buffer_highwater,
            "done": self.done.is_set(),
            "evicted": self.evicted.is_set(),
            "detached": self.detached,
        }


class TenantScan:
    """Source stage of a tenant's residual pipeline, fed by the fanout.

    Counts routed rows as this tenant's ``rows_scanned`` (its view of the
    stream is the post-shared-filter substream) and advances the tenant
    context's stream time like a ScanOperator. Ends with an empty ``last``
    batch on the fanout's sentinel; raises if the tenant was evicted.
    """

    def __init__(
        self, tenant: _Tenant, stop: threading.Event, ctx: EvalContext
    ) -> None:
        self._tenant = tenant
        self._stop = stop
        self._ctx = ctx

    def __iter__(self) -> Iterator[RowBatch]:
        tenant = self._tenant
        ctx = self._ctx
        stats = ctx.stats
        seq = 0
        while True:
            if tenant.evicted.is_set():
                raise ExecutionError(
                    f"tenant {tenant.index} evicted from shared scan: "
                    f"{tenant.evicted_reason}"
                )
            try:
                item = tenant.queue.get(timeout=_POLL_SECONDS)
            except queue.Empty:
                if self._stop.is_set() or tenant.detached:
                    yield RowBatch([], seq=seq, last=True)
                    return
                continue
            if item is None:  # fanout sentinel: stream exhausted
                yield RowBatch([], seq=seq, last=True)
                return
            rows = item
            stats.rows_scanned += len(rows)
            stats.batches += 1
            stream_time = ctx.stream_time
            for row in rows:
                timestamp = row.get("created_at")
                if timestamp is not None and timestamp > stream_time:
                    stream_time = timestamp
            ctx.stream_time = stream_time
            yield RowBatch(rows, seq=seq)
            seq += 1


class _TenantOutput:
    """The tenant plan's pipeline: drains the worker's output queue.

    Pulled on the consumer's thread; the first pull lazily starts the
    group's threads (planning and EXPLAIN must not open the stream).
    """

    def __init__(self, group: "SharedScanGroup", tenant: _Tenant) -> None:
        self._group = group
        self._tenant = tenant

    def __iter__(self) -> Iterator[RowBatch]:
        group = self._group
        tenant = self._tenant
        group.start()
        tail_seq = 0
        while True:
            group._raise_if_error()
            if tenant.error is not None:
                raise tenant.error
            try:
                item = tenant.out.get(timeout=_POLL_SECONDS)
            except queue.Empty:
                continue
            if item is None:  # worker ended without a last batch
                group._raise_if_error()
                if tenant.error is not None:
                    raise tenant.error
                # Punctuate with seq strictly above everything yielded.
                yield RowBatch([], seq=tail_seq, last=True)
                return
            tail_seq = item.seq + 1
            yield item
            if item.last:
                return


# ---------------------------------------------------------------------------
# The group
# ---------------------------------------------------------------------------


class SharedScanGroup:
    """One shared scan serving N tenant queries over one source.

    Built by :meth:`repro.engine.session.TweeQL.shared`. Lifecycle::

        group = session.shared()
        h1 = group.query("SELECT …;")   # admission happens here
        h2 = group.query("SELECT …;")
        rows = h1.all()                 # first pull starts the fanout
        …
        group.close()                   # join threads, close the stream

    Tenant handles are ordinary :class:`QueryHandle` objects: ``stats``,
    ``service_stats``, ``explain(analyze=True)`` and ``metrics()`` all
    work, scoped to the tenant's own slice of the work.
    """

    def __init__(
        self,
        planner: Planner,
        binding: SourceBinding,
        services: dict[str, Any],
        clock: Any,
        *,
        max_tenants: int = 16,
        buffer_batches: int = 16,
        stall_seconds: float = 5.0,
        label: str | None = None,
    ) -> None:
        if max_tenants < 1:
            raise ValueError("max_tenants must be positive")
        if buffer_batches < 1:
            raise ValueError("buffer_batches must be positive")
        self._planner = planner
        self._binding = binding
        self._services = services
        self._clock = clock
        self.max_tenants = max_tenants
        self.buffer_batches = buffer_batches
        self.stall_seconds = stall_seconds
        self.label = label or f"shared:{binding.name}"

        self._lock = registered_lock("shared.services", rlock=True)
        self._stop = threading.Event()
        self._state_lock = registered_lock("shared.state")
        self._started = False
        self._closed = False
        self._pool: ThreadPoolExecutor | None = None
        self._error: BaseException | None = None
        self._error_lock = registered_lock("shared.error")

        self.stats = GroupStats()
        self.shared_cache = SharedServiceCache()
        self._tenants: list[_Tenant] = []
        self._handles: list[QueryHandle] = []
        #: Deduplicated compiled conjuncts, keyed by rendered SQL — the
        #: "share common filter prefixes" mechanism.
        self._predicates: dict[str, Any] = {}

        # Fanout-side context and source pipeline. The fanout's services
        # are lock-guarded (WHERE conjuncts may call them), with a stats
        # mirror so service attribution reconciles: per-tenant mirrors +
        # the fanout mirror sum to the session's global counters.
        config = planner._config
        self._batch_size = getattr(config, "batch_size", DEFAULT_BATCH_SIZE)
        fanout_services, self.fanout_service_stats = parallel.locked_services(
            services, self._lock
        )
        self._fanout_ctx = EvalContext(
            clock=clock, services=fanout_services, lane="fanout"
        )
        self._fanout_plan = PhysicalPlan(
            pipeline=iter(()), output_schema=(), ctx=self._fanout_ctx
        )
        self._fanout_plan.tracer = planner._make_tracer()
        self._fanout_plan.sanitizer = planner._make_sanitizer()
        self._fanout_ctx.tracer = self._fanout_plan.tracer
        # Service spans belong to whichever single query planned last;
        # a shared group has no single owner, so it records none.
        planner._attach_service_tracers(None)
        source_rows = planner._build_source(binding, [], self._fanout_plan)
        scan: ops.Batches = ops.ScanOperator(
            source_rows, self._fanout_ctx, self._batch_size
        )
        self._scan = planner._trace(
            scan, f"Scan({binding.name})", self._fanout_plan, lane="fanout"
        )

    # -- admission -------------------------------------------------------------

    @property
    def tenants(self) -> int:
        """Number of admitted tenant queries."""
        return len(self._tenants)

    @property
    def handles(self) -> list[QueryHandle]:
        """The admitted tenants' query handles, in admission order."""
        return list(self._handles)

    @property
    def connections(self) -> list:
        """The (single) streaming connection, once the scan has started."""
        return list(self._fanout_plan.connections)

    def _share_blocker(self, statement: ast.SelectStatement) -> str | None:
        """Why this statement cannot ride a shared scan, or None.

        Everything here needs something the fanout cannot give a tenant:
        a join pulls a second input, ``INTO STREAM`` registers a derived
        source whose readers re-run the plan, and ``now()`` reads stream
        time row-by-row, which batch-framed fanout delivery cannot
        preserve (the same reason it pins serial plans to batch size 1).
        """
        if statement.source.lower() != self._binding.name:
            return (
                f"this group scans source {self._binding.name!r}, "
                f"not {statement.source!r}"
            )
        if statement.join is not None:
            return "joins pull a second input the shared scan does not carry"
        if statement.into_stream is not None:
            return "INTO STREAM registers a derived source; run it unshared"
        exprs: list[ast.Expr] = [
            item.expr
            for item in statement.select
            if not isinstance(item.expr, ast.Star)
        ]
        exprs.extend(split_conjuncts(statement.where))
        exprs.extend(statement.group_by)
        if statement.having is not None:
            exprs.append(statement.having)
        exprs.extend(expr for expr, _desc in statement.order_by)
        for expr in exprs:
            for node in ast.walk(expr):
                if isinstance(node, ast.FuncCall) and node.name == "now":
                    return "now() reads stream time row by row"
        return None

    def query(self, sql: str) -> QueryHandle:
        """Admit one tenant query onto the shared scan.

        Raises :class:`~repro.errors.AdmissionError` (``TQL401`` capacity,
        ``TQL402`` unshareable statement, ``TQL403`` already streaming);
        every other validation error carries its usual diagnostic code via
        the static analyzer.
        """
        with self._state_lock:
            if self._closed:
                self.stats.rejected += 1
                raise AdmissionError(
                    "shared scan group is closed", code="TQL403"
                )
            if self._started:
                self.stats.rejected += 1
                raise AdmissionError(
                    "shared scan group is already streaming; tenants must "
                    "be admitted before the first row is pulled",
                    code="TQL403",
                )
            if len(self._tenants) >= self.max_tenants:
                self.stats.rejected += 1
                raise AdmissionError(
                    f"shared scan group is at capacity "
                    f"({self.max_tenants} live queries); close one or raise "
                    "EngineConfig.shared_max_tenants",
                    code="TQL401",
                )
            statement = parse(sql)
            reason = self._share_blocker(statement)
            if reason is not None:
                self.stats.rejected += 1
                raise AdmissionError(
                    f"statement cannot share a scan: {reason}", code="TQL402"
                )
            self._planner.analyze(statement).raise_first_error()
            handle = self._admit(statement, sql)
            self.stats.admitted += 1
            return handle

    def _admit(self, statement: ast.SelectStatement, sql: str) -> QueryHandle:
        planner = self._planner
        binding = self._binding
        schema = binding.schema
        index = len(self._tenants)
        tenant = _Tenant(index, sql, self.buffer_batches)

        # Shared filter compilation: each distinct conjunct (by rendered
        # SQL) is compiled once against the fanout context and evaluated
        # once per row for the whole group.
        conjuncts = split_conjuncts(statement.where)
        keys: list[str] = []
        for conjunct in conjuncts:
            key = conjunct.to_sql()
            if key not in self._predicates:
                self._predicates[key] = compile_expr(
                    conjunct, planner._registry, schema, self._fanout_ctx
                )
            keys.append(key)
        tenant.conjunct_keys = tuple(keys)

        proxies, proxy_stats = tenant_services(
            self._services, self._lock, index, self.shared_cache
        )
        lane = f"tenant-{index}"
        ctx = EvalContext(clock=self._clock, services=proxies, lane=lane)
        tenant.ctx = ctx
        plan = PhysicalPlan(pipeline=iter(()), output_schema=(), ctx=ctx)
        plan.tracer = planner._make_tracer()
        plan.sanitizer = planner._make_sanitizer()
        ctx.tracer = plan.tracer
        explain = plan.explain_lines
        explain.append(
            f"SharedScan: tenant {index} of {self.label} "
            f"(1 connection / 1 scan fanned out to "
            f"{self.max_tenants}-tenant group)"
        )
        if keys:
            explain.append(
                "Filter: " + " AND ".join(keys)
                + " (evaluated fanout-side, memoized across tenants)"
            )
        explain.append(f"Batch: {self._batch_size} rows/batch (fanout-framed)")
        if getattr(planner._config, "workers", 1) > 1:
            explain.append(
                "Parallel: serial within shared scan (workers ignored; "
                "rows identical either way)"
            )

        pipeline: ops.Batches = TenantScan(tenant, self._stop, ctx)
        pipeline = planner._trace(
            pipeline, f"Scan({self.label})", plan, lane=lane
        )

        has_aggregates = bool(statement.group_by) or any(
            not isinstance(item.expr, ast.Star) and contains_aggregate(item.expr)
            for item in statement.select
        )
        if not has_aggregates:
            # Analyzer backstops, mirroring the serial planner.
            if statement.having is not None:
                raise PlanError("HAVING requires aggregation")
            if statement.order_by:
                raise PlanError(
                    "ORDER BY requires a windowed aggregate query (streams "
                    "have no global order to sort)"
                )
        if not has_aggregates and statement.limit is not None:
            pipeline = ops.LimitOperator(pipeline, statement.limit)
            explain.append(f"Limit: {statement.limit}")
            pipeline = planner._trace(pipeline, "Limit", plan, lane=lane)

        before = pipeline
        pipeline = planner._maybe_prefetch(statement, pipeline, schema, ctx, plan)
        if pipeline is not before:
            pipeline = planner._trace(pipeline, "Prefetch", plan, lane=lane)

        if has_aggregates:
            pipeline, output_schema = planner._build_aggregation(
                statement, pipeline, schema, ctx, plan
            )
            pipeline = planner._trace(pipeline, "Aggregate", plan, lane=lane)
        else:
            pipeline, output_schema = planner._build_projection(
                statement, pipeline, schema, ctx
            )
            pipeline = planner._trace(pipeline, "Project", plan, lane=lane)

        if statement.into is not None:
            sink = planner._table_factory(statement.into)
            pipeline = ops.IntoOperator(pipeline, sink)
            explain.append(f"Into: table {statement.into!r}")
            pipeline = planner._trace(pipeline, "Into", plan, lane=lane)

        tenant.pipeline = pipeline
        plan.pipeline = _TenantOutput(self, tenant)
        plan.output_schema = output_schema
        plan.closers.append(lambda: self.detach(tenant.index, "handle closed"))
        handle = QueryHandle(sql, plan)
        self._tenants.append(tenant)
        self._handles.append(handle)
        return handle

    # -- fanout ----------------------------------------------------------------

    def _record_error(self, error: BaseException) -> None:
        with self._error_lock:
            if self._error is None:
                self._error = error
        self._stop.set()

    def _raise_if_error(self) -> None:
        with self._error_lock:
            error = self._error
        if error is not None:
            raise error

    def _admit_row(
        self, row: Row, tenant: _Tenant, memo: dict[str, Any]
    ) -> bool:
        """Does ``row`` pass this tenant's WHERE? Memoized per row.

        Short-circuits in conjunct order like a serial filter chain;
        verdicts are normalized to SQL WHERE semantics (NULL drops).
        """
        predicates = self._predicates
        ctx = self._fanout_ctx
        stats = ctx.stats
        for key in tenant.conjunct_keys:
            value = memo.get(key, _MISS)
            if value is _MISS:
                verdict = predicates[key](row, ctx)
                value = verdict is not None and bool(verdict)
                memo[key] = value
                stats.predicate_evaluations += 1
            else:
                self.stats.evaluations_shared += 1
            if not value:
                return False
        return True

    def _put(self, tenant: _Tenant, item: list[Row] | None) -> None:
        """Route one batch (or the end sentinel) with bounded-stall policy."""
        waited = 0.0
        while not self._stop.is_set():
            if tenant.finished:
                return
            try:
                tenant.queue.put(item, timeout=_POLL_SECONDS)
            except queue.Full:
                waited += _POLL_SECONDS
                if waited >= self.stall_seconds:
                    self._evict(
                        tenant,
                        f"consumer stalled the fanout for ≥"
                        f"{self.stall_seconds:g}s with a full buffer "
                        f"({self.buffer_batches} batches)",
                    )
                    return
                continue
            depth = tenant.queue.qsize()
            if depth > tenant.buffer_highwater:
                tenant.buffer_highwater = depth
            if item is not None:
                tenant.rows_routed += len(item)
                self.stats.rows_routed += len(item)
            return

    def _evict(self, tenant: _Tenant, reason: str) -> None:
        tenant.evicted_reason = reason
        tenant.evicted.set()
        self.stats.evicted += 1

    def detach(self, index: int, reason: str = "detached") -> None:
        """Drop a live tenant's feed (dead/closed consumer); idempotent.

        A tenant whose pipeline already completed is not "detached" — its
        handle closing afterwards is the normal lifecycle, so the counter
        only moves for tenants abandoned mid-stream.
        """
        tenant = self._tenants[index]
        if tenant.detached or tenant.evicted.is_set() or tenant.done.is_set():
            return
        tenant.detached = True
        self.stats.detached += 1

    def _fanout(self) -> None:
        tenants = self._tenants
        pending: list[list[Row]] = [[] for _ in tenants]
        iterator: Any = None
        try:
            iterator = iter(self._scan)
            while True:
                if self._stop.is_set():
                    return
                if all(t.finished for t in tenants):
                    break
                # Source pulls hold the group lock: the stream advances
                # the shared virtual clock, and so do tenant service calls.
                with self._lock:
                    batch = next(iterator, _END)
                if batch is _END:
                    break
                for row in batch.rows:
                    memo: dict[str, Any] = {}
                    for tenant in tenants:
                        if tenant.finished:
                            continue
                        if self._admit_row(row, tenant, memo):
                            pending[tenant.index].append(row)
                for tenant in tenants:
                    if len(pending[tenant.index]) >= self._batch_size:
                        self._put(tenant, pending[tenant.index])
                        pending[tenant.index] = []
                if batch.last:
                    break
        except BaseException as error:  # noqa: BLE001 — surfaced at tenants
            self._record_error(error)
            return
        finally:
            if not self._stop.is_set():
                for tenant in tenants:
                    if tenant.finished:
                        continue
                    if pending[tenant.index]:
                        self._put(tenant, pending[tenant.index])
                    self._put(tenant, None)
            # Stop pulling promptly: run the scan's trace finalizers and
            # release the (scarce) streaming connection.
            close = getattr(iterator, "close", None)
            if close is not None:
                close()
            for connection in self._fanout_plan.connections:
                connection.close()

    def _worker(self, tenant: _Tenant) -> None:
        iterator = iter(tenant.pipeline)
        try:
            for batch in iterator:
                tenant.out.put(batch)
                if batch.last:
                    break
        except BaseException as error:  # noqa: BLE001
            tenant.error = error
        finally:
            # Close the operator chain so trace-wrapper finalizers run
            # (operator spans end) before the handle renders EXPLAIN ANALYZE.
            close = getattr(iterator, "close", None)
            if close is not None:
                close()
            tenant.done.set()
            tenant.out.put(None)

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        """Spawn the fanout and tenant worker threads (idempotent)."""
        with self._state_lock:
            if self._started:
                return
            if self._closed:
                raise ExecutionError("shared scan group is closed")
            if not self._tenants:
                raise ExecutionError(
                    "shared scan group has no tenants; admit queries first"
                )
            self._started = True
        self._pool = ThreadPoolExecutor(
            max_workers=len(self._tenants) + 1,
            thread_name_prefix="tweeql-shared",
        )
        self._pool.submit(self._fanout)
        for tenant in self._tenants:
            self._pool.submit(self._worker, tenant)

    def close(self) -> None:
        """Stop the fanout, join every thread, release the stream."""
        with self._state_lock:
            if self._closed:
                return
            self._closed = True
        self._stop.set()
        if self._pool is not None:
            self._pool.shutdown(wait=True)
        for connection in self._fanout_plan.connections:
            connection.close()
        for proxy in {
            id(s): s
            for s in self._fanout_ctx.services.values()
            if hasattr(s, "drain")
        }.values():
            proxy.drain()

    def __enter__(self) -> "SharedScanGroup":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()

    # -- observability ---------------------------------------------------------

    @property
    def tracer(self) -> Any:
        """The fanout lane's span recorder (None when tracing is off)."""
        return self._fanout_plan.tracer

    def explain(self) -> str:
        """Group-level plan description (fanout side)."""
        lines = [
            f"SharedScan group {self.label}: {len(self._tenants)} tenant(s), "
            f"max {self.max_tenants}",
            f"Fanout: {len(self._predicates)} distinct conjunct(s) shared "
            f"across tenants; buffers {self.buffer_batches} batches, "
            f"stall budget {self.stall_seconds:g}s",
        ]
        lines.extend(self._fanout_plan.explain_lines)
        return "\n".join(lines)

    def stats_dict(self) -> dict[str, Any]:
        """One nested snapshot of everything the group counts.

        Shape: ``group`` (admission/routing), ``fanout`` (scan counters),
        ``tenant.<i>`` (per-tenant routing + buffer depth — the fanout-lag
        signal), ``cache.<service>`` (cross-tenant hit attribution), and
        ``connection`` (the shared stream's delivery accounting).
        """
        tree: dict[str, Any] = {
            "group": self.stats.as_dict(),
            "fanout": self._fanout_ctx.stats.as_dict(),
            "tenant": {
                str(t.index): t.as_dict() for t in self._tenants
            },
            "cache": self.shared_cache.as_dict(),
        }
        connections = self._fanout_plan.connections
        if connections:
            stats = connections[0].stats
            tree["connection"] = {
                "scanned": stats.scanned,
                "matched": stats.matched,
                "delivered": stats.delivered,
                "dropped": stats.dropped,
                "reconnects": stats.reconnects,
                "gap_tweets": stats.gap_tweets,
            }
        return tree

    def metrics(self):
        """The group snapshot as a
        :class:`~repro.obs.metrics.MetricsRegistry` (``shared.*`` tree)."""
        from repro.obs.metrics import shared_metrics

        return shared_metrics(self)
