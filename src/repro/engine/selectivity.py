"""API filter selection under uncertain selectivities.

The paper: a query with ``text contains 'obama' AND location in [NYC box]``
could ask the streaming API for all *obama* tweets or all *NYC* tweets, but
not both on one connection. "TweeQL samples both streams in this case, and
selects the filter with the lowest selectivity in order to require the
least work in applying the second filter."

This module implements that choice: estimate each candidate filter's
selectivity from a ``statuses/sample`` draw, pick the rarest, and report
the decision (candidates, estimates, sample size) so the planner's EXPLAIN
and benchmark E2 can show their work.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.twitter.models import Tweet
from repro.twitter.stream import StreamingAPI


@dataclass(frozen=True)
class FilterCandidate:
    """One API-eligible filter extracted from a WHERE clause.

    Attributes:
        kind: ``track`` / ``locations`` / ``follow``.
        description: human-readable filter summary.
        api_kwargs: the keyword arguments to pass to ``StreamingAPI.filter``.
        matches: predicate a sampled tweet is tested against to estimate
            this filter's selectivity.
    """

    kind: str
    description: str
    api_kwargs: dict
    matches: Callable[[Tweet], bool]


@dataclass(frozen=True)
class SelectivityEstimate:
    """Estimated match fraction for one candidate."""

    candidate: FilterCandidate
    sample_size: int
    matched: int

    @property
    def selectivity(self) -> float:
        """Fraction of sampled firehose tweets the filter matches.

        Uses add-one (Laplace) smoothing so a zero-match sample does not
        claim impossible certainty.
        """
        return (self.matched + 1) / (self.sample_size + 2)


@dataclass(frozen=True)
class FilterChoice:
    """The decision record: which candidate was sent to the API and why."""

    chosen: FilterCandidate
    estimates: tuple[SelectivityEstimate, ...]
    sample_size: int

    def explain(self) -> str:
        """One line per candidate, the chosen one marked."""
        lines = []
        for estimate in self.estimates:
            marker = "->" if estimate.candidate is self.chosen else "  "
            lines.append(
                f"{marker} {estimate.candidate.description}: "
                f"selectivity ~{estimate.selectivity:.4f} "
                f"({estimate.matched}/{estimate.sample_size})"
            )
        return "\n".join(lines)


def estimate_selectivities(
    api: StreamingAPI,
    candidates: Sequence[FilterCandidate],
    sample_rate: float = 0.01,
    sample_limit: int = 2000,
) -> list[SelectivityEstimate]:
    """Draw one firehose sample and score every candidate against it.

    A single shared sample (rather than one per candidate) halves the API
    cost and makes the estimates directly comparable — any sampling quirk
    hits every candidate equally.
    """
    sample = api.sample(rate=sample_rate, limit=sample_limit)
    estimates = []
    for candidate in candidates:
        matched = sum(1 for tweet in sample if candidate.matches(tweet))
        estimates.append(
            SelectivityEstimate(
                candidate=candidate,
                sample_size=len(sample),
                matched=matched,
            )
        )
    return estimates


def choose_api_filter(
    api: StreamingAPI,
    candidates: Sequence[FilterCandidate],
    sample_rate: float = 0.01,
    sample_limit: int = 2000,
) -> FilterChoice:
    """Pick the lowest-selectivity candidate to push to the streaming API.

    With one candidate, no sampling is spent. Ties break toward ``track``
    filters (cheapest for the API to evaluate server-side), then toward the
    earliest candidate for determinism.
    """
    if not candidates:
        raise ValueError("no candidates to choose between")
    if len(candidates) == 1:
        only = candidates[0]
        return FilterChoice(
            chosen=only,
            estimates=(
                SelectivityEstimate(candidate=only, sample_size=0, matched=0),
            ),
            sample_size=0,
        )
    estimates = estimate_selectivities(api, candidates, sample_rate, sample_limit)
    kind_rank = {"track": 0, "follow": 1, "locations": 2}

    def sort_key(indexed: tuple[int, SelectivityEstimate]):
        index, estimate = indexed
        return (
            estimate.selectivity,
            kind_rank.get(estimate.candidate.kind, 9),
            index,
        )

    _index, best = min(enumerate(estimates), key=sort_key)
    return FilterChoice(
        chosen=best.candidate,
        estimates=tuple(estimates),
        sample_size=best.sample_size,
    )
