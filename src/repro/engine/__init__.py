"""The TweeQL stream-processing engine.

Layering (bottom to top):

- :mod:`repro.engine.types` — rows, schemas, evaluation context.
- :mod:`repro.engine.expressions` — AST → evaluator compilation with SQL
  NULL semantics and the tweet-text operators.
- :mod:`repro.engine.functions` — scalar builtins, web-service UDFs, and
  the UDF registry (the paper's classification/geocoding framework).
- :mod:`repro.engine.aggregates` — aggregate function implementations.
- :mod:`repro.engine.windows` — tumbling/sliding window assignment.
- :mod:`repro.engine.operators` — streaming operators (filter, project,
  windowed group/aggregate, windowed join, limit).
- :mod:`repro.engine.confidence` — CONTROL-style confidence-triggered
  group emission ("Uneven Aggregate Groups").
- :mod:`repro.engine.selectivity` — API filter choice by stream sampling
  ("Uncertain Selectivities").
- :mod:`repro.engine.eddies` — adaptive predicate reordering.
- :mod:`repro.engine.latency` — caching/batching/async machinery for
  high-latency web-service UDFs.
- :mod:`repro.engine.resilience` — retries, circuit breaking, and
  deterministic fault plans for the services and the stream.
- :mod:`repro.engine.planner` / :mod:`repro.engine.executor` — AST to
  physical pipeline, and the pull-based run loop.
- :mod:`repro.engine.multitenant` — multi-tenant shared-scan groups
  (one connection/scan fanned out to N queries; ``Session.shared()``).
- :mod:`repro.engine.session` — the public ``TweeQL`` façade.
"""

from repro.engine.multitenant import SharedScanGroup
from repro.engine.resilience import (
    CircuitBreaker,
    FaultPlan,
    ResilientService,
    RetryPolicy,
    ServiceFaultModel,
    StreamDrop,
)
from repro.engine.session import EngineConfig, QueryHandle, TweeQL

__all__ = [
    "CircuitBreaker",
    "EngineConfig",
    "FaultPlan",
    "QueryHandle",
    "ResilientService",
    "RetryPolicy",
    "ServiceFaultModel",
    "SharedScanGroup",
    "StreamDrop",
    "TweeQL",
]
