"""CONTROL-style confidence-triggered aggregate emission.

The paper ("Uneven Aggregate Groups"): a fixed 3-hour window oversamples
Tokyo and undersamples Cape Town; a fixed tweet-count window can aggregate
stale tweets. "Instead, we use a construct for windowing that measures
confidence in the aggregated result … Once a bucket falls within a certain
confidence interval for an aggregate, its record is emitted by the grouping
operator."

:class:`ConfidenceAggregateOperator` implements that construct: each group
accumulates until the half-width of the confidence interval of its AVG
drops below a target, then emits and resets. A freshness bound (``max_age``)
forces emission of slow groups so sparse regions still report, and a
minimum count avoids emitting on trivially small samples.

Emitted rows carry the diagnostic columns ``n``, ``ci_halfwidth``, and
``emit_reason`` (``confidence`` / ``age`` / ``eos``) so experiments can
audit why each record fired.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Iterator
from dataclasses import dataclass

from repro.engine.aggregates import AvgAggregate
from repro.engine.expressions import Evaluator
from repro.engine.types import EvalContext, Row, RowBatch


@dataclass(frozen=True)
class ConfidencePolicy:
    """Emission policy for confidence-triggered grouping.

    Attributes:
        ci_halfwidth: emit once the CI half-width of the mean is at or
            below this value (in units of the aggregated quantity).
        z: normal critical value for the confidence level (1.96 ≈ 95%).
        max_age_seconds: force-emit a group this long after its first tweet
            even if the CI target was not reached (freshness bound); None
            disables the bound.
        min_count: never emit on fewer than this many values (the CI
            estimate is meaningless at tiny n).
    """

    ci_halfwidth: float = 0.1
    z: float = 1.96
    max_age_seconds: float | None = 3 * 3600.0
    min_count: int = 5

    def __post_init__(self) -> None:
        if self.ci_halfwidth <= 0:
            raise ValueError("ci_halfwidth must be positive")
        if self.min_count < 2:
            raise ValueError("min_count must be at least 2")


class _ConfidenceGroup:
    __slots__ = ("aggregate", "representative", "first_time", "last_time")

    def __init__(self, representative: Row, now: float) -> None:
        self.aggregate = AvgAggregate()
        self.representative = representative
        self.first_time = now
        self.last_time = now


class ConfidenceAggregateOperator:
    """AVG-per-group emission driven by statistical confidence, not time.

    Args:
        child: time-ordered input batch stream.
        group_evals: compiled grouping-key expressions.
        value_eval: compiled expression whose mean is being estimated
            (e.g. ``sentiment(text)``).
        output_items: output column name → post-aggregation evaluator over
            an environment row with ``__agg0`` holding the group mean.
        policy: the emission policy.

    One aggregate call is supported per query in this mode — the paper's
    construct is specifically about a single windowed AVG; richer mixes
    still use fixed windows.
    """

    def __init__(
        self,
        child: Iterable[RowBatch],
        group_evals: list[Evaluator],
        value_eval: Evaluator,
        output_items: list[tuple[str, Evaluator]],
        ctx: EvalContext,
        policy: ConfidencePolicy | None = None,
    ) -> None:
        self._child = child
        self._group_evals = group_evals
        self._value_eval = value_eval
        self._output_items = output_items
        self._ctx = ctx
        self._policy = policy or ConfidencePolicy()
        self._groups: dict[tuple, _ConfidenceGroup] = {}

    def __iter__(self) -> Iterator[RowBatch]:
        policy = self._policy
        tail_seq = 0
        for batch in self._child:
            tail_seq = batch.seq + 1
            emitted: list[Row] = []
            for row in batch.rows:
                now = row.get("created_at", self._ctx.stream_time)
                # Under sharded execution rows carry a global sequence
                # number and time-only punctuation arrives for rows routed
                # to other shards; both keep age-based flushes firing at
                # exactly the triggers the serial operator would have seen.
                trigger = row.get("__seq__")

                # Freshness bound: age out slow groups before processing.
                if policy.max_age_seconds is not None:
                    self._flush_aged(now, trigger, emitted)

                if "__punct__" in row:
                    continue

                key = tuple(e(row, self._ctx) for e in self._group_evals)
                value = self._value_eval(row, self._ctx)
                if value is None:
                    continue
                group = self._groups.get(key)
                if group is None:
                    group = _ConfidenceGroup(row, now)
                    self._groups[key] = group
                group.aggregate.add(value)
                group.last_time = now

                if group.aggregate.n >= policy.min_count:
                    half = group.aggregate.confidence_interval(policy.z)
                    if half is not None and half <= policy.ci_halfwidth:
                        emitted.append(
                            self._emit(
                                key, group, "confidence",
                                order=self._order_tag(trigger, 1, group),
                            )
                        )
            if emitted:
                yield RowBatch(emitted, seq=batch.seq)
            if batch.last:
                break

        tail: list[Row] = []
        for key in sorted(self._groups, key=_key_order):
            group = self._groups[key]
            order = (
                (math.inf, 2, _key_order(key))
                if "__seq__" in group.representative
                else None
            )
            tail.append(self._emit(key, group, "eos", pop=False, order=order))
        self._groups.clear()
        # Tail seq stays strictly above the last input batch's.
        yield RowBatch(tail, seq=tail_seq, last=True)

    def _order_tag(
        self, trigger: int | None, phase: int, group: _ConfidenceGroup
    ) -> tuple | None:
        """Merge-order tag for sharded execution; None when serial.

        Tags sort by (triggering row, phase, group first-seen row): the
        serial operator flushes aged groups before processing the trigger
        row's own group (phase 0 < 1), and emits multiple aged groups in
        creation order.
        """
        if trigger is None:
            return None
        return (trigger, phase, group.representative.get("__seq__", -1))

    def _flush_aged(
        self, now: float, trigger: int | None, emitted: list[Row]
    ) -> None:
        assert self._policy.max_age_seconds is not None
        horizon = now - self._policy.max_age_seconds
        aged = [
            key
            for key, group in self._groups.items()
            if group.first_time <= horizon and group.aggregate.n >= 2
        ]
        for key in aged:
            group = self._groups[key]
            emitted.append(
                self._emit(
                    key, group, "age", order=self._order_tag(trigger, 0, group)
                )
            )

    def _emit(
        self,
        key: tuple,
        group: _ConfidenceGroup,
        reason: str,
        pop: bool = True,
        order: tuple | None = None,
    ) -> Row:
        env = dict(group.representative)
        env["__agg0"] = group.aggregate.result()
        out: Row = {}
        for name, evaluate in self._output_items:
            out[name] = evaluate(env, self._ctx)
        half = group.aggregate.confidence_interval(self._policy.z)
        out["n"] = group.aggregate.n
        out["ci_halfwidth"] = (
            round(half, 6) if half is not None else None
        )
        out["emit_reason"] = reason
        out["group_started"] = group.first_time
        out["created_at"] = group.last_time
        if order is not None:
            out["__order__"] = order
        if pop:
            del self._groups[key]
        self._ctx.stats.groups_emitted += 1
        self._ctx.stats.rows_emitted += 1
        return out


def _key_order(key: tuple) -> tuple:
    """Deterministic ordering for end-of-stream flushes with mixed types."""
    return tuple(
        (0, k) if isinstance(k, (int, float, bool)) and not isinstance(k, bool)
        else (1, str(k))
        for k in key
    )


def normal_halfwidth(variance: float, n: int, z: float = 1.96) -> float:
    """CI half-width of a mean: z * sqrt(var / n). Exposed for benchmarks."""
    if n <= 0:
        raise ValueError("n must be positive")
    return z * math.sqrt(max(0.0, variance) / n)
