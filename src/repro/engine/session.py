"""The public TweeQL façade.

:class:`TweeQL` wires together everything a query needs — the simulated
streaming API, the virtual clock, the geocoding and entity web services
(wrapped in the latency machinery), the sentiment classifier, the function
registry, and result tables — and exposes the interface the demo offered:
``query("SELECT …")``.

Typical use::

    from repro import TweeQL
    from repro.twitter import soccer_match_scenario

    session = TweeQL.for_scenarios(soccer_match_scenario(seed=7))
    handle = session.query(
        "SELECT sentiment(text), text FROM twitter "
        "WHERE text contains 'tevez';"
    )
    for row in handle.fetch(10):
        print(row)
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass, field
from typing import Any

from repro import rng as rng_mod
from repro.clock import VirtualClock
from repro.engine.confidence import ConfidencePolicy
from repro.engine.executor import QueryHandle
from repro.engine.functions import FunctionRegistry, default_registry
from repro.engine.latency import ManagedCall
from repro.engine.planner import Planner, PhysicalPlan, SourceBinding
from repro.engine.resilience import (
    CircuitBreaker,
    FaultPlan,
    ResilientService,
    RetryPolicy,
)
from repro.engine.types import Row, iter_rows
from repro.errors import GeocodeError, PlanError
from repro.geo.geocode import Geocoder
from repro.geo.service import LatencyModel, SimulatedWebService
from repro.nlp.entities import EntityExtractor
from repro.nlp.sentiment import SentimentClassifier, train_default_classifier
from repro.sql import parse
from repro.sql.ast import SelectStatement


def replace_into_stream(statement: SelectStatement) -> SelectStatement:
    """A copy of ``statement`` without its INTO STREAM clause.

    The derived-source factory re-plans the upstream query on each read;
    stripping the clause first keeps re-planning from re-registering the
    stream recursively.
    """
    import dataclasses

    return dataclasses.replace(statement, into_stream=None)
from repro.storage.tweetlog import TableSink
from repro.twitter.models import TWITTER_SCHEMA
from repro.twitter.stream import Firehose, StreamingAPI
from repro.twitter.workloads import Scenario


@dataclass
class EngineConfig:
    """Session-level engine knobs (each maps to a mechanism in the paper).

    Attributes:
        latency_mode: how high-latency UDFs reach their services —
            ``blocking`` / ``cached`` / ``batched`` / ``async``.
        cache_capacity: LRU size for service caches.
        cache_ttl: optional TTL (virtual seconds) on cached service results.
        pool_depth: max in-flight requests in ``async`` mode.
        batch_size: rows per :class:`~repro.engine.types.RowBatch` flowing
            between operators. 1 reproduces row-at-a-time execution; larger
            batches amortize per-row overhead and widen the prefetch window
            for ``batched``/``async`` latency modes (the batch *is* the
            lookahead). Output is row-for-row identical at every size;
            queries calling ``now()`` are pinned to 1 by the planner.
        lookahead: legacy row-at-a-time prefetch window; retained for
            compatibility but unused — the batch size now plays this role.
        partial_results: with ``async`` mode, never block on an in-flight
            service call — emit NULL for the not-yet-known value instead
            (Raman & Hellerstein-style partial results; the paper cites
            this as the complementary piece of the async design).
        use_eddy: route local predicates through an adaptive eddy instead
            of a fixed-order conjunction.
        eddy_resort_every: tuples between eddy re-rankings.
        confidence_policy: enables CONTROL-style confidence-triggered AVG
            emission for windowless aggregate queries.
        workers: shard the query across this many parallel worker
            pipelines (thread pool) behind a hash exchange and an ordered
            merge; 1 (the default) keeps the serial pipeline. Results are
            identical to serial execution at any worker count; statements
            whose semantics need global row order (joins, count windows,
            global aggregates, stateful UDFs, ``now()``) silently fall
            back to serial with an EXPLAIN note.
        sample_rate / sample_limit: ``statuses/sample`` parameters for
            selectivity estimation.
        geocode_latency: latency model of the geocoding service.
        entities_latency: latency model of the entity-extraction service.
        service_failure_rate: transient failure probability per request.
        retries: max retry attempts per service call (0 disables the
            resilience layer entirely — calls behave exactly as before).
        retry_deadline_seconds: optional per-call wall budget (virtual
            seconds) across all attempts of one logical request.
        backoff_base_seconds / backoff_cap_seconds: exponential backoff
            parameters (full jitter; a server-provided ``retry_after``
            floors the wait).
        breaker_threshold: consecutive failures before a service's
            circuit breaker opens; 0 disables the breaker.
        breaker_reset_seconds: open-state cooldown before a half-open
            probe is allowed.
        fault_plan: optional deterministic
            :class:`~repro.engine.resilience.FaultPlan` injected into the
            services and the streaming API.
        stream_reconnect: auto-reconnect dropped stream connections from
            their cursor (gap tweets recovered); False loses the gap.
        tracing: record structured spans (per operator, batch, service
            call, retry, reconnect) on the virtual clock while queries
            run, enabling ``handle.explain(analyze=True)`` and Chrome
            trace export (see docs/OBSERVABILITY.md). Off by default;
            when off, the planner builds the exact pre-tracing pipeline
            (no wrappers, no per-row cost).
        trace_batch_spans: with ``tracing``, also record one span per
            batch pull (turn off to bound trace size on long streams).
        shared_scan: route multi-query consumers (``TwitInfoApp``, the
            CLI's multi-``--sql`` runs) through one shared-scan group per
            source — one Firehose connection and one scan fanned out to
            every live query (see :mod:`repro.engine.multitenant` and
            :meth:`TweeQL.shared`). Single queries are unaffected.
        shared_max_tenants: admission-control capacity of a shared-scan
            group; query N+1 is rejected with ``TQL401``.
        shared_buffer_batches: bound of each tenant's fanout buffer, in
            batches — the backpressure window between the shared scan and
            one consumer.
        shared_stall_seconds: wall-clock budget a slow tenant may stall
            the fanout on its full buffer before being evicted (its
            handle then raises; siblings are unaffected).
        columnar: store batch payloads column-wise
            (:class:`~repro.engine.types.ColumnBatch`) and vectorize
            eligible filter/project/group-key expressions. Row-at-a-time
            plans (``batch_size=1``) and joins always keep the legacy
            row layout; results are row-for-row identical either way.
            Turn off to A/B against the row pipeline.
        shard_backend: where sharded worker pipelines run — ``thread``
            (default; in-process pool, shares the GIL) or ``process``
            (forked workers, true CPU parallelism for Python-bound
            predicates/UDFs). Process workers fall back to threads, with
            an EXPLAIN note, for plans that must share the session clock
            (web-service calls, confidence emission) or when fork is
            unavailable; results are identical across backends.
        clamp_workers: clamp *process* workers to ``os.cpu_count()``
            (extra forks cost real memory for no speedup). Thread workers
            are logical shards and are never clamped. Turn off to
            exercise the process fabric on small hosts (tests do).
        sanitize: run queries under the TQLSAN invariant sanitizer —
            every operator boundary checks seq monotonicity, punctuation
            exactly-once, ColumnBatch coherence, post-handoff
            immutability, and stats monotonicity; lock acquisitions feed
            the lock-order detector; ``reconcile()`` is enforced at
            close. Violations raise
            :class:`~repro.errors.SanitizerError` with a stable
            ``TQL9xx`` code (see docs/SANITIZER.md). Off by default and
            zero-wrapper when off, exactly like ``tracing``; the
            ``TWEEQL_SAN=1`` environment variable turns it on without
            touching config.
        storage_path: SQLite file backing the session's historical tier
            (:class:`~repro.storage.historical.HistoricalStore`);
            ``":memory:"`` works for tests. When set, every tweet any
            stream connection delivers is archived behind the live path
            by a background :class:`~repro.storage.historical.
            StorageWriter`. None (the default) disables the tier
            entirely.
        backfill: with ``storage_path``, split queries over the
            ``twitter`` source into backfill-from-storage + live-tail:
            history up to the store's watermark is answered instantly
            from SQLite, and the live connection takes over after it
            (see docs/STORAGE.md). A query with no ``created_at`` lower
            bound backfills the whole store (lint ``TQL311`` warns).
        storage_batch: rows per storage-writer commit batch.
    """

    latency_mode: str = "cached"
    cache_capacity: int = 10_000
    cache_ttl: float | None = None
    pool_depth: int = 8
    batch_size: int = 256
    lookahead: int = 64
    partial_results: bool = False
    use_eddy: bool = False
    eddy_resort_every: int = 64
    confidence_policy: ConfidencePolicy | None = None
    workers: int = 1
    sample_rate: float = 0.01
    sample_limit: int = 2000
    geocode_latency: LatencyModel = field(default_factory=LatencyModel)
    entities_latency: LatencyModel = field(
        default_factory=lambda: LatencyModel(mean_seconds=0.45, sigma=0.35)
    )
    service_failure_rate: float = 0.0
    retries: int = 0
    retry_deadline_seconds: float | None = None
    backoff_base_seconds: float = 0.1
    backoff_cap_seconds: float = 5.0
    breaker_threshold: int = 8
    breaker_reset_seconds: float = 30.0
    fault_plan: "FaultPlan | None" = None
    stream_reconnect: bool = True
    tracing: bool = False
    trace_batch_spans: bool = True
    shared_scan: bool = False
    shared_max_tenants: int = 16
    shared_buffer_batches: int = 16
    shared_stall_seconds: float = 5.0
    columnar: bool = True
    shard_backend: str = "thread"
    clamp_workers: bool = True
    sanitize: bool = False
    storage_path: str | None = None
    backfill: bool = False
    storage_batch: int = 256


class TweeQL:
    """A TweeQL session: parse, plan, and run stream queries.

    Args:
        api: the (simulated) Twitter streaming API; optional when every
            query targets registered sources.
        clock: virtual clock; a fresh one is created when omitted.
        config: engine configuration.
        classifier: sentiment classifier; the memoized default when None.
        seed: seed for the services' latency draws.
    """

    def __init__(
        self,
        api: StreamingAPI | None = None,
        clock: VirtualClock | None = None,
        config: EngineConfig | None = None,
        classifier: SentimentClassifier | None = None,
        seed: int = rng_mod.DEFAULT_SEED,
    ) -> None:
        self.clock = clock or VirtualClock()
        self.config = config or EngineConfig()
        self.api = api
        self.registry: FunctionRegistry = default_registry()
        self.tables: dict[str, TableSink] = {}
        self._classifier = classifier or train_default_classifier()

        # Web services behind the resilience + latency machinery.
        geocoder = Geocoder()
        fault_plan = self.config.fault_plan

        def geocode_resolver(location: str):
            try:
                return geocoder.geocode(location)
            except GeocodeError:
                return None

        self.geocode_service = SimulatedWebService(
            "geocoder",
            geocode_resolver,
            clock=self.clock,
            latency=self.config.geocode_latency,
            failure_rate=self.config.service_failure_rate,
            seed=seed,
            fault_injector=(
                fault_plan.injector_for("geocoder") if fault_plan else None
            ),
        )
        self.geocode_resilient = self._wrap_resilient(
            self.geocode_service, seed=seed
        )
        self.geocode_managed = ManagedCall(
            self.geocode_resilient or self.geocode_service,
            mode=self.config.latency_mode,
            cache_capacity=self.config.cache_capacity,
            cache_ttl=self.config.cache_ttl,
            pool_depth=self.config.pool_depth,
            partial_results=self.config.partial_results,
        )

        extractor = EntityExtractor()
        self.entities_service = SimulatedWebService(
            "opencalais",
            extractor,
            clock=self.clock,
            latency=self.config.entities_latency,
            failure_rate=self.config.service_failure_rate,
            seed=seed + 1,
            fault_injector=(
                fault_plan.injector_for("opencalais") if fault_plan else None
            ),
        )
        self.entities_resilient = self._wrap_resilient(
            self.entities_service, seed=seed + 1
        )
        self.entities_managed = ManagedCall(
            self.entities_resilient or self.entities_service,
            mode=self.config.latency_mode,
            cache_capacity=self.config.cache_capacity,
            cache_ttl=self.config.cache_ttl,
            pool_depth=self.config.pool_depth,
            partial_results=self.config.partial_results,
        )

        self._services: dict[str, Any] = {
            "geocode": self.geocode_managed,
            "geocode_managed": self.geocode_managed,
            "entities": self.entities_managed,
            "entities_managed": self.entities_managed,
            "sentiment": self._classifier.classify,
            "sentiment_score": self._classifier.score,
        }

        self._sources: dict[str, SourceBinding] = {}
        if api is not None:
            self._sources["twitter"] = SourceBinding(
                name="twitter", schema=TWITTER_SCHEMA, api=api
            )

        # Historical tier: archive delivered tweets behind the live path
        # and (with ``backfill``) answer windowed queries from history.
        self.store = None
        self.storage_writer = None
        if self.config.storage_path is not None:
            from repro.storage.historical import HistoricalStore, StorageWriter

            self.store = HistoricalStore(self.config.storage_path)
            if api is not None:
                self.storage_writer = StorageWriter(
                    self.store, batch_size=self.config.storage_batch
                )
                api.tap = self.storage_writer.write

    def close(self) -> None:
        """Flush the storage writer and close the historical store.

        Safe to call on sessions without a store, and idempotent. Queries
        still running keep their own connections; only the archival side
        is torn down.
        """
        if self.storage_writer is not None:
            self.storage_writer.stop()
            self.storage_writer = None
            if self.api is not None:
                self.api.tap = None
        if self.store is not None:
            self.store.close()
            self.store = None

    def __enter__(self) -> "TweeQL":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()

    def _wrap_resilient(
        self, service: SimulatedWebService, seed: int
    ) -> ResilientService | None:
        """Retry/breaker wrapper per config; None when retries are off."""
        if self.config.retries <= 0:
            return None
        policy = RetryPolicy(
            max_retries=self.config.retries,
            deadline_seconds=self.config.retry_deadline_seconds,
            backoff_base_seconds=self.config.backoff_base_seconds,
            backoff_cap_seconds=self.config.backoff_cap_seconds,
        )
        breaker = None
        if self.config.breaker_threshold > 0:
            breaker = CircuitBreaker(
                self.clock,
                failure_threshold=self.config.breaker_threshold,
                reset_timeout_seconds=self.config.breaker_reset_seconds,
                name=service.name,
            )
        return ResilientService(service, policy, breaker=breaker, seed=seed)

    # -- construction helpers --------------------------------------------------

    @classmethod
    def for_scenarios(
        cls,
        *scenarios: Scenario,
        config: EngineConfig | None = None,
        delivery_ratio: float = 0.98,
        seed: int = rng_mod.DEFAULT_SEED,
        clock: VirtualClock | None = None,
    ) -> "TweeQL":
        """Build a session whose ``twitter`` source serves these scenarios."""
        if not scenarios:
            raise ValueError("at least one scenario is required")
        clock = clock or VirtualClock(
            start=min(s.start for s in scenarios)
        )
        firehose = Firehose.from_scenarios(*scenarios)
        resolved = config or EngineConfig()
        api = StreamingAPI(
            firehose,
            clock=clock,
            delivery_ratio=delivery_ratio,
            seed=seed,
            fault_plan=resolved.fault_plan,
            auto_reconnect=resolved.stream_reconnect,
        )
        return cls(api=api, clock=clock, config=resolved, seed=seed)

    # -- catalog ---------------------------------------------------------------

    @property
    def classifier(self) -> SentimentClassifier:
        """The sentiment classifier behind ``sentiment(text)``."""
        return self._classifier

    def register_source(
        self,
        name: str,
        rows_factory: Callable[[], Iterable[Row]],
        schema: tuple[str, ...],
    ) -> None:
        """Register a static/test source addressable in FROM clauses.

        ``rows_factory`` must return a fresh iterator of time-ordered row
        dicts on each call; rows should carry ``created_at``.
        """
        key = name.lower()
        if key == "twitter" and self.api is not None:
            raise PlanError("cannot shadow the live twitter source")
        self._sources[key] = SourceBinding(
            name=key, schema=tuple(s.lower() for s in schema),
            rows_factory=rows_factory,
        )

    def register_udf(
        self,
        name: str,
        impl: Callable[..., Any],
        stateful: bool = False,
        high_latency: bool = False,
        arg_types: tuple[str, ...] | None = None,
        return_type: str | None = None,
        min_args: int | None = None,
        variadic: bool = False,
        replace: bool = False,
    ) -> None:
        """Register a user-defined function usable in queries.

        ``impl`` receives ``(ctx, *args)`` — or is a zero-arg factory of
        such a callable when ``stateful`` — mirroring how the demo let the
        audience "build their own UDFs for more advanced processing".
        Optional ``arg_types``/``return_type`` feed the static analyzer;
        overriding an existing name (including a builtin) requires
        ``replace=True``.
        """
        self.registry.register(
            name, impl, stateful=stateful, high_latency=high_latency,
            arg_types=arg_types, return_type=return_type,
            min_args=min_args, variadic=variadic, replace=replace,
        )

    def table(self, name: str) -> TableSink:
        """Fetch-or-create the named result table (``INTO`` target)."""
        key = name.lower()
        if key not in self.tables:
            self.tables[key] = TableSink(key)
        return self.tables[key]

    # -- queries ----------------------------------------------------------------

    def _planner(self, config: EngineConfig | None = None) -> Planner:
        return Planner(
            sources=self._sources,
            registry=self.registry,
            services=self._services,
            clock=self.clock,
            config=config or self.config,
            table_factory=self.table,
            store=self.store,
        )

    def plan(self, sql: str) -> PhysicalPlan:
        """Parse and plan without executing (EXPLAIN support)."""
        return self._planner().plan(parse(sql))

    def analyze(self, sql: str):
        """Statically analyze a query against this session's catalog.

        Returns the full :class:`repro.sql.analysis.AnalysisResult` —
        type findings, semantic errors, and lints with source spans —
        without planning or executing anything. Syntax errors become
        diagnostics rather than raising.
        """
        from repro.sql import analysis

        return analysis.analyze_sql(
            sql,
            catalog=analysis.catalog_from_sources(self._sources),
            registry=self.registry,
            config=self.config,
        )

    def query(self, sql: str) -> QueryHandle:
        """Parse, plan, and return a handle on the running query.

        A query ending in ``INTO STREAM <name>`` additionally registers a
        *derived stream*: later queries may name it in FROM, and each such
        reader re-runs this query's pipeline lazily (original TweeQL's
        stream-composition feature — how a stateful UDF like ``meandev``
        consumes "the aggregate tweet count" of an upstream query).
        """
        statement = parse(sql)
        plan = self._planner().plan(statement)
        if statement.into_stream is not None:
            self._register_derived(statement, plan.output_schema)
        return QueryHandle(sql, plan)

    def _register_derived(self, statement, schema: tuple[str, ...]) -> None:
        name = statement.into_stream.lower()
        if name == "twitter" and self.api is not None:
            raise PlanError("cannot shadow the live twitter source")
        base = replace_into_stream(statement)

        def rows_factory():
            derived_plan = self._planner().plan(base)
            return iter_rows(derived_plan.pipeline)

        columns = [
            column.lower() for column in schema if not column.startswith("__")
        ]
        columns.append("created_at")  # every pipeline stamps emission time
        self._sources[name] = SourceBinding(
            name=name,
            schema=tuple(dict.fromkeys(columns)),
            rows_factory=rows_factory,
        )

    def shared(
        self,
        source: str = "twitter",
        *,
        max_tenants: int | None = None,
        buffer_batches: int | None = None,
        stall_seconds: float | None = None,
    ):
        """Open a multi-tenant shared-scan group over one source.

        The group runs **one** stream connection and one scan, fanning
        batches out to every admitted query — ``group.query(sql)`` instead
        of :meth:`query` — with shared filter-prefix evaluation and
        cross-tenant UDF cache attribution. Admission closes when the
        first row is pulled. Defaults come from ``EngineConfig``
        (``shared_max_tenants`` / ``shared_buffer_batches`` /
        ``shared_stall_seconds``). See :mod:`repro.engine.multitenant`
        and docs/MULTITENANT.md.
        """
        from repro.engine.multitenant import SharedScanGroup
        from repro.errors import UnknownSourceError

        binding = self._sources.get(source.lower())
        if binding is None:
            raise UnknownSourceError(source, tuple(sorted(self._sources)))
        config = self.config
        return SharedScanGroup(
            self._planner(),
            binding,
            self._services,
            self.clock,
            max_tenants=(
                max_tenants
                if max_tenants is not None
                else config.shared_max_tenants
            ),
            buffer_batches=(
                buffer_batches
                if buffer_batches is not None
                else config.shared_buffer_batches
            ),
            stall_seconds=(
                stall_seconds
                if stall_seconds is not None
                else config.shared_stall_seconds
            ),
        )

    def explain(
        self, sql: str, analyze: bool = False, limit: int | None = None
    ) -> str:
        """The plan description for a query.

        ``analyze=True`` is EXPLAIN ANALYZE: the query is planned with
        tracing forced on, run to exhaustion (cap unbounded streams with
        ``limit``), and rendered with per-operator rows/batches/timing,
        query totals, service accounting, and a span census.
        """
        if not analyze:
            return self.plan(sql).explain()
        import dataclasses

        config = (
            self.config
            if self.config.tracing
            else dataclasses.replace(self.config, tracing=True)
        )
        plan = self._planner(config).plan(parse(sql))
        handle = QueryHandle(sql, plan)
        try:
            return handle.explain(analyze=True, limit=limit)
        finally:
            handle.close()
