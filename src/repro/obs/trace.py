"""Span tracing on the virtual clock.

A :class:`Span` is one timed interval — an operator's lifetime, one batch
pull, one service round trip, one retry backoff, one stream reconnect —
with a name, a kind, a lane (the logical execution thread: ``main`` for
serial plans, ``exchange`` / ``worker-N`` / ``merge`` for sharded ones),
virtual-clock start/end timestamps, and optional parent linkage (batch
spans point at their operator span).

The :class:`Tracer` records spans append-only under a lock, so sharded
worker pipelines can emit concurrently. Timestamps come from the shared
:class:`~repro.clock.VirtualClock`; on a serial plan the clock advances
deterministically (stream delivery and service latency draws are seeded),
so two runs of the same query produce byte-identical traces. Under
sharding, *counts* stay deterministic but worker-lane timestamps depend on
thread interleaving — the chaos/parallel docs call this out, and the
golden tests pin sharded traces only on sources that never advance the
clock.

:class:`TraceOperator` is the pipeline instrumentation: the planner wraps
each stage in one when tracing is enabled, and the wrapper counts rows and
batches into an :class:`OperatorProbe` (the per-operator aggregate EXPLAIN
ANALYZE renders) while emitting a batch span per pull and one operator
span over the stage's lifetime.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field
from typing import Any

from repro.engine.sanitizer import registered_lock

#: Span kinds, for filtering and for exporter categories. ``sanitizer``
#: marks TQLSAN violation instants (see repro.engine.sanitizer).
KINDS = (
    "query", "operator", "batch", "service", "stall",
    "retry", "reconnect", "exchange", "sanitizer",
)


@dataclass(slots=True)
class Span:
    """One recorded interval on the virtual clock."""

    span_id: int
    name: str
    kind: str
    lane: str
    start: float
    end: float
    #: Per-lane emission ordinal — the deterministic sort key exporters
    #: use (global span_id allocation order is racy under sharding).
    lane_seq: int
    parent_id: int | None = None
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def as_dict(self) -> dict[str, Any]:
        return {
            "span_id": self.span_id,
            "name": self.name,
            "kind": self.kind,
            "lane": self.lane,
            "start": round(self.start, 6),
            "end": round(self.end, 6),
            "lane_seq": self.lane_seq,
            "parent_id": self.parent_id,
            "attrs": dict(self.attrs),
        }


@dataclass
class OperatorProbe:
    """Aggregate counters for one wrapped pipeline stage.

    ``wall_seconds`` is *inclusive* time: virtual seconds that elapsed
    while this stage (and everything upstream of it) produced its batches.
    The EXPLAIN ANALYZE renderer subtracts the upstream probe's wall to
    show self time.
    """

    name: str
    lane: str = "main"
    rows: int = 0
    batches: int = 0
    wall_seconds: float = 0.0
    first_ts: float | None = None
    last_ts: float | None = None

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "lane": self.lane,
            "rows": self.rows,
            "batches": self.batches,
            "wall_seconds": round(self.wall_seconds, 6),
        }


class Tracer:
    """Thread-safe append-only span recorder over a virtual clock."""

    def __init__(self, clock: Any, batch_spans: bool = True) -> None:
        self.clock = clock
        #: Virtual time at plan time — the query span's start.
        self.started_at: float = clock.now
        #: Record a span per batch pull (set False to keep only operator /
        #: service / retry / reconnect spans on very long streams).
        self.batch_spans = batch_spans
        self.spans: list[Span] = []
        self.probes: list[OperatorProbe] = []
        self._lock = registered_lock("trace.spans")
        self._next_id = 0
        self._lane_seq: dict[str, int] = {}

    def add(
        self,
        name: str,
        kind: str,
        start: float,
        end: float,
        lane: str = "main",
        parent_id: int | None = None,
        **attrs: Any,
    ) -> Span:
        """Record one completed span; returns it (id assigned here)."""
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
            lane_seq = self._lane_seq.get(lane, 0)
            self._lane_seq[lane] = lane_seq + 1
            span = Span(
                span_id=span_id, name=name, kind=kind, lane=lane,
                start=start, end=end, lane_seq=lane_seq,
                parent_id=parent_id, attrs=attrs,
            )
            self.spans.append(span)
            return span

    def instant(
        self, name: str, kind: str, lane: str = "main", **attrs: Any
    ) -> Span:
        """Record a zero-duration marker at the current virtual time."""
        now = self.clock.now
        return self.add(name, kind, now, now, lane=lane, **attrs)

    def probe(self, name: str, lane: str = "main") -> OperatorProbe:
        """Register a per-operator aggregate (pipeline order preserved)."""
        probe = OperatorProbe(name=name, lane=lane)
        with self._lock:
            self.probes.append(probe)
        return probe

    # -- queries over the record ----------------------------------------------

    def spans_of(self, *kinds: str) -> list[Span]:
        """Spans of the given kinds, in deterministic (lane, seq) order."""
        return sorted(
            (s for s in self.spans if s.kind in kinds),
            key=lambda s: (s.lane, s.lane_seq),
        )

    def sorted_spans(self) -> list[Span]:
        """Every span in deterministic (lane, lane_seq) order."""
        return sorted(self.spans, key=lambda s: (s.lane, s.lane_seq))


class TraceOperator:
    """Wraps one pipeline stage with row/batch/time accounting.

    Transparent to the data: batches pass through untouched, so traced and
    untraced runs are row-for-row identical. Each pull of the child is
    timed on the virtual clock (inclusive of upstream work) and recorded
    as a batch span; one operator span covers the stage's lifetime and is
    emitted when the stage exhausts — or when an abandoning consumer
    closes the generator (LIMIT, handle.close()).
    """

    def __init__(self, child: Any, probe: OperatorProbe, tracer: Tracer) -> None:
        self._child = child
        self._probe = probe
        self._tracer = tracer

    def __iter__(self) -> Iterator[Any]:
        tracer = self._tracer
        probe = self._probe
        clock = tracer.clock
        # The operator span opens at the first pull (so batch spans can
        # point at it) and has its end patched when the stage winds down.
        op_span = tracer.add(
            probe.name, "operator", clock.now, clock.now, lane=probe.lane
        )
        child = iter(self._child)
        try:
            while True:
                t0 = clock.now
                batch = next(child, None)
                t1 = clock.now
                probe.wall_seconds += t1 - t0
                if probe.first_ts is None:
                    probe.first_ts = t0
                    op_span.start = t0
                probe.last_ts = t1
                if batch is None:
                    break
                probe.batches += 1
                probe.rows += len(batch.rows)
                if tracer.batch_spans:
                    tracer.add(
                        probe.name, "batch", t0, t1, lane=probe.lane,
                        parent_id=op_span.span_id,
                        rows=len(batch.rows), seq=batch.seq, last=batch.last,
                    )
                yield batch
                if batch.last:
                    break
        finally:
            op_span.end = probe.last_ts if probe.last_ts is not None else clock.now
            op_span.attrs.update(
                rows=probe.rows, batches=probe.batches,
                wall_seconds=round(probe.wall_seconds, 6),
            )
