"""Unified observability: span tracing, metrics, EXPLAIN ANALYZE, exporters.

The engine's accounting used to live in scattered counter objects
(``QueryStats``, ``ManagedCallStats``, cache/resilience/breaker dicts,
``ConnectionStats``) with no per-operator timing. This package adds the
missing layer on top of the same virtual clock that drives execution:

- :mod:`repro.obs.trace` — structured spans (operator, batch, service,
  retry, reconnect, exchange) recorded by a thread-safe :class:`Tracer`;
  virtual timestamps make serial traces fully deterministic.
- :mod:`repro.obs.metrics` — a counter/gauge/histogram registry that
  absorbs the ad-hoc stats objects behind one ``snapshot()`` tree.
- :mod:`repro.obs.analyze` — EXPLAIN ANALYZE rendering: the plan
  annotated with rows, batches, wall/stall time, cache hit rates, and
  retries per operator.
- :mod:`repro.obs.export` — Chrome-trace JSON and Prometheus-style text.

Tracing is off by default (``EngineConfig.tracing=False``) and, when off,
the planner builds the exact same pipeline as before — zero wrappers,
zero per-row cost.
"""

from repro.obs.analyze import reconcile, render_analyze
from repro.obs.export import chrome_trace, render_prometheus, write_chrome_trace
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    app_metrics,
    query_metrics,
    shared_metrics,
)
from repro.obs.trace import OperatorProbe, Span, TraceOperator, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "OperatorProbe",
    "Span",
    "TraceOperator",
    "Tracer",
    "app_metrics",
    "chrome_trace",
    "query_metrics",
    "reconcile",
    "render_analyze",
    "render_prometheus",
    "shared_metrics",
    "write_chrome_trace",
]
