"""EXPLAIN ANALYZE rendering and span/stats reconciliation.

``render_analyze(handle)`` produces the plan description followed by an
execution profile: one line per instrumented operator (lane, rows,
batches, inclusive wall time, self time), the query-level counter totals,
per-service call/cache/stall/retry accounting, and a span census. All
numbers come from the virtual clock and deterministic counters, so the
rendering is golden-testable (serial timings are exact; sharded worker
timings depend on thread interleaving, which the golden tests avoid by
profiling sources that never advance the clock).

``reconcile(handle)`` cross-checks the trace against the engine's own
counters — the probes are an independent measurement of the same stream,
so scan rows must equal ``QueryStats.rows_scanned`` and the final stage's
rows must equal ``rows_emitted``. The property tests assert ``ok``.
"""

from __future__ import annotations

from typing import Any


def _require_tracer(handle: Any) -> Any:
    tracer = getattr(handle, "tracer", None)
    if tracer is None:
        from repro.errors import ExecutionError

        raise ExecutionError(
            "EXPLAIN ANALYZE needs a traced plan: enable "
            "EngineConfig.tracing=True (or use TweeQL.explain(sql, "
            "analyze=True), which does so for you)"
        )
    return tracer


def render_analyze(handle: Any) -> str:
    """The annotated plan for an executed (traced) query handle."""
    tracer = _require_tracer(handle)
    lines: list[str] = [handle.explain()]
    lines.append("-- EXPLAIN ANALYZE " + "-" * 53)

    probes = list(tracer.probes)
    if probes:
        name_width = max(24, max(len(p.name) for p in probes) + 1)
        lane_width = max(8, max(len(p.lane) for p in probes) + 1)
        lines.append(
            f"{'lane':<{lane_width}}{'operator':<{name_width}}"
            f"{'rows':>10}{'batches':>9}{'wall s':>12}{'self s':>12}"
        )
        last_wall_in_lane: dict[str, float] = {}
        for probe in probes:
            upstream = last_wall_in_lane.get(probe.lane, 0.0)
            self_seconds = max(0.0, probe.wall_seconds - upstream)
            last_wall_in_lane[probe.lane] = probe.wall_seconds
            lines.append(
                f"{probe.lane:<{lane_width}}{probe.name:<{name_width}}"
                f"{probe.rows:>10}{probe.batches:>9}"
                f"{probe.wall_seconds:>12.3f}{self_seconds:>12.3f}"
            )
    else:
        lines.append("(no operators ran)")

    stats = handle.stats.as_dict()
    lines.append(
        "query totals: "
        + " ".join(f"{key}={value}" for key, value in stats.items())
    )

    service_lines: list[str] = []
    for name, block in sorted(handle.service_stats.items()):
        if not block.get("calls"):
            continue
        parts = [
            f"calls={block['calls']}",
            f"cache_hits={block['cache_hits']}",
        ]
        cache = block.get("cache")
        if cache is not None:
            parts.append(f"hit_rate={cache['hit_rate'] * 100:.1f}%")
        parts.extend(
            [
                f"stalls={block['stalls']}",
                f"stall={block['stall_seconds']:.3f}s",
                f"prefetch={block['prefetch_seconds']:.3f}s",
                f"prefetched={block['prefetched']}",
            ]
        )
        resilience = block.get("resilience")
        if resilience is not None:
            parts.append(f"retries={resilience['retries']}")
            parts.append(f"giveups={resilience['giveups']}")
        breaker = block.get("breaker")
        if breaker is not None:
            parts.append(f"breaker={breaker['state']}")
        service_lines.append(f"  {name}: " + " ".join(parts))
    if service_lines:
        lines.append("services:")
        lines.extend(service_lines)
    else:
        lines.append("services: none called")

    census: dict[str, int] = {}
    for span in tracer.spans:
        census[span.kind] = census.get(span.kind, 0) + 1
    lines.append(
        f"trace: {len(tracer.spans)} span(s)"
        + (
            " ("
            + " ".join(
                f"{kind}={census[kind]}" for kind in sorted(census)
            )
            + ")"
            if census
            else ""
        )
    )
    return "\n".join(lines)


def reconcile(handle: Any) -> dict[str, Any]:
    """Cross-check trace probes against the engine's own counters.

    - scan rows: the sum over ``Scan``-named probes (the sharded plan's
      worker-side ShardScan deliberately does not re-count, matching how
      ``rows_scanned`` itself is kept);
    - emitted rows: the last-registered probe wraps the plan's final
      stage, whose row count is the query's output (plus, symmetrically,
      whatever punctuation the stats counter also never sees).
    """
    tracer = _require_tracer(handle)
    probes = list(tracer.probes)
    stats = handle.stats
    scan_rows = sum(p.rows for p in probes if p.name.startswith("Scan"))
    emitted_rows = probes[-1].rows if probes else 0
    report = {
        "scan_rows": scan_rows,
        "rows_scanned": stats.rows_scanned,
        "emitted_rows": emitted_rows,
        "rows_emitted": stats.rows_emitted,
    }
    report["ok"] = (
        scan_rows == stats.rows_scanned
        and emitted_rows == stats.rows_emitted
    )
    return report
