"""Trace and metrics exporters: Chrome trace JSON, Prometheus text.

Chrome traces load in ``chrome://tracing`` / Perfetto: each lane becomes
a named thread row, every span a complete ("X") event with virtual-clock
microsecond timestamps. Events are ordered by the per-lane emission
ordinal, so the file is byte-deterministic whenever the underlying trace
is (always for serial plans; for sharded plans whenever the source never
advances the clock — see :mod:`repro.obs.trace`).

The Prometheus exporter renders a :class:`~repro.obs.metrics.MetricsRegistry`
in the text exposition format (version 0.0.4) for the TwitInfo server's
``/metrics`` endpoint.
"""

from __future__ import annotations

import json
from typing import Any


def chrome_trace_events(
    tracer: Any, pid: int = 1, process_name: str = "tweeql"
) -> list[dict[str, Any]]:
    """The trace as a list of Chrome trace events (one process)."""
    spans = tracer.sorted_spans()
    lanes: list[str] = []
    for span in spans:
        if span.lane not in lanes:
            lanes.append(span.lane)
    # Span ids are allocated under a lock shared by every lane, so their
    # values depend on thread interleaving even when the spans themselves
    # are deterministic. Renumber by deterministic (lane, lane_seq)
    # position so parent links survive byte-for-byte comparison.
    renumber = {span.span_id: index for index, span in enumerate(spans)}
    events: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    tids = {lane: index + 1 for index, lane in enumerate(lanes)}
    for lane, tid in tids.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": lane},
            }
        )
    for span in spans:
        events.append(
            {
                "name": span.name,
                "cat": span.kind,
                "ph": "X",
                "ts": round(span.start * 1e6, 3),
                "dur": round(span.duration * 1e6, 3),
                "pid": pid,
                "tid": tids[span.lane],
                "args": {
                    **span.attrs,
                    **(
                        {"parent": renumber[span.parent_id]}
                        if span.parent_id in renumber
                        else {}
                    ),
                },
            }
        )
    return events


def chrome_trace(
    traces: Any, process_name: str = "tweeql"
) -> dict[str, Any]:
    """A complete Chrome trace document.

    ``traces`` is one tracer, or a list of ``(name, tracer)`` pairs —
    each pair becomes its own process row (the CLI uses this to put every
    analyzed query of a ``.tql`` file in one file).
    """
    if hasattr(traces, "sorted_spans"):
        pairs = [(process_name, traces)]
    else:
        pairs = list(traces)
    events: list[dict[str, Any]] = []
    for index, (name, tracer) in enumerate(pairs, start=1):
        events.extend(chrome_trace_events(tracer, pid=index, process_name=name))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    traces: Any, path: str, process_name: str = "tweeql"
) -> None:
    """Serialize :func:`chrome_trace` to ``path`` (stable key order)."""
    document = chrome_trace(traces, process_name=process_name)
    with open(path, "w", encoding="utf-8") as f:
        json.dump(document, f, indent=1, sort_keys=True)
        f.write("\n")


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------


def _prometheus_name(dotted: str) -> str:
    cleaned = [
        ch if (ch.isalnum() or ch == "_") else "_" for ch in dotted
    ]
    return "tweeql_" + "".join(cleaned)


def _format_value(value: float) -> str:
    if isinstance(value, float) and value == int(value):
        return str(int(value))
    return repr(value)


def render_prometheus(registry: Any) -> str:
    """The registry in Prometheus text exposition format."""
    lines: list[str] = []
    for dotted, value in registry.flat().items():
        name = _prometheus_name(dotted)
        if isinstance(value, dict):  # histogram
            lines.append(f"# TYPE {name} histogram")
            for bucket, count in value["buckets"].items():
                le = bucket.removeprefix("le_").replace("inf", "+Inf")
                lines.append(f'{name}_bucket{{le="{le}"}} {count}')
            lines.append(f"{name}_sum {_format_value(value['sum'])}")
            lines.append(f"{name}_count {value['count']}")
        else:
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {_format_value(value)}")
    return "\n".join(lines) + "\n"
