"""Metrics registry: counters, gauges, histograms behind one snapshot tree.

The engine already counts plenty — ``QueryStats``, ``ManagedCallStats``,
``CacheStats``, resilience/breaker stats, ``ConnectionStats`` — but each
lives on its own object with its own ``as_dict()``. The registry gives
them one home: metric names are dotted paths (``query.rows_scanned``,
``service.geocoder.cache.hits``), labels are folded into the path, and
``snapshot()`` returns the whole tree as nested dicts, ready for JSON or
the Prometheus text exporter.

:func:`query_metrics` absorbs a finished (or running) query handle;
:func:`app_metrics` absorbs a TwitInfo application (events, panels, and
the session's services) for the server's ``/metrics`` endpoint.
"""

from __future__ import annotations

from typing import Any

from repro.engine.sanitizer import registered_lock

#: Histogram bucket upper bounds (virtual seconds) — tuned for service
#: latencies in the hundreds-of-ms range the paper describes.
DEFAULT_BUCKETS = (0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        self.value += amount

    def as_value(self) -> float:
        return self.value


class Gauge:
    """A value that can go up and down (queue depth, breaker state)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.value -= amount

    def as_value(self) -> float:
        return self.value


class Histogram:
    """Fixed-bucket histogram with count and sum (Prometheus-style)."""

    __slots__ = ("buckets", "counts", "count", "sum")

    def __init__(self, buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.buckets = tuple(sorted(buckets))
        self.counts = [0] * (len(self.buckets) + 1)  # +inf bucket last
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    def as_value(self) -> dict[str, Any]:
        cumulative: list[int] = []
        running = 0
        for count in self.counts:
            running += count
            cumulative.append(running)
        return {
            "count": self.count,
            "sum": round(self.sum, 6),
            "buckets": {
                **{f"le_{bound:g}": cum
                   for bound, cum in zip(self.buckets, cumulative)},
                "le_inf": cumulative[-1],
            },
        }


Metric = Counter | Gauge | Histogram


class MetricsRegistry:
    """Get-or-create registry of named metrics with a nested snapshot.

    Names are dotted paths; ``snapshot()`` splits on the dots to build the
    tree (``service.geocoder.calls`` → ``{"service": {"geocoder":
    {"calls": …}}}``). Registration is thread-safe; metric updates rely on
    the GIL-atomicity of the underlying ``+=`` the way the engine's
    existing stats objects already do.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}
        self._lock = registered_lock("metrics.registry")

    def _get_or_create(self, name: str, factory: Any, kind: type[Any]) -> Any:
        metric = self._metrics.get(name)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(name)
                if metric is None:
                    metric = factory()
                    self._metrics[name] = metric
        if not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} is a {type(metric).__name__}, "
                f"not a {kind.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge, Gauge)

    def histogram(
        self, name: str, buckets: tuple[float, ...] = DEFAULT_BUCKETS
    ) -> Histogram:
        return self._get_or_create(
            name, lambda: Histogram(buckets), Histogram
        )

    def absorb(self, prefix: str, stats: dict[str, Any]) -> None:
        """Fold a flat-or-nested ``as_dict()`` snapshot into the registry.

        Numeric leaves become counters-or-gauges (gauge, so absorbing a
        fresh snapshot overwrites rather than double-counts); nested dicts
        recurse with a dotted prefix; non-numeric leaves are skipped.
        """
        for key, value in stats.items():
            name = f"{prefix}.{key}" if prefix else str(key)
            if isinstance(value, dict):
                self.absorb(name, value)
            elif isinstance(value, bool):
                self.gauge(name).set(int(value))
            elif isinstance(value, (int, float)):
                self.gauge(name).set(value)

    def snapshot(self) -> dict[str, Any]:
        """The whole registry as one nested dict tree."""
        tree: dict[str, Any] = {}
        for name in sorted(self._metrics):
            parts = name.split(".")
            node = tree
            for part in parts[:-1]:
                node = node.setdefault(part, {})
                if not isinstance(node, dict):
                    raise ValueError(
                        f"metric {name!r} collides with a leaf at {part!r}"
                    )
            node[parts[-1]] = self._metrics[name].as_value()
        return tree

    def flat(self) -> dict[str, Any]:
        """``{dotted name → value}`` for the Prometheus exporter."""
        return {
            name: self._metrics[name].as_value()
            for name in sorted(self._metrics)
        }


# ---------------------------------------------------------------------------
# Collectors: absorb the engine's existing stats objects
# ---------------------------------------------------------------------------


def query_metrics(handle: Any) -> MetricsRegistry:
    """One registry view of a query handle's scattered stats.

    ``query.*`` carries :class:`~repro.engine.types.QueryStats`;
    ``service.<name>.*`` the per-service ManagedCall / cache / resilience
    / breaker blocks (exactly :attr:`QueryHandle.service_stats`);
    ``connection.<i>.*`` each stream connection's delivery accounting.
    """
    registry = MetricsRegistry()
    registry.absorb("query", handle.stats.as_dict())
    for name, stats in handle.service_stats.items():
        registry.absorb(f"service.{name}", stats)
    for index, connection in enumerate(getattr(handle, "connections", ())):
        registry.absorb(f"connection.{index}", connection.stats.as_dict())
    return registry


def shared_metrics(
    group: Any, registry: MetricsRegistry | None = None, prefix: str = "shared"
) -> MetricsRegistry:
    """One registry view of a shared-scan group's counters.

    ``shared.group.*`` carries admission/routing/sharing totals,
    ``shared.fanout.*`` the shared scan's QueryStats, ``shared.tenant.<i>.*``
    per-tenant routing plus live ``buffer_depth`` (the fanout-lag signal)
    and ``buffer_highwater``, ``shared.cache.<service>.*`` cross-tenant
    hit-rate attribution, and ``shared.connection.*`` the single stream
    connection's delivery accounting.
    """
    if registry is None:
        registry = MetricsRegistry()
    registry.absorb(prefix, group.stats_dict())
    return registry


def app_metrics(app: Any) -> MetricsRegistry:
    """Registry for the TwitInfo server's ``/metrics`` endpoint.

    Per tracked event: tweets logged, peaks, sentiment counts, distinct
    links, geotagged markers, timeline bins. Session-wide: each managed
    service's call/cache accounting, plus one ``shared.<i>.*`` tree per
    shared-scan group the app has opened (``shared_scan`` mode).
    """
    registry = MetricsRegistry()
    for name, tracked in app.events.items():
        prefix = f"event.{_metric_safe(name)}"
        registry.absorb(prefix, tracked.report().as_dict())
        registry.gauge(f"{prefix}.timeline_bins").set(len(tracked.timeline))
        registry.gauge(f"{prefix}.timeline_total").set(tracked.timeline.total)
        coverage = getattr(tracked, "coverage", None)
        if coverage is not None:
            registry.gauge(f"{prefix}.coverage").set(coverage.coverage)
            registry.gauge(f"{prefix}.coverage_confidence").set(
                coverage.confidence
            )
    session = app.session
    for key, managed in session._services.items():
        if not key.endswith("_managed"):
            continue
        service_name = key.removesuffix("_managed")
        registry.absorb(
            f"service.{service_name}", managed.stats.as_dict()
        )
        cache = getattr(managed, "cache", None)
        if cache is not None:
            registry.absorb(
                f"service.{service_name}.cache", cache.stats.as_dict()
            )
        inner = getattr(managed, "service", None)
        resilience = getattr(inner, "resilience", None)
        if resilience is not None:
            registry.absorb(
                f"service.{service_name}.resilience", resilience.as_dict()
            )
    for index, group in enumerate(getattr(app, "shared_groups", ())):
        shared_metrics(group, registry, prefix=f"shared.{index}")
    writer = getattr(session, "storage_writer", None)
    if writer is not None:
        registry.absorb("storage.writer", writer.metrics())
    store = getattr(session, "store", None)
    if store is not None:
        registry.gauge("storage.rows").set(len(store))
    return registry


def _metric_safe(name: str) -> str:
    """Collapse arbitrary event names into metric-path-safe tokens."""
    cleaned = [
        ch if (ch.isalnum() or ch == "_") else "_" for ch in name.strip()
    ]
    token = "".join(cleaned).strip("_")
    return token or "event"
