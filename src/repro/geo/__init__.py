"""Geocoding substrate.

The paper's ``latitude(loc)`` / ``longitude(loc)`` UDFs call a remote
geocoding web service. This package provides:

- :mod:`repro.geo.gazetteer` — an embedded world-city gazetteer used both to
  place synthetic users and to resolve location strings,
- :mod:`repro.geo.geocode` — a free-text location parser/geocoder,
- :mod:`repro.geo.bbox` — bounding boxes (the streaming API's ``locations``
  filter and queries like "tweets from NYC"),
- :mod:`repro.geo.service` — a simulated remote web service wrapper with a
  configurable latency model, batch endpoint, and failure injection.
"""

from repro.geo.bbox import BoundingBox, NAMED_BOXES
from repro.geo.gazetteer import City, Gazetteer, default_gazetteer
from repro.geo.geocode import Geocoder
from repro.geo.service import LatencyModel, ServiceStats, SimulatedWebService

__all__ = [
    "BoundingBox",
    "NAMED_BOXES",
    "City",
    "Gazetteer",
    "default_gazetteer",
    "Geocoder",
    "LatencyModel",
    "ServiceStats",
    "SimulatedWebService",
]
