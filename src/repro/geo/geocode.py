"""Free-text geocoding.

Twitter profile locations in 2011 were free text ("new york, ny", "NYC!!",
"São Paulo/Brasil", "somewhere over the rainbow"). The paper's
``latitude(loc)`` / ``longitude(loc)`` UDFs forwarded such strings to a
remote geocoding service. :class:`Geocoder` is the resolution logic of that
service: normalize the messy string, match it against the gazetteer, and
return coordinates — or fail, as real geocoders often do on whimsical
profile locations.

The latency/failure behaviour of the *remote* service lives in
:mod:`repro.geo.service`; this module is pure lookup logic and is synchronous
and fast, which also makes it reusable as the ground-truth oracle in tests.
"""

from __future__ import annotations

import re

from repro.errors import GeocodeError
from repro.geo.gazetteer import City, Gazetteer, default_gazetteer

_PUNCT_RE = re.compile(r"[!?.…~*#@♥❤()\[\]{}<>|_=+^\"']+")
_WS_RE = re.compile(r"\s+")

#: Suffix tokens users append that carry no geographic signal.
_NOISE_TOKENS = frozenset(
    {
        "area", "city", "greater", "metro", "downtown", "uptown",
        "the", "in", "from", "of", "near", "via", "currently",
    }
)


def normalize_location(raw: str) -> str:
    """Normalize a free-text profile location for matching.

    Strips decorative punctuation, collapses whitespace, and lowercases.
    """
    text = _PUNCT_RE.sub(" ", raw)
    text = _WS_RE.sub(" ", text).strip()
    return text.casefold()


class Geocoder:
    """Resolve free-text locations to gazetteer cities.

    Resolution strategy, in order:

    1. exact match of the normalized string against names and aliases;
    2. match of the part before a comma/slash ("boston, ma" → "boston");
    3. per-token match after dropping noise words ("downtown tokyo" →
       "tokyo");
    4. substring scan for multi-word city names ("living in new york city").

    Anything still unresolved raises :class:`~repro.errors.GeocodeError`,
    mirroring a real service's NOT_FOUND response.
    """

    def __init__(self, gazetteer: Gazetteer | None = None) -> None:
        self._gazetteer = gazetteer or default_gazetteer()
        # Precompute normalized name → City, longest names first so that
        # substring scanning prefers "new york city" over "york".
        self._keys: list[tuple[str, City]] = []
        for city in self._gazetteer.cities:
            self._keys.append((normalize_location(city.name), city))
            for alias in city.aliases:
                self._keys.append((normalize_location(alias), city))
        self._exact = {key: city for key, city in self._keys}
        self._keys.sort(key=lambda pair: len(pair[0]), reverse=True)

    @property
    def gazetteer(self) -> Gazetteer:
        """The gazetteer backing this geocoder."""
        return self._gazetteer

    def resolve(self, location: str) -> City:
        """Resolve a location string to a :class:`City`.

        Raises:
            GeocodeError: when no gazetteer entry matches.
        """
        if not location or not location.strip():
            raise GeocodeError(location)
        norm = normalize_location(location)
        if not norm:
            raise GeocodeError(location)

        city = self._exact.get(norm)
        if city is not None:
            return city

        # Leading segment before a separator: "boston, ma" / "rio / brazil".
        head = re.split(r"[,/;-]", norm, maxsplit=1)[0].strip()
        if head and head != norm:
            city = self._exact.get(head)
            if city is not None:
                return city

        # Token-wise match with noise words removed.
        tokens = [t for t in norm.split() if t not in _NOISE_TOKENS]
        for size in (3, 2, 1):
            for start in range(0, max(0, len(tokens) - size + 1)):
                candidate = " ".join(tokens[start : start + size])
                city = self._exact.get(candidate)
                if city is not None:
                    return city

        # Substring scan (longest city names first).
        for key, candidate_city in self._keys:
            if len(key) >= 4 and key in norm:
                return candidate_city

        raise GeocodeError(location)

    def geocode(self, location: str) -> tuple[float, float]:
        """Resolve a location string to a (lat, lon) pair.

        Raises:
            GeocodeError: when no gazetteer entry matches.
        """
        return self.resolve(location).coordinates

    def try_geocode(self, location: str) -> tuple[float, float] | None:
        """Like :meth:`geocode` but returns None instead of raising."""
        try:
            return self.geocode(location)
        except GeocodeError:
            return None
