"""Bounding boxes.

The Twitter streaming API's ``locations`` filter takes longitude/latitude
bounding boxes; TweeQL queries like the paper's

    WHERE text contains 'obama' AND location in [bounding box for NYC]

filter on them too. This module provides the box type, point tests, and a
set of named boxes used by queries, workloads, and tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class BoundingBox:
    """A latitude/longitude axis-aligned box.

    Follows the Twitter API convention of (south, west, north, east); the
    constructor validates ordering. Boxes crossing the antimeridian are not
    supported (the original API had the same restriction).
    """

    south: float
    west: float
    north: float
    east: float
    name: str = ""

    def __post_init__(self) -> None:
        if not (-90.0 <= self.south <= self.north <= 90.0):
            raise ValueError(
                f"invalid latitudes: south={self.south}, north={self.north}"
            )
        if not (-180.0 <= self.west <= self.east <= 180.0):
            raise ValueError(
                f"invalid longitudes: west={self.west}, east={self.east}"
            )

    def contains(self, lat: float, lon: float) -> bool:
        """True when (lat, lon) lies inside (inclusive) the box."""
        return self.south <= lat <= self.north and self.west <= lon <= self.east

    def contains_point(self, point: tuple[float, float] | None) -> bool:
        """Convenience: test an optional (lat, lon) tuple; None is outside."""
        if point is None:
            return False
        return self.contains(point[0], point[1])

    @property
    def center(self) -> tuple[float, float]:
        """(lat, lon) midpoint of the box."""
        return ((self.south + self.north) / 2.0, (self.west + self.east) / 2.0)

    @property
    def area_deg2(self) -> float:
        """Box area in square degrees (flat approximation)."""
        return (self.north - self.south) * (self.east - self.west)

    def expanded(self, margin_deg: float) -> "BoundingBox":
        """A copy grown by ``margin_deg`` on every side, clamped to bounds."""
        return BoundingBox(
            south=max(-90.0, self.south - margin_deg),
            west=max(-180.0, self.west - margin_deg),
            north=min(90.0, self.north + margin_deg),
            east=min(180.0, self.east + margin_deg),
            name=self.name,
        )

    @classmethod
    def around(
        cls, lat: float, lon: float, radius_km: float, name: str = ""
    ) -> "BoundingBox":
        """Build a box covering roughly ``radius_km`` around a point."""
        dlat = radius_km / 111.0
        dlon = radius_km / (111.0 * max(0.1, math.cos(math.radians(lat))))
        return cls(
            south=max(-90.0, lat - dlat),
            west=max(-180.0, lon - dlon),
            north=min(90.0, lat + dlat),
            east=min(180.0, lon + dlon),
            name=name,
        )


#: Named boxes used throughout queries, workloads, and the demo.
NAMED_BOXES: dict[str, BoundingBox] = {
    "nyc": BoundingBox(40.4774, -74.2591, 40.9176, -73.7004, name="nyc"),
    "boston": BoundingBox(42.2279, -71.1912, 42.3969, -70.9860, name="boston"),
    "sf": BoundingBox(37.6398, -123.1738, 37.9298, -122.2818, name="sf"),
    "la": BoundingBox(33.7037, -118.6682, 34.3373, -118.1553, name="la"),
    "london": BoundingBox(51.2868, -0.5103, 51.6919, 0.3340, name="london"),
    "tokyo": BoundingBox(35.5012, 139.5629, 35.8984, 139.9181, name="tokyo"),
    "usa": BoundingBox(24.396308, -124.848974, 49.384358, -66.885444, name="usa"),
    "uk": BoundingBox(49.9, -8.2, 60.9, 1.8, name="uk"),
    "japan": BoundingBox(30.9, 129.4, 45.6, 145.9, name="japan"),
    "world": BoundingBox(-90.0, -180.0, 90.0, 180.0, name="world"),
}


def named_box(name: str) -> BoundingBox:
    """Look up a named bounding box, case-insensitively.

    Raises:
        KeyError: when the name is unknown.
    """
    key = name.strip().casefold()
    if key not in NAMED_BOXES:
        known = ", ".join(sorted(NAMED_BOXES))
        raise KeyError(f"unknown bounding box {name!r} (known: {known})")
    return NAMED_BOXES[key]
