"""Simulated remote web services.

The paper's "High-latency Operators" section: web-service UDF calls
"optimistically take hundreds of milliseconds apiece, but incur little
processing cost on behalf of the query processor". This module reproduces
exactly that cost profile against the virtual clock:

- each request charges a latency sample (lognormal around a configurable
  mean) to the :class:`~repro.clock.VirtualClock`;
- a batch endpoint amortizes a round trip over many items, as some real
  geocoders allowed;
- asynchronous requests reserve pool slots and deliver results via clock
  callbacks (the WSQ/DSQ-style asynchronous iteration the paper cites);
- transient failures can be injected at a configurable rate.

:class:`SimulatedWebService` is generic over the resolution function, so the
geocoder and the OpenCalais-style entity extractor share one implementation.
"""

from __future__ import annotations

import random
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from typing import Any

from repro import rng as rng_mod
from repro.clock import VirtualClock
from repro.errors import ServiceError


@dataclass(frozen=True)
class LatencyModel:
    """Latency distribution of one simulated service.

    Attributes:
        mean_seconds: expected per-request round-trip time.
        sigma: lognormal shape parameter; 0 gives deterministic latency.
        per_item_seconds: marginal cost of each extra item in a batch
            request (server-side work grows with batch size, but the round
            trip is paid once).
    """

    mean_seconds: float = 0.3
    sigma: float = 0.35
    per_item_seconds: float = 0.002

    def sample(self, rng: random.Random) -> float:
        """Draw one round-trip latency."""
        if self.sigma <= 0.0:
            return self.mean_seconds
        return rng_mod.lognormal(rng, self.mean_seconds, self.sigma)

    def sample_batch(self, rng: random.Random, n_items: int) -> float:
        """Draw the latency of a batch request over ``n_items`` items."""
        return self.sample(rng) + self.per_item_seconds * max(0, n_items - 1)


@dataclass
class ServiceStats:
    """Counters describing how a service has been used.

    ``virtual_seconds_busy`` accumulates the latency of every request — the
    total time a *blocking* caller would have spent waiting. Async callers
    overlap requests, so their elapsed virtual time can be far smaller; that
    gap is exactly what benchmark E5 measures.
    """

    requests: int = 0
    items: int = 0
    batch_requests: int = 0
    failures: int = 0
    virtual_seconds_busy: float = 0.0
    in_flight_high_water: int = 0
    _in_flight: int = field(default=0, repr=False)

    def note_request(self, items: int, latency: float, batch: bool) -> None:
        self.requests += 1
        self.items += items
        if batch:
            self.batch_requests += 1
        self.virtual_seconds_busy += latency

    def note_begin(self) -> None:
        self._in_flight += 1
        self.in_flight_high_water = max(self.in_flight_high_water, self._in_flight)

    def note_end(self) -> None:
        self._in_flight -= 1


class SimulatedWebService:
    """A remote service with realistic latency, wrapped around a resolver.

    Args:
        name: service name for error messages and stats.
        resolver: pure function computing the response for one request item.
            It may raise; the exception propagates to the caller the way an
            HTTP error payload would.
        clock: shared virtual clock charged for every request.
        latency: the latency model.
        failure_rate: probability that any given request transiently fails
            with :class:`~repro.errors.ServiceError` (after its latency has
            been paid, like a real timeout).
        seed: RNG seed for latency and failure draws.
        max_batch_size: server-imposed limit on batch endpoint size.
        fault_injector: optional
            :class:`~repro.engine.resilience.ServiceFaultInjector` applying
            a deterministic :class:`~repro.engine.resilience.FaultPlan` —
            per-key failure bursts (after latency is paid, like a timeout)
            and latency spikes. Independent of the rate-based
            ``failure_rate`` machinery; injected failures also count in
            ``stats.failures``.
    """

    def __init__(
        self,
        name: str,
        resolver: Callable[[Any], Any],
        clock: VirtualClock,
        latency: LatencyModel | None = None,
        failure_rate: float = 0.0,
        seed: int = rng_mod.DEFAULT_SEED,
        max_batch_size: int = 25,
        fault_injector: Any = None,
    ) -> None:
        if not 0.0 <= failure_rate < 1.0:
            raise ValueError("failure_rate must be in [0, 1)")
        self.name = name
        self._resolver = resolver
        self._clock = clock
        self._latency = latency or LatencyModel()
        self._failure_rate = failure_rate
        self._rng = rng_mod.derive(seed, f"service:{name}")
        self._max_batch_size = max_batch_size
        self.fault_injector = fault_injector
        self.stats = ServiceStats()

    @property
    def clock(self) -> VirtualClock:
        """The virtual clock this service charges."""
        return self._clock

    @property
    def max_batch_size(self) -> int:
        """Largest batch the service accepts in one request."""
        return self._max_batch_size

    def _maybe_fail(self) -> None:
        if self._failure_rate and self._rng.random() < self._failure_rate:
            self.stats.failures += 1
            raise ServiceError(f"{self.name}: transient service failure")

    def _draw_fault(self, item: Any) -> Any:
        """One injector verdict for ``item`` (None without an injector)."""
        if self.fault_injector is None:
            return None
        return self.fault_injector.draw(item)

    def request(self, item: Any) -> Any:
        """Blocking single-item request.

        Advances the virtual clock by one latency sample, then resolves.
        """
        fault = self._draw_fault(item)
        latency = self._latency.sample(self._rng)
        if fault is not None:
            latency *= fault.latency_multiplier
        self.stats.note_begin()
        self._clock.advance(latency)
        self.stats.note_end()
        self.stats.note_request(1, latency, batch=False)
        self._maybe_fail()
        if fault is not None and fault.error is not None:
            self.stats.failures += 1
            raise fault.error
        return self._resolver(item)

    def request_batch(self, items: Sequence[Any]) -> list[Any]:
        """Blocking batch request; one round trip for up to ``max_batch_size``
        items.

        Per-item resolver errors are returned in-place as the exception
        object (a real batch geocoder returns per-item status codes), so one
        bad address does not poison the batch.
        """
        if len(items) > self._max_batch_size:
            raise ServiceError(
                f"{self.name}: batch of {len(items)} exceeds limit "
                f"{self._max_batch_size}"
            )
        faults = [self._draw_fault(item) for item in items]
        latency = self._latency.sample_batch(self._rng, len(items))
        # The round trip pays the worst spike among its items (the server
        # answers the batch as one response).
        spike = max(
            (f.latency_multiplier for f in faults if f is not None),
            default=1.0,
        )
        latency *= spike
        self.stats.note_begin()
        self._clock.advance(latency)
        self.stats.note_end()
        self.stats.note_request(len(items), latency, batch=True)
        self._maybe_fail()
        results: list[Any] = []
        for item, fault in zip(items, faults):
            if fault is not None and fault.error is not None:
                self.stats.failures += 1
                results.append(fault.error)
                continue
            try:
                results.append(self._resolver(item))
            except ServiceError as exc:
                results.append(exc)
        return results

    def request_async(
        self, item: Any, callback: Callable[[Any, Exception | None], None]
    ) -> float:
        """Non-blocking request.

        Does *not* advance the clock. Instead, schedules ``callback(result,
        error)`` to fire when the clock sweeps past now + latency — the
        asynchronous iteration design of Goldman & Widom the paper points to.
        Returns the virtual completion time.
        """
        fault = self._draw_fault(item)
        latency = self._latency.sample(self._rng)
        if fault is not None:
            latency *= fault.latency_multiplier
        done_at = self._clock.now + latency
        self.stats.note_begin()
        self.stats.note_request(1, latency, batch=False)

        def fire() -> None:
            self.stats.note_end()
            try:
                self._maybe_fail()
                if fault is not None and fault.error is not None:
                    self.stats.failures += 1
                    raise fault.error
                result = self._resolver(item)
            except Exception as exc:  # noqa: BLE001 - forwarded to callback
                callback(None, exc)
                return
            callback(result, None)

        self._clock.call_at(done_at, fire)
        return done_at
