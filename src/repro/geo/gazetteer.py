"""Embedded world-city gazetteer.

A small, self-contained stand-in for the geographic database behind a real
geocoding service. Each city carries coordinates, country, an approximate
metro population (used to weight where synthetic Twitter users live), and a
Twitter-adoption weight (the paper's motivating skew: "Tokyo has many Twitter
users, but Cape Town has far fewer").

Coordinates are approximate city centers; populations are rough 2010-era
metro figures in thousands. Accuracy matters only in so far as relative
ordering and geography are plausible.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class City:
    """One gazetteer entry.

    Attributes:
        name: canonical city name.
        country: country name.
        lat: latitude in degrees.
        lon: longitude in degrees.
        population: approximate metro population, thousands.
        twitter_weight: relative density of Twitter users (dimensionless);
            reflects 2011-era adoption skew toward the US/Japan/UK/Brazil.
        aliases: alternative spellings/abbreviations a user's free-text
            profile location might contain.
    """

    name: str
    country: str
    lat: float
    lon: float
    population: float
    twitter_weight: float = 1.0
    aliases: tuple[str, ...] = field(default_factory=tuple)

    @property
    def coordinates(self) -> tuple[float, float]:
        """(lat, lon) pair."""
        return (self.lat, self.lon)


def _c(
    name: str,
    country: str,
    lat: float,
    lon: float,
    population: float,
    twitter_weight: float = 1.0,
    aliases: tuple[str, ...] = (),
) -> City:
    return City(name, country, lat, lon, population, twitter_weight, aliases)


#: The embedded gazetteer data. Sorted roughly by region for maintainability.
CITIES: tuple[City, ...] = (
    # --- North America (high 2011 Twitter adoption) ---
    _c("New York", "United States", 40.7128, -74.0060, 19500, 3.0,
       ("NYC", "New York City", "Manhattan", "Brooklyn", "new york, ny")),
    _c("Los Angeles", "United States", 34.0522, -118.2437, 12900, 2.5,
       ("LA", "Hollywood", "los angeles, ca")),
    _c("Chicago", "United States", 41.8781, -87.6298, 9500, 2.2,
       ("Chi-town", "chicago, il")),
    _c("Houston", "United States", 29.7604, -95.3698, 5900, 1.8,
       ("houston, tx",)),
    _c("Philadelphia", "United States", 39.9526, -75.1652, 5900, 1.8,
       ("Philly",)),
    _c("Phoenix", "United States", 33.4484, -112.0740, 4200, 1.5, ()),
    _c("San Francisco", "United States", 37.7749, -122.4194, 4300, 3.0,
       ("SF", "Bay Area", "san francisco, ca")),
    _c("San Jose", "United States", 37.3382, -121.8863, 1800, 2.5,
       ("Silicon Valley",)),
    _c("Seattle", "United States", 47.6062, -122.3321, 3400, 2.4, ()),
    _c("Boston", "United States", 42.3601, -71.0589, 4500, 2.4,
       ("Cambridge, MA", "boston, ma")),
    _c("Washington", "United States", 38.9072, -77.0369, 5600, 2.6,
       ("DC", "Washington DC", "Washington, D.C.")),
    _c("Atlanta", "United States", 33.7490, -84.3880, 5300, 2.0,
       ("ATL", "atlanta, ga")),
    _c("Miami", "United States", 25.7617, -80.1918, 5500, 2.0,
       ("miami, fl",)),
    _c("Dallas", "United States", 32.7767, -96.7970, 6400, 1.8,
       ("DFW", "dallas, tx")),
    _c("Austin", "United States", 30.2672, -97.7431, 1700, 2.5,
       ("austin, tx", "ATX")),
    _c("Denver", "United States", 39.7392, -104.9903, 2500, 1.6, ()),
    _c("Detroit", "United States", 42.3314, -83.0458, 4300, 1.4, ()),
    _c("Minneapolis", "United States", 44.9778, -93.2650, 3300, 1.5,
       ("Twin Cities",)),
    _c("Portland", "United States", 45.5152, -122.6784, 2200, 2.0,
       ("portland, or", "PDX")),
    _c("New Orleans", "United States", 29.9511, -90.0715, 1200, 1.3,
       ("NOLA",)),
    _c("Las Vegas", "United States", 36.1699, -115.1398, 1900, 1.4,
       ("Vegas",)),
    _c("San Diego", "United States", 32.7157, -117.1611, 3100, 1.6, ()),
    _c("St. Louis", "United States", 38.6270, -90.1994, 2800, 1.3,
       ("Saint Louis",)),
    _c("Pittsburgh", "United States", 40.4406, -79.9959, 2400, 1.3, ()),
    _c("Baltimore", "United States", 39.2904, -76.6122, 2700, 1.4, ()),
    _c("Toronto", "Canada", 43.6532, -79.3832, 5600, 2.2,
       ("Toronto, ON", "the 6ix")),
    _c("Montreal", "Canada", 45.5017, -73.5673, 3800, 1.6,
       ("Montréal",)),
    _c("Vancouver", "Canada", 49.2827, -123.1207, 2300, 1.8, ()),
    _c("Mexico City", "Mexico", 19.4326, -99.1332, 20100, 1.3,
       ("CDMX", "Ciudad de México", "DF")),
    _c("Guadalajara", "Mexico", 20.6597, -103.3496, 4400, 0.9, ()),
    _c("Monterrey", "Mexico", 25.6866, -100.3161, 4100, 0.9, ()),
    # --- South America (Brazil was a major 2011 Twitter market) ---
    _c("São Paulo", "Brazil", -23.5505, -46.6333, 19900, 2.2,
       ("Sao Paulo", "SP", "Sampa")),
    _c("Rio de Janeiro", "Brazil", -22.9068, -43.1729, 12000, 2.0,
       ("Rio",)),
    _c("Brasília", "Brazil", -15.7942, -47.8822, 3700, 1.2,
       ("Brasilia",)),
    _c("Salvador", "Brazil", -12.9777, -38.5016, 3600, 1.0, ()),
    _c("Belo Horizonte", "Brazil", -19.9167, -43.9345, 5400, 1.1, ()),
    _c("Buenos Aires", "Argentina", -34.6037, -58.3816, 13600, 1.4,
       ("BsAs", "Capital Federal")),
    _c("Santiago", "Chile", -33.4489, -70.6693, 6700, 1.3,
       ("Santiago de Chile",)),
    _c("Lima", "Peru", -12.0464, -77.0428, 9400, 0.9, ()),
    _c("Bogotá", "Colombia", 4.7110, -74.0721, 8900, 1.0,
       ("Bogota",)),
    _c("Caracas", "Venezuela", 10.4806, -66.9036, 3200, 1.4, ()),
    _c("Medellín", "Colombia", 6.2442, -75.5812, 3600, 0.8,
       ("Medellin",)),
    _c("Quito", "Ecuador", -0.1807, -78.4678, 1800, 0.6, ()),
    _c("Montevideo", "Uruguay", -34.9011, -56.1645, 1700, 0.8, ()),
    # --- Europe ---
    _c("London", "United Kingdom", 51.5074, -0.1278, 13700, 2.8,
       ("London, UK", "LDN")),
    _c("Manchester", "United Kingdom", 53.4808, -2.2426, 2700, 2.0,
       ("Manchester, UK",)),
    _c("Liverpool", "United Kingdom", 53.4084, -2.9916, 1400, 1.8, ()),
    _c("Birmingham", "United Kingdom", 52.4862, -1.8904, 2600, 1.6,
       ("Birmingham, UK",)),
    _c("Glasgow", "United Kingdom", 55.8642, -4.2518, 1800, 1.4, ()),
    _c("Edinburgh", "United Kingdom", 55.9533, -3.1883, 1300, 1.4, ()),
    _c("Leeds", "United Kingdom", 53.8008, -1.5491, 1900, 1.3, ()),
    _c("Dublin", "Ireland", 53.3498, -6.2603, 1800, 1.6, ()),
    _c("Paris", "France", 48.8566, 2.3522, 12200, 1.6,
       ("Paris, France",)),
    _c("Lyon", "France", 45.7640, 4.8357, 2200, 0.9, ()),
    _c("Marseille", "France", 43.2965, 5.3698, 1700, 0.8, ()),
    _c("Berlin", "Germany", 52.5200, 13.4050, 5000, 1.3, ()),
    _c("Munich", "Germany", 48.1351, 11.5820, 2600, 1.0,
       ("München",)),
    _c("Hamburg", "Germany", 53.5511, 9.9937, 3200, 1.0, ()),
    _c("Frankfurt", "Germany", 50.1109, 8.6821, 2300, 0.9, ()),
    _c("Cologne", "Germany", 50.9375, 6.9603, 2000, 0.8,
       ("Köln",)),
    _c("Madrid", "Spain", 40.4168, -3.7038, 6300, 1.5, ()),
    _c("Barcelona", "Spain", 41.3851, 2.1734, 5400, 1.5,
       ("BCN",)),
    _c("Valencia", "Spain", 39.4699, -0.3763, 1700, 0.9, ()),
    _c("Seville", "Spain", 37.3891, -5.9845, 1500, 0.8,
       ("Sevilla",)),
    _c("Lisbon", "Portugal", 38.7223, -9.1393, 2800, 1.0,
       ("Lisboa",)),
    _c("Rome", "Italy", 41.9028, 12.4964, 4300, 1.1,
       ("Roma",)),
    _c("Milan", "Italy", 45.4642, 9.1900, 4300, 1.1,
       ("Milano",)),
    _c("Naples", "Italy", 40.8518, 14.2681, 3100, 0.8,
       ("Napoli",)),
    _c("Turin", "Italy", 45.0703, 7.6869, 1700, 0.8,
       ("Torino",)),
    _c("Amsterdam", "Netherlands", 52.3676, 4.9041, 2400, 2.2,
       ("A'dam",)),
    _c("Rotterdam", "Netherlands", 51.9244, 4.4777, 1400, 1.6, ()),
    _c("Brussels", "Belgium", 50.8503, 4.3517, 2100, 1.2,
       ("Bruxelles",)),
    _c("Vienna", "Austria", 48.2082, 16.3738, 2600, 0.9,
       ("Wien",)),
    _c("Zurich", "Switzerland", 47.3769, 8.5417, 1300, 1.0,
       ("Zürich",)),
    _c("Geneva", "Switzerland", 46.2044, 6.1432, 900, 0.9,
       ("Genève",)),
    _c("Stockholm", "Sweden", 59.3293, 18.0686, 2100, 1.6, ()),
    _c("Oslo", "Norway", 59.9139, 10.7522, 1500, 1.4, ()),
    _c("Copenhagen", "Denmark", 55.6761, 12.5683, 1900, 1.4,
       ("København",)),
    _c("Helsinki", "Finland", 60.1699, 24.9384, 1300, 1.3, ()),
    _c("Warsaw", "Poland", 52.2297, 21.0122, 3100, 0.8,
       ("Warszawa",)),
    _c("Prague", "Czech Republic", 50.0755, 14.4378, 2100, 0.8,
       ("Praha",)),
    _c("Budapest", "Hungary", 47.4979, 19.0402, 2500, 0.7, ()),
    _c("Athens", "Greece", 37.9838, 23.7275, 3800, 0.8,
       ("Athina",)),
    _c("Istanbul", "Turkey", 41.0082, 28.9784, 13100, 1.3, ()),
    _c("Ankara", "Turkey", 39.9334, 32.8597, 4600, 0.8, ()),
    _c("Moscow", "Russia", 55.7558, 37.6173, 11500, 0.9,
       ("Москва",)),
    _c("Saint Petersburg", "Russia", 59.9311, 30.3609, 4900, 0.7,
       ("St Petersburg", "SPb")),
    _c("Kyiv", "Ukraine", 50.4501, 30.5234, 2800, 0.6,
       ("Kiev",)),
    # --- Middle East / Africa ---
    _c("Cairo", "Egypt", 30.0444, 31.2357, 16900, 1.2,
       ("Al-Qahirah",)),
    _c("Alexandria", "Egypt", 31.2001, 29.9187, 4400, 0.7, ()),
    _c("Tel Aviv", "Israel", 32.0853, 34.7818, 3300, 1.3, ()),
    _c("Jerusalem", "Israel", 31.7683, 35.2137, 1000, 0.8, ()),
    _c("Riyadh", "Saudi Arabia", 24.7136, 46.6753, 5200, 1.2, ()),
    _c("Jeddah", "Saudi Arabia", 21.4858, 39.1925, 3400, 1.0, ()),
    _c("Dubai", "United Arab Emirates", 25.2048, 55.2708, 1900, 1.4, ()),
    _c("Abu Dhabi", "United Arab Emirates", 24.4539, 54.3773, 1000, 0.9, ()),
    _c("Tehran", "Iran", 35.6892, 51.3890, 12100, 0.7, ()),
    _c("Baghdad", "Iraq", 33.3152, 44.3661, 6000, 0.4, ()),
    _c("Beirut", "Lebanon", 33.8938, 35.5018, 2000, 0.8, ()),
    _c("Amman", "Jordan", 31.9454, 35.9284, 2500, 0.7, ()),
    _c("Doha", "Qatar", 25.2854, 51.5310, 800, 0.9, ()),
    _c("Lagos", "Nigeria", 6.5244, 3.3792, 10500, 0.7, ()),
    _c("Abuja", "Nigeria", 9.0765, 7.3986, 2000, 0.4, ()),
    _c("Nairobi", "Kenya", -1.2921, 36.8219, 3100, 0.6, ()),
    _c("Johannesburg", "South Africa", -26.2041, 28.0473, 7100, 0.8,
       ("Joburg", "Jozi")),
    _c("Cape Town", "South Africa", -33.9249, 18.4241, 3400, 0.3,
       ("Kaapstad",)),
    _c("Durban", "South Africa", -29.8587, 31.0218, 3100, 0.4, ()),
    _c("Accra", "Ghana", 5.6037, -0.1870, 2300, 0.4, ()),
    _c("Casablanca", "Morocco", 33.5731, -7.5898, 3300, 0.5, ()),
    _c("Tunis", "Tunisia", 36.8065, 10.1815, 2300, 0.6, ()),
    _c("Addis Ababa", "Ethiopia", 9.0320, 38.7469, 2700, 0.2, ()),
    # --- Asia / Pacific (Japan & Indonesia were huge 2011 markets) ---
    _c("Tokyo", "Japan", 35.6762, 139.6503, 36900, 3.0,
       ("東京", "Tokyo, Japan")),
    _c("Osaka", "Japan", 34.6937, 135.5023, 19300, 2.2,
       ("大阪",)),
    _c("Nagoya", "Japan", 35.1815, 136.9066, 9100, 1.6, ()),
    _c("Fukuoka", "Japan", 33.5904, 130.4017, 5500, 1.4, ()),
    _c("Sapporo", "Japan", 43.0618, 141.3545, 2600, 1.2, ()),
    _c("Sendai", "Japan", 38.2682, 140.8694, 2300, 1.1, ()),
    _c("Seoul", "South Korea", 37.5665, 126.9780, 25600, 1.8,
       ("서울",)),
    _c("Busan", "South Korea", 35.1796, 129.0756, 3400, 1.0, ()),
    _c("Beijing", "China", 39.9042, 116.4074, 19600, 0.3,
       ("Peking",)),
    _c("Shanghai", "China", 31.2304, 121.4737, 22300, 0.3, ()),
    _c("Guangzhou", "China", 23.1291, 113.2644, 11800, 0.2,
       ("Canton",)),
    _c("Shenzhen", "China", 22.5431, 114.0579, 10400, 0.2, ()),
    _c("Hong Kong", "China", 22.3193, 114.1694, 7100, 1.2,
       ("HK",)),
    _c("Taipei", "Taiwan", 25.0330, 121.5654, 6900, 1.0, ()),
    _c("Singapore", "Singapore", 1.3521, 103.8198, 5100, 1.6,
       ("SG", "Singapura")),
    _c("Kuala Lumpur", "Malaysia", 3.1390, 101.6869, 6300, 1.4,
       ("KL",)),
    _c("Jakarta", "Indonesia", -6.2088, 106.8456, 26000, 2.6,
       ("JKT",)),
    _c("Bandung", "Indonesia", -6.9175, 107.6191, 7600, 1.8, ()),
    _c("Surabaya", "Indonesia", -7.2575, 112.7521, 5600, 1.5, ()),
    _c("Bangkok", "Thailand", 13.7563, 100.5018, 14600, 1.2,
       ("Krung Thep", "BKK")),
    _c("Manila", "Philippines", 14.5995, 120.9842, 20700, 1.5,
       ("Metro Manila",)),
    _c("Cebu", "Philippines", 10.3157, 123.8854, 2600, 0.9, ()),
    _c("Ho Chi Minh City", "Vietnam", 10.8231, 106.6297, 7400, 0.5,
       ("Saigon", "HCMC")),
    _c("Hanoi", "Vietnam", 21.0278, 105.8342, 6500, 0.4, ()),
    _c("Mumbai", "India", 19.0760, 72.8777, 19700, 0.9,
       ("Bombay",)),
    _c("Delhi", "India", 28.7041, 77.1025, 21900, 0.9,
       ("New Delhi",)),
    _c("Bangalore", "India", 12.9716, 77.5946, 8500, 1.1,
       ("Bengaluru",)),
    _c("Chennai", "India", 13.0827, 80.2707, 8700, 0.8,
       ("Madras",)),
    _c("Hyderabad", "India", 17.3850, 78.4867, 7700, 0.7, ()),
    _c("Kolkata", "India", 22.5726, 88.3639, 14100, 0.6,
       ("Calcutta",)),
    _c("Karachi", "Pakistan", 24.8607, 67.0011, 13200, 0.5, ()),
    _c("Lahore", "Pakistan", 31.5204, 74.3587, 8400, 0.4, ()),
    _c("Dhaka", "Bangladesh", 23.8103, 90.4125, 14600, 0.3, ()),
    _c("Colombo", "Sri Lanka", 6.9271, 79.8612, 2300, 0.4, ()),
    _c("Sydney", "Australia", -33.8688, 151.2093, 4600, 1.8, ()),
    _c("Melbourne", "Australia", -37.8136, 144.9631, 4100, 1.7, ()),
    _c("Brisbane", "Australia", -27.4698, 153.0251, 2100, 1.3, ()),
    _c("Perth", "Australia", -31.9505, 115.8605, 1800, 1.1, ()),
    _c("Auckland", "New Zealand", -36.8485, 174.7633, 1400, 1.2, ()),
    _c("Wellington", "New Zealand", -41.2866, 174.7756, 400, 1.0, ()),
    # --- Earthquake-prone localities used by the earthquake workload ---
    _c("Christchurch", "New Zealand", -43.5321, 172.6362, 380, 1.0, ()),
    _c("Santiago de Cuba", "Cuba", 20.0247, -75.8219, 500, 0.2, ()),
    _c("Anchorage", "United States", 61.2181, -149.9003, 380, 0.8, ()),
    _c("Valparaíso", "Chile", -33.0472, -71.6127, 930, 0.7,
       ("Valparaiso",)),
    _c("Kathmandu", "Nepal", 27.7172, 85.3240, 1000, 0.2, ()),
    _c("Port-au-Prince", "Haiti", 18.5944, -72.3074, 2300, 0.2, ()),
    _c("Concepción", "Chile", -36.8201, -73.0440, 970, 0.6,
       ("Concepcion",)),
    _c("Padang", "Indonesia", -0.9471, 100.4172, 830, 0.7, ()),
    _c("Izmir", "Turkey", 38.4237, 27.1428, 2800, 0.6,
       ("İzmir",)),
    _c("Kobe", "Japan", 34.6901, 135.1956, 1500, 1.0, ()),
)


class Gazetteer:
    """Lookup structure over the embedded city list.

    Lookups are case-insensitive and cover canonical names and aliases.
    """

    def __init__(self, cities: tuple[City, ...] = CITIES) -> None:
        self._cities = cities
        self._by_key: dict[str, City] = {}
        for city in cities:
            self._by_key[city.name.casefold()] = city
            for alias in city.aliases:
                self._by_key.setdefault(alias.casefold(), city)

    @property
    def cities(self) -> tuple[City, ...]:
        """All cities, in embedded order."""
        return self._cities

    def __len__(self) -> int:
        return len(self._cities)

    def lookup(self, name: str) -> City | None:
        """Find a city by canonical name or alias (case-insensitive)."""
        return self._by_key.get(name.strip().casefold())

    def nearest(self, lat: float, lon: float) -> City:
        """Return the city nearest the given coordinates.

        Uses equirectangular distance, which is fine at gazetteer granularity.
        """
        import math

        def dist2(city: City) -> float:
            dlat = city.lat - lat
            dlon = (city.lon - lon) * math.cos(math.radians(lat))
            return dlat * dlat + dlon * dlon

        return min(self._cities, key=dist2)

    def twitter_weights(self) -> list[float]:
        """Per-city weights for sampling synthetic user home cities.

        Weight is population x Twitter adoption, reproducing the paper's
        observation that tweet density is uneven across the globe.
        """
        return [c.population * c.twitter_weight for c in self._cities]


_DEFAULT: Gazetteer | None = None


def default_gazetteer() -> Gazetteer:
    """Return the shared default :class:`Gazetteer` (built lazily once)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = Gazetteer()
    return _DEFAULT
