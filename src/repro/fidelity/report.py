"""The fidelity report: one deterministic, JSON-serializable verdict.

A :class:`FidelityReport` packages the two per-pass digests (firehose
and sample), the bias scores between them, ground-truth recall for both
sides, and the sampled side's coverage estimate. ``to_json_text()`` is
byte-identical across runs for the same (scenario, seed, rate): keys are
sorted and floats rounded to six decimals before serialization.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any

from repro.fidelity.coverage import CoverageEstimate


def _rounded(value: Any) -> Any:
    """Recursively round floats so serialization is stable and readable."""
    if isinstance(value, float):
        return round(value, 6)
    if isinstance(value, dict):
        return {key: _rounded(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_rounded(item) for item in value]
    return value


@dataclass(frozen=True)
class StreamDigest:
    """What one pass (firehose or sample) saw of the scenario.

    Attributes:
        tweets: tweets the event logged.
        positive/negative/neutral: classified sentiment counts.
        geotagged: tweets carrying an exact geotag.
        top_terms: the top-k (term, frequency) pairs by frequency.
        peaks: detected peaks as (start, apex_time, apex_count, end).
        truth_recall: fraction of ground-truth events covered by a
            detected peak window (within the matching tolerance).
    """

    tweets: int
    positive: int
    negative: int
    neutral: int
    geotagged: int
    top_terms: tuple[tuple[str, int], ...]
    peaks: tuple[tuple[float, float, float, float], ...]
    truth_recall: float

    @property
    def sentiment_counts(self) -> tuple[int, int, int]:
        return (self.positive, self.negative, self.neutral)

    @property
    def apex_points(self) -> tuple[tuple[float, float], ...]:
        """Peaks as the (apex_time, apex_count) pairs the metrics score."""
        return tuple((apex, count) for _s, apex, count, _e in self.peaks)

    @property
    def peak_windows(self) -> tuple[tuple[float, float], ...]:
        """Peaks as [start, end) windows."""
        return tuple((start, end) for start, _a, _c, end in self.peaks)

    def as_dict(self) -> dict[str, Any]:
        return {
            "tweets": self.tweets,
            "positive": self.positive,
            "negative": self.negative,
            "neutral": self.neutral,
            "geotagged": self.geotagged,
            "top_terms": [
                {"term": term, "count": count} for term, count in self.top_terms
            ],
            "peaks": [
                {
                    "start": start,
                    "apex_time": apex_time,
                    "apex_count": apex_count,
                    "end": end,
                }
                for start, apex_time, apex_count, end in self.peaks
            ],
            "truth_recall": self.truth_recall,
        }


@dataclass(frozen=True)
class FidelityScores:
    """The bias scores, each in [0, 1] with 1.0 = perfect fidelity."""

    topk_jaccard: float
    topk_rank_correlation: float
    peak_count: float
    peak_timing: float
    peak_height: float
    geo: float
    sentiment: float

    def as_tuple(self) -> tuple[float, ...]:
        return (
            self.topk_jaccard,
            self.topk_rank_correlation,
            self.peak_count,
            self.peak_timing,
            self.peak_height,
            self.geo,
            self.sentiment,
        )

    @property
    def overall(self) -> float:
        """Unweighted mean of every dimension."""
        values = self.as_tuple()
        return sum(values) / len(values)

    @property
    def perfect(self) -> bool:
        """True when every dimension reports exact fidelity."""
        return all(value == 1.0 for value in self.as_tuple())

    def as_dict(self) -> dict[str, float]:
        return {
            "topk_jaccard": self.topk_jaccard,
            "topk_rank_correlation": self.topk_rank_correlation,
            "peak_count": self.peak_count,
            "peak_timing": self.peak_timing,
            "peak_height": self.peak_height,
            "geo": self.geo,
            "sentiment": self.sentiment,
            "overall": self.overall,
        }


@dataclass(frozen=True)
class FidelityReport:
    """Everything one :class:`~repro.fidelity.harness.FidelityRun` found."""

    scenario: str
    seed: int
    rate: float
    bin_seconds: float
    topk: int
    tolerance_seconds: float
    firehose: StreamDigest
    sample: StreamDigest
    coverage: CoverageEstimate
    scores: FidelityScores

    def as_dict(self) -> dict[str, Any]:
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "rate": self.rate,
            "bin_seconds": self.bin_seconds,
            "topk": self.topk,
            "tolerance_seconds": self.tolerance_seconds,
            "firehose": self.firehose.as_dict(),
            "sample": self.sample.as_dict(),
            "coverage": self.coverage.as_dict(),
            "scores": self.scores.as_dict(),
        }

    def to_json_text(self) -> str:
        """Deterministic JSON: sorted keys, floats rounded to 6 places."""
        return json.dumps(
            _rounded(self.as_dict()), indent=2, sort_keys=True
        ) + "\n"

    def summary_lines(self) -> list[str]:
        """A terminal-friendly digest of the verdict."""
        scores = self.scores
        return [
            f"fidelity: {self.scenario} @ rate {self.rate:g} (seed {self.seed})",
            f"  firehose: {self.firehose.tweets} tweets, "
            f"{len(self.firehose.peaks)} peaks",
            f"  sample:   {self.sample.tweets} tweets, "
            f"{len(self.sample.peaks)} peaks",
            f"  coverage: {self.coverage.coverage:.4f} "
            f"[{self.coverage.ci_low:.4f}, {self.coverage.ci_high:.4f}] "
            f"confidence {self.coverage.confidence:.4f}",
            f"  top-k terms: jaccard {scores.topk_jaccard:.3f}, "
            f"rank corr {scores.topk_rank_correlation:.3f}",
            f"  peaks: count {scores.peak_count:.3f}, "
            f"timing {scores.peak_timing:.3f}, height {scores.peak_height:.3f}",
            f"  geo {scores.geo:.3f}, sentiment {scores.sentiment:.3f}",
            f"  overall {scores.overall:.3f}",
        ]
