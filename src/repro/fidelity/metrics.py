"""Bias metrics: how faithfully does a sampled stream mirror the firehose?

Every metric here is a *fidelity score* in [0, 1] where 1.0 means the
sampled side is indistinguishable from the reference. The dimensions are
the ones Morstatter et al. found the streaming sample distorts:

- **top-k terms** — Jaccard overlap of the top-k term sets plus a
  Kendall-style rank agreement over the shared terms;
- **peaks** — count agreement, apex-timing error, and (rate-corrected)
  apex-height ratio of matched peak pairs;
- **geo** — 1 − Jensen–Shannon divergence (base 2) between the two
  geotag distributions over 1°×1° cells;
- **sentiment** — 1 − total variation distance between the two
  positive/negative/neutral mixes.

All functions are pure and deterministic: no clocks, no RNGs.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence

# ---------------------------------------------------------------------------
# Top-k term agreement
# ---------------------------------------------------------------------------


def topk_jaccard(a: Sequence[str], b: Sequence[str]) -> float:
    """Jaccard overlap of two top-k term lists (order-insensitive)."""
    set_a, set_b = set(a), set(b)
    if not set_a and not set_b:
        return 1.0
    union = set_a | set_b
    return len(set_a & set_b) / len(union)


def topk_rank_correlation(a: Sequence[str], b: Sequence[str]) -> float:
    """Rank agreement of the terms both lists share, mapped to [0, 1].

    Kendall's tau over the common terms' relative orders, rescaled via
    (tau + 1) / 2. With fewer than two common terms the ordering carries
    no signal: identical lists score 1.0, disjoint non-empty lists 0.0,
    anything else the indifferent 0.5.
    """
    if list(a) == list(b):
        return 1.0
    in_b = set(b)
    common = [term for term in a if term in in_b]
    if len(common) < 2:
        if not common:
            return 0.0 if (a or b) else 1.0
        return 0.5
    order_b = {term: index for index, term in enumerate(b)}
    ranks = [order_b[term] for term in common]  # b-ranks in a-order
    concordant = discordant = 0
    for i in range(len(ranks)):
        for j in range(i + 1, len(ranks)):
            if ranks[i] < ranks[j]:
                concordant += 1
            elif ranks[i] > ranks[j]:
                discordant += 1
    total = concordant + discordant
    if total == 0:
        return 1.0
    tau = (concordant - discordant) / total
    return (tau + 1.0) / 2.0


# ---------------------------------------------------------------------------
# Peak agreement
# ---------------------------------------------------------------------------

#: A peak as the metrics see it: (apex_time, apex_count).
PeakPoint = tuple[float, float]


def match_peaks(
    reference: Sequence[PeakPoint],
    other: Sequence[PeakPoint],
    tolerance: float,
) -> list[tuple[int, int]]:
    """Greedy one-to-one matching of peaks by apex-time proximity.

    Pairs are taken closest-first; each peak matches at most once, and
    only within ``tolerance`` seconds. Returns (reference_index,
    other_index) pairs.
    """
    if tolerance <= 0:
        raise ValueError("tolerance must be positive")
    candidates = sorted(
        (
            (abs(ref[0] - oth[0]), i, j)
            for i, ref in enumerate(reference)
            for j, oth in enumerate(other)
            if abs(ref[0] - oth[0]) <= tolerance
        ),
    )
    used_ref: set[int] = set()
    used_other: set[int] = set()
    matches: list[tuple[int, int]] = []
    for _gap, i, j in candidates:
        if i in used_ref or j in used_other:
            continue
        used_ref.add(i)
        used_other.add(j)
        matches.append((i, j))
    return sorted(matches)


def peak_count_score(n_reference: int, n_other: int) -> float:
    """1 − relative difference in the number of detected peaks."""
    if n_reference == 0 and n_other == 0:
        return 1.0
    biggest = max(n_reference, n_other)
    return 1.0 - abs(n_reference - n_other) / biggest


def peak_timing_score(
    reference: Sequence[PeakPoint],
    other: Sequence[PeakPoint],
    tolerance: float,
) -> float:
    """Mean apex-timing agreement; unmatched peaks score zero.

    Each matched pair contributes ``1 − |Δapex| / tolerance``; the sum is
    normalized by the larger peak count so missing and phantom peaks both
    drag the score down. 1.0 when both sides have no peaks at all.
    """
    if not reference and not other:
        return 1.0
    if not reference or not other:
        return 0.0
    matches = match_peaks(reference, other, tolerance)
    total = sum(
        1.0 - abs(reference[i][0] - other[j][0]) / tolerance
        for i, j in matches
    )
    return total / max(len(reference), len(other))


def peak_height_score(
    reference: Sequence[PeakPoint],
    other: Sequence[PeakPoint],
    tolerance: float,
    scale_other: float = 1.0,
) -> float:
    """Rate-corrected apex-height agreement of matched peaks.

    ``scale_other`` undoes the thinning (1/rate for a sampled stream) so
    a faithful 1% sample's 10-tweet apex scores well against the
    firehose's 1000. Matched pairs contribute min/max of the corrected
    heights; normalization mirrors :func:`peak_timing_score`.
    """
    if not reference and not other:
        return 1.0
    if not reference or not other:
        return 0.0
    matches = match_peaks(reference, other, tolerance)
    total = 0.0
    for i, j in matches:
        height_ref = reference[i][1]
        height_other = other[j][1] * scale_other
        if height_ref <= 0 or height_other <= 0:
            continue
        total += min(height_ref, height_other) / max(height_ref, height_other)
    return total / max(len(reference), len(other))


def truth_recall(
    event_times: Sequence[float],
    peak_windows: Sequence[tuple[float, float]],
    tolerance: float,
) -> float:
    """Fraction of ground-truth events covered by a detected peak window.

    An event counts as recalled when its instant falls inside (or within
    ``tolerance`` of) some peak's [start, end) window — a plateau's apex
    can legitimately sit far from its onset, so windows, not apexes, are
    what recall is judged on.
    """
    if not event_times:
        return 1.0
    hit = sum(
        1
        for time in event_times
        if any(
            start - tolerance <= time <= end + tolerance
            for start, end in peak_windows
        )
    )
    return hit / len(event_times)


# ---------------------------------------------------------------------------
# Distribution agreement
# ---------------------------------------------------------------------------


def _normalize(counts: Mapping[object, float]) -> dict[object, float]:
    total = float(sum(counts.values()))
    if total <= 0:
        return {}
    return {key: value / total for key, value in counts.items() if value > 0}


def jensen_shannon_divergence(
    p_counts: Mapping[object, float], q_counts: Mapping[object, float]
) -> float:
    """JSD in bits between two count distributions; bounded [0, 1].

    Symmetric and finite even on disjoint supports (unlike KL). Empty vs
    empty is 0; empty vs anything is maximal (1.0).
    """
    p = _normalize(p_counts)
    q = _normalize(q_counts)
    if not p and not q:
        return 0.0
    if not p or not q:
        return 1.0
    divergence = 0.0
    for key in set(p) | set(q):
        p_i = p.get(key, 0.0)
        q_i = q.get(key, 0.0)
        m_i = (p_i + q_i) / 2.0
        if p_i > 0:
            divergence += 0.5 * p_i * math.log2(p_i / m_i)
        if q_i > 0:
            divergence += 0.5 * q_i * math.log2(q_i / m_i)
    return min(1.0, max(0.0, divergence))


def distribution_score(
    p_counts: Mapping[object, float], q_counts: Mapping[object, float]
) -> float:
    """1 − Jensen–Shannon divergence: 1.0 = identical distributions."""
    return 1.0 - jensen_shannon_divergence(p_counts, q_counts)


def geo_cells(
    coordinates: Sequence[tuple[float, float]],
) -> dict[tuple[int, int], int]:
    """Histogram of (lat, lon) points over 1°×1° integer-degree cells."""
    cells: dict[tuple[int, int], int] = {}
    for lat, lon in coordinates:
        key = (math.floor(lat), math.floor(lon))
        cells[key] = cells.get(key, 0) + 1
    return cells


def sentiment_score(
    a: tuple[int, int, int], b: tuple[int, int, int]
) -> float:
    """1 − total variation distance between two (pos, neg, neu) mixes."""
    total_a, total_b = sum(a), sum(b)
    if total_a == 0 and total_b == 0:
        return 1.0
    if total_a == 0 or total_b == 0:
        return 0.0
    tvd = 0.5 * sum(
        abs(x / total_a - y / total_b) for x, y in zip(a, b)
    )
    return 1.0 - tvd
