"""The fidelity harness: one scenario, two streams, one verdict.

:class:`FidelityRun` replays a scenario twice —

1. a **firehose pass**: a lossless (delivery ratio 1.0) connection over
   every tweet the scenario generated;
2. a **sample pass**: the tweets returned by the streaming API's
   budgeted ``statuses/sample`` endpoint at the requested rate, replayed
   over an equally lossless connection —

and runs the *same* TwitInfo event (same keywords, same detector
parameters, same bin width) on each. The two passes' digests are scored
against each other with the metrics in :mod:`repro.fidelity.metrics`,
and the sampled side's coverage is estimated from delivered-vs-eligible
counts. At rate 1.0 the two passes see identical streams, so every
score is exactly 1.0 — the identity the property suite pins.

Both passes run on their own virtual clock and seed-derived RNGs; the
resulting :class:`~repro.fidelity.report.FidelityReport` is
deterministic for a given (scenario, seed, rate).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro import rng as rng_mod
from repro.clock import VirtualClock
from repro.engine.session import EngineConfig, TweeQL
from repro.fidelity import metrics
from repro.fidelity.coverage import CoverageEstimate
from repro.fidelity.report import FidelityReport, FidelityScores, StreamDigest
from repro.nlp.tokenize import content_tokens
from repro.twitinfo.app import TrackedEvent, TwitInfoApp
from repro.twitinfo.peaks import PeakDetectorParams
from repro.twitter.models import Tweet
from repro.twitter.stream import Firehose, StreamingAPI
from repro.twitter.users import UserPopulation
from repro.twitter.workloads import (
    Scenario,
    baseball_game_scenario,
    bot_flood_scenario,
    breaking_news_cascade_scenario,
    earthquake_scenario,
    election_night_scenario,
    news_month_scenario,
    soccer_match_scenario,
)

#: Scenario name → generator, for the CLI and tests. Keys are the names
#: ``tweeql fidelity --scenario`` accepts.
SCENARIO_BUILDERS = {
    "soccer": soccer_match_scenario,
    "baseball": baseball_game_scenario,
    "earthquakes": earthquake_scenario,
    "news": news_month_scenario,
    "election": election_night_scenario,
    "cascade": breaking_news_cascade_scenario,
    "botflood": bot_flood_scenario,
}


def build_scenario(
    name: str,
    seed: int = rng_mod.DEFAULT_SEED,
    population_size: int = 2000,
    intensity: float = 1.0,
) -> Scenario:
    """Build a registry scenario with its own seeded population."""
    try:
        builder = SCENARIO_BUILDERS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIO_BUILDERS))
        raise ValueError(f"unknown scenario {name!r} (expected one of: {known})"
                         ) from None
    population = UserPopulation(size=population_size, seed=seed)
    return builder(seed=seed, population=population, intensity=intensity)


@dataclass
class FidelityRun:
    """Replay one scenario through firehose and sample, then score.

    Args:
        scenario: the workload to replay.
        rate: ``statuses/sample`` probability for the sample pass.
        seed: determinism seed for both passes and the sampling draw.
        bin_seconds: timeline bin width for both events.
        topk: how many top terms each digest keeps.
        tolerance_bins: peak-matching tolerance, in bins.
        sample_budget: budget for the metered sample endpoint (the run
            makes exactly one call); None for unmetered.
    """

    scenario: Scenario
    rate: float = 0.01
    seed: int = rng_mod.DEFAULT_SEED
    bin_seconds: float = 60.0
    topk: int = 10
    tolerance_bins: int = 3
    sample_budget: int | None = 1
    _apps: list[TwitInfoApp] = field(default_factory=list, repr=False)

    @property
    def tolerance_seconds(self) -> float:
        return self.tolerance_bins * self.bin_seconds

    # -- passes ---------------------------------------------------------------

    def _run_pass(self, tweets: list[Tweet], rate: float) -> TrackedEvent:
        """One lossless TwitInfo pass over a tweet list."""
        clock = VirtualClock(start=self.scenario.start)
        api = StreamingAPI(
            Firehose(tweets),
            clock=clock,
            delivery_ratio=1.0,
            seed=self.seed,
        )
        session = TweeQL(
            api=api, clock=clock, config=EngineConfig(), seed=self.seed
        )
        app = TwitInfoApp(session)
        self._apps.append(app)
        tracked = app.create_event(
            name=self.scenario.name,
            keywords=self.scenario.keywords,
            bin_seconds=self.bin_seconds,
            detector_params=PeakDetectorParams.for_sampled_stream(rate),
        )
        app.run_event(tracked)
        return tracked

    def sample_tweets(self) -> list[Tweet]:
        """Draw the sample pass's tweets via the metered endpoint.

        The salt is fixed per (scenario, seed), so different rates reuse
        the same per-tweet coin flips: a lower-rate sample is a subset of
        a higher-rate one (nested sampling), which makes the fidelity
        scores monotone-friendly in the rate.
        """
        api = StreamingAPI(
            Firehose(list(self.scenario.tweets)),
            clock=None,
            delivery_ratio=1.0,
            seed=self.seed,
            sample_budget=self.sample_budget,
        )
        return api.sample(rate=self.rate, salt=f"fidelity:{self.scenario.name}")

    # -- digesting ------------------------------------------------------------

    def _digest(self, tracked: TrackedEvent) -> StreamDigest:
        tweets = list(tracked.log.scan())
        term_counts: Counter[str] = Counter()
        coordinates: list[tuple[float, float]] = []
        for tweet in tweets:
            term_counts.update(content_tokens(tweet.text))
            if tweet.geo is not None:
                coordinates.append((tweet.geo[0], tweet.geo[1]))
        top_terms = tuple(
            sorted(term_counts.items(), key=lambda item: (-item[1], item[0]))
            [: self.topk]
        )
        summary = tracked.sentiment_summary()
        peaks = tuple(
            (peak.start, peak.apex_time, peak.apex_count, peak.end)
            for peak in tracked.peaks
        )
        recall = metrics.truth_recall(
            [event.time for event in self.scenario.truth.events],
            [(start, end) for start, _a, _c, end in peaks],
            self.tolerance_seconds,
        )
        return StreamDigest(
            tweets=len(tweets),
            positive=summary.positive,
            negative=summary.negative,
            neutral=summary.neutral,
            geotagged=len(coordinates),
            top_terms=top_terms,
            peaks=peaks,
            truth_recall=recall,
        )

    def _geo_cells(self, tracked: TrackedEvent) -> dict[tuple[int, int], int]:
        return metrics.geo_cells(
            [
                (tweet.geo[0], tweet.geo[1])
                for tweet in tracked.log.scan()
                if tweet.geo is not None
            ]
        )

    # -- the run --------------------------------------------------------------

    def execute(self) -> FidelityReport:
        """Run both passes and score the sample against the firehose."""
        firehose_event = self._run_pass(list(self.scenario.tweets), rate=1.0)
        sample_event = self._run_pass(self.sample_tweets(), rate=self.rate)

        firehose_digest = self._digest(firehose_event)
        sample_digest = self._digest(sample_event)
        tolerance = self.tolerance_seconds

        firehose_terms = [term for term, _count in firehose_digest.top_terms]
        sample_terms = [term for term, _count in sample_digest.top_terms]
        scores = FidelityScores(
            topk_jaccard=metrics.topk_jaccard(firehose_terms, sample_terms),
            topk_rank_correlation=metrics.topk_rank_correlation(
                firehose_terms, sample_terms
            ),
            peak_count=metrics.peak_count_score(
                len(firehose_digest.peaks), len(sample_digest.peaks)
            ),
            peak_timing=metrics.peak_timing_score(
                firehose_digest.apex_points, sample_digest.apex_points,
                tolerance,
            ),
            peak_height=metrics.peak_height_score(
                firehose_digest.apex_points,
                sample_digest.apex_points,
                tolerance,
                scale_other=1.0 / self.rate,
            ),
            geo=metrics.distribution_score(
                self._geo_cells(firehose_event), self._geo_cells(sample_event)
            ),
            sentiment=metrics.sentiment_score(
                firehose_digest.sentiment_counts,
                sample_digest.sentiment_counts,
            ),
        )
        coverage = CoverageEstimate.from_counts(
            observed=sample_digest.tweets, eligible=firehose_digest.tweets
        )
        return FidelityReport(
            scenario=self.scenario.name,
            seed=self.seed,
            rate=self.rate,
            bin_seconds=self.bin_seconds,
            topk=self.topk,
            tolerance_seconds=tolerance,
            firehose=firehose_digest,
            sample=sample_digest,
            coverage=coverage,
            scores=scores,
        )
