"""Sampled-stream fidelity measurement.

TweeQL and TwitInfo consume Twitter's *sampled* streaming API, so every
timeline, peak, and aggregate the paper demos is computed on a thinned
stream. Morstatter et al. ("Is the Sample Good Enough?") showed that the
streaming sample systematically distorts top-k terms, peak shapes, and
geographic distributions relative to the firehose. This package
quantifies that bias for the simulator's scenario workloads:

- :class:`~repro.fidelity.harness.FidelityRun` replays one scenario
  through a lossless firehose pass and a rate-limited ``sample()`` pass,
  runs the same TwitInfo event on each, and scores the sampled side
  against the firehose side (and both against ground truth);
- :class:`~repro.fidelity.report.FidelityReport` is the deterministic,
  JSON-serializable result;
- :class:`~repro.fidelity.coverage.CoverageEstimate` is the
  coverage-confidence number TwitInfo surfaces per event.

Everything is driven by the virtual clock and seed-derived RNGs, so a
report is byte-identical across runs for a given (scenario, seed, rate).
"""

from typing import Any

from repro.fidelity.coverage import CoverageEstimate
from repro.fidelity.report import FidelityReport, FidelityScores, StreamDigest

#: Harness symbols resolved lazily (PEP 562): the harness imports the
#: TwitInfo app, and the app imports :mod:`repro.fidelity.coverage` to
#: annotate events — eager re-export here would close that cycle.
_HARNESS_EXPORTS = ("SCENARIO_BUILDERS", "FidelityRun", "build_scenario")


def __getattr__(name: str) -> Any:
    if name in _HARNESS_EXPORTS:
        from repro.fidelity import harness

        return getattr(harness, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "SCENARIO_BUILDERS",
    "CoverageEstimate",
    "FidelityReport",
    "FidelityRun",
    "FidelityScores",
    "StreamDigest",
    "build_scenario",
]
