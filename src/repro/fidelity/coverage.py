"""Coverage-confidence estimation for thinned streams.

A TwitInfo event fed by a lossy or sampled connection sees only a
fraction of the tweets it would have seen on the firehose. The
*coverage* is that fraction; the *confidence* says how tightly the data
pins it down. Coverage is estimated as a binomial proportion
(delivered out of eligible) with a Wilson 95% interval — the standard
choice for proportions near 0 or 1, which is exactly where delivery
ratios (~0.98) and sample rates (~0.01) live. Confidence is one minus
the interval's width: 0 when the data says nothing, →1 as the interval
collapses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: z for a 95% two-sided interval.
_Z95 = 1.959963984540054


def wilson_interval(
    successes: int, trials: int, z: float = _Z95
) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Returns (low, high) in [0, 1]; the vacuous (0, 1) when ``trials`` is
    zero.
    """
    if trials < 0 or successes < 0 or successes > trials:
        raise ValueError("need 0 <= successes <= trials")
    if trials == 0:
        return (0.0, 1.0)
    p = successes / trials
    z2 = z * z
    denominator = 1.0 + z2 / trials
    center = (p + z2 / (2.0 * trials)) / denominator
    margin = (
        z
        * math.sqrt(p * (1.0 - p) / trials + z2 / (4.0 * trials * trials))
        / denominator
    )
    return (max(0.0, center - margin), min(1.0, center + margin))


@dataclass(frozen=True)
class CoverageEstimate:
    """What fraction of the eligible tweets this stream actually saw.

    Attributes:
        observed: tweets delivered/logged.
        eligible: tweets that *would* have been delivered on a lossless
            firehose connection (matched count).
        coverage: the point estimate ``observed / eligible``.
        ci_low/ci_high: Wilson 95% interval on the coverage.
    """

    observed: int
    eligible: int
    coverage: float
    ci_low: float
    ci_high: float

    @classmethod
    def from_counts(cls, observed: int, eligible: int) -> "CoverageEstimate":
        """Estimate coverage from delivered-vs-eligible counts."""
        low, high = wilson_interval(min(observed, eligible), eligible)
        coverage = observed / eligible if eligible else 0.0
        return cls(
            observed=observed,
            eligible=eligible,
            coverage=min(1.0, coverage),
            ci_low=low,
            ci_high=high,
        )

    @property
    def confidence(self) -> float:
        """1 − interval width: 0 = know nothing, →1 = pinned down."""
        return max(0.0, 1.0 - (self.ci_high - self.ci_low))

    @property
    def estimated_total(self) -> float:
        """Horvitz–Thompson scale-up: how many tweets really happened."""
        if self.coverage <= 0.0:
            return float(self.observed)
        return self.observed / self.coverage

    def as_dict(self) -> dict[str, float | int]:
        return {
            "observed": self.observed,
            "eligible": self.eligible,
            "coverage": self.coverage,
            "ci_low": self.ci_low,
            "ci_high": self.ci_high,
            "confidence": self.confidence,
            "estimated_total": self.estimated_total,
        }
