"""The historical tier: an indexed, partitioned tweet archive.

TwitInfo "saves the event and begins logging tweets matching the query" —
which leaves a freshly created event empty until the live stream catches
up. :class:`HistoricalStore` closes that gap: the firehose is written
*behind* the live path by a background :class:`StorageWriter`, and the
planner splits a windowed query into backfill-from-storage + live-tail
(see ``repro.engine.planner``), so event creation over a populated store
renders its timeline instantly.

The index set follows the multi-terabyte geo-tweet database work (Dobos
et al.) and the SQLite-persistence shape of ``twitter-to-sqlite``:

- btree on ``created_at`` (inherited from :class:`SqliteTweetLog`) — the
  backfill range scan;
- FTS5 on ``text`` — keyword search over history (:meth:`search_text`);
- R-tree on coordinates — bounding-box search (:meth:`search_box`);
- an hour-grain ``partition`` column — pruning and per-partition stats
  (:meth:`partitions`).

FTS5 and the R-tree module are *compile-time* SQLite options; both are
feature-detected at open and degrade to scan-based fallbacks when the
linked SQLite lacks them (``fts_enabled`` / ``rtree_enabled`` report
what the store got). The file runs in WAL mode so the single writer
thread never blocks concurrent backfill readers.

The store also persists metrics-registry snapshots per virtual-time
window (:meth:`record_metrics` / :meth:`metrics_series`), so the
dashboard can chart engine health over an event's life next to the
event's own timeline.
"""

from __future__ import annotations

import queue
import sqlite3
import threading
from collections.abc import Iterator
from numbers import Number
from typing import Any

from repro.errors import StorageError
from repro.storage.tweetlog import SqliteTweetLog
from repro.twitter.models import Tweet

__all__ = ["HistoricalStore", "StorageWriter"]


class HistoricalStore(SqliteTweetLog):
    """Partitioned, fully indexed SQLite archive of the firehose.

    Everything :class:`SqliteTweetLog` offers (append/extend/scan/count/
    counts_by_bucket/meta, thread-safe, batched commits) plus full-text
    and spatial search, time partitions, a backfill watermark, and
    metrics-snapshot persistence.

    Args:
        path: SQLite file (or ``":memory:"`` for tests).
        partition_seconds: width of one time partition (default 1 hour).
        commit_every: single-row appends per batched commit.
    """

    _HIST_SCHEMA = """
        CREATE TABLE IF NOT EXISTS metrics (
            window_start REAL NOT NULL,
            window_end   REAL NOT NULL,
            label        TEXT NOT NULL,
            name         TEXT NOT NULL,
            value        REAL NOT NULL,
            PRIMARY KEY (label, window_start, name)
        );
        CREATE INDEX IF NOT EXISTS idx_metrics_window
            ON metrics (label, window_start);
    """

    def __init__(
        self,
        path: str = ":memory:",
        partition_seconds: float = 3600.0,
        commit_every: int = 64,
    ) -> None:
        if partition_seconds <= 0:
            raise StorageError("partition_seconds must be positive")
        super().__init__(path, commit_every=commit_every)
        self.partition_seconds = partition_seconds
        with self._lock:
            # WAL lets the backfill reader proceed while the writer
            # thread commits (a no-op on :memory: databases).
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.executescript(self._HIST_SCHEMA)
            self._ensure_partition_column()
            self.fts_enabled = self._try_virtual_table(
                "CREATE VIRTUAL TABLE IF NOT EXISTS tweets_fts "
                "USING fts5(text, tweet_id UNINDEXED)"
            )
            self.rtree_enabled = self._try_virtual_table(
                "CREATE VIRTUAL TABLE IF NOT EXISTS tweets_geo "
                "USING rtree(id, min_lat, max_lat, min_lon, max_lon)"
            )
            self._conn.commit()

    # -- schema helpers ----------------------------------------------------

    def _ensure_partition_column(self) -> None:
        columns = {
            row[1]
            for row in self._conn.execute("PRAGMA table_info(tweets)")
        }
        if "partition" not in columns:
            self._conn.execute(
                "ALTER TABLE tweets ADD COLUMN partition INTEGER NOT NULL "
                "DEFAULT 0"
            )
            # Backfill partitions for rows written by a plain
            # SqliteTweetLog before the store was upgraded.
            self._conn.execute(
                "UPDATE tweets SET partition = "
                "CAST(created_at / ? AS INTEGER)",
                (self.partition_seconds,),
            )
        self._conn.execute(
            "CREATE INDEX IF NOT EXISTS idx_tweets_partition_time "
            "ON tweets (partition, created_at)"
        )

    def _try_virtual_table(self, ddl: str) -> bool:
        """Create a virtual table; False when the module isn't compiled in."""
        try:
            self._conn.execute(ddl)
            return True
        except sqlite3.OperationalError:
            return False

    # -- writes ------------------------------------------------------------

    def _insert(self, tweet: Tweet, payload: str) -> None:
        # The pre-existence probe is an indexed PK lookup; it gates the
        # FTS purge below, which would otherwise scan the whole FTS table
        # per insert (tweet_id is UNINDEXED there) — quadratic archival.
        existed = (
            self._conn.execute(
                "SELECT 1 FROM tweets WHERE tweet_id = ?",
                (tweet.tweet_id,),
            ).fetchone()
            is not None
        )
        self._conn.execute(
            "INSERT OR REPLACE INTO tweets "
            "(tweet_id, created_at, user_id, text, payload, partition) "
            "VALUES (?, ?, ?, ?, ?, ?)",
            (
                tweet.tweet_id,
                tweet.created_at,
                tweet.user.user_id,
                tweet.text,
                payload,
                int(tweet.created_at // self.partition_seconds),
            ),
        )
        if self.fts_enabled:
            if existed:
                # INSERT OR REPLACE on the base table re-appends; mirror
                # that by replacing the FTS row rather than accumulating
                # duplicates.
                self._conn.execute(
                    "DELETE FROM tweets_fts WHERE tweet_id = ?",
                    (tweet.tweet_id,),
                )
            self._conn.execute(
                "INSERT INTO tweets_fts (text, tweet_id) VALUES (?, ?)",
                (tweet.text, tweet.tweet_id),
            )
        if self.rtree_enabled and tweet.geo is not None:
            lat, lon = tweet.geo
            self._conn.execute(
                "INSERT OR REPLACE INTO tweets_geo "
                "(id, min_lat, max_lat, min_lon, max_lon) "
                "VALUES (?, ?, ?, ?, ?)",
                (tweet.tweet_id, lat, lat, lon, lon),
            )

    # -- backfill support --------------------------------------------------

    def watermark(self) -> float | None:
        """Largest ``created_at`` in the store, or None when empty.

        The planner's backfill/live split point: history answers strictly
        up to (and including) the watermark, the live tail takes over
        after it.
        """
        with self._lock:
            row = self._conn.execute(
                "SELECT MAX(created_at) FROM tweets"
            ).fetchone()
        return None if row[0] is None else float(row[0])

    def partitions(self) -> list[tuple[float, int]]:
        """(partition_start, row_count) per non-empty partition, in order."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT partition, COUNT(*) FROM tweets "
                "GROUP BY partition ORDER BY partition"
            ).fetchall()
        return [
            (float(p) * self.partition_seconds, int(n)) for p, n in rows
        ]

    # -- search ------------------------------------------------------------

    def search_text(
        self,
        needle: str,
        start: float | None = None,
        end: float | None = None,
    ) -> Iterator[Tweet]:
        """Tweets whose text contains ``needle``, in scan order.

        Uses the FTS5 index when available; otherwise falls back to a
        case-insensitive substring match over the time-range scan (same
        results, linear cost).
        """
        if self.fts_enabled:
            where, params = self._time_clauses(start, end)
            with self._lock:
                cursor = self._conn.execute(
                    "SELECT t.tweet_id, t.created_at, t.user_id, t.text, "
                    "t.payload FROM tweets_fts f "
                    "JOIN tweets t ON t.tweet_id = f.tweet_id "
                    f"WHERE tweets_fts MATCH ? AND {where} "
                    "ORDER BY t.created_at, t.tweet_id",
                    [self._fts_query(needle), *params],
                )
                rows = cursor.fetchall()
            for row in rows:
                yield self._row_to_tweet(row)
            return
        lowered = needle.lower()
        for tweet in self.scan(start, end):
            if lowered in tweet.text.lower():
                yield tweet

    @staticmethod
    def _fts_query(needle: str) -> str:
        """Quote a user string into a literal FTS5 phrase query."""
        escaped = needle.replace('"', '""')
        return f'"{escaped}"'

    def search_box(
        self,
        min_lat: float,
        max_lat: float,
        min_lon: float,
        max_lon: float,
        start: float | None = None,
        end: float | None = None,
    ) -> Iterator[Tweet]:
        """Geotagged tweets inside the bounding box, in scan order.

        Uses the R-tree index when available; otherwise filters the
        time-range scan in Python (same results).
        """
        if self.rtree_enabled:
            where, params = self._time_clauses(start, end)
            with self._lock:
                cursor = self._conn.execute(
                    "SELECT t.tweet_id, t.created_at, t.user_id, t.text, "
                    "t.payload FROM tweets_geo g "
                    "JOIN tweets t ON t.tweet_id = g.id "
                    "WHERE g.min_lat >= ? AND g.max_lat <= ? "
                    "AND g.min_lon >= ? AND g.max_lon <= ? "
                    f"AND {where} ORDER BY t.created_at, t.tweet_id",
                    [min_lat, max_lat, min_lon, max_lon, *params],
                )
                rows = cursor.fetchall()
            for row in rows:
                yield self._row_to_tweet(row)
            return
        for tweet in self.scan(start, end):
            if tweet.geo is None:
                continue
            lat, lon = tweet.geo
            if min_lat <= lat <= max_lat and min_lon <= lon <= max_lon:
                yield tweet

    # -- engine-health history ---------------------------------------------

    def record_metrics(
        self,
        window_start: float,
        window_end: float,
        values: dict[str, Any],
        label: str = "",
    ) -> int:
        """Persist one metrics-registry snapshot for a virtual-time window.

        ``values`` is a flat ``name -> value`` mapping (the registry's
        ``flat()``); non-numeric values are skipped. Re-recording the same
        ``(label, window_start, name)`` replaces the old sample. Returns
        the number of samples written.
        """
        rows = [
            (window_start, window_end, label, name, float(value))
            for name, value in sorted(values.items())
            if isinstance(value, Number) and not isinstance(value, bool)
        ]
        with self._lock:
            self._conn.executemany(
                "INSERT OR REPLACE INTO metrics "
                "(window_start, window_end, label, name, value) "
                "VALUES (?, ?, ?, ?, ?)",
                rows,
            )
            self._conn.commit()
        return len(rows)

    def metrics_series(
        self, label: str | None = None, name: str | None = None
    ) -> list[dict[str, Any]]:
        """Stored snapshots, ordered by window then metric name.

        Each element is ``{"window_start", "window_end", "label", "name",
        "value"}``; filter by ``label`` (event name) and/or ``name``
        (metric name).
        """
        clauses, params = ["1=1"], []
        if label is not None:
            clauses.append("label = ?")
            params.append(label)
        if name is not None:
            clauses.append("name = ?")
            params.append(name)
        with self._lock:
            rows = self._conn.execute(
                "SELECT window_start, window_end, label, name, value "
                f"FROM metrics WHERE {' AND '.join(clauses)} "
                "ORDER BY label, window_start, name",
                params,
            ).fetchall()
        return [
            {
                "window_start": float(ws),
                "window_end": float(we),
                "label": lb,
                "name": nm,
                "value": float(v),
            }
            for ws, we, lb, nm, v in rows
        ]


#: Queue sentinels (tuples never collide with Tweet payloads).
_FLUSH = "flush"
_STOP = "stop"


class StorageWriter:
    """Background writer that archives delivered tweets off the hot path.

    The live path calls :meth:`write`, which is deliberately as close to
    free as the GIL allows: a plain ``list.append`` into a producer-side
    chunk, with one queue handoff per ``batch_size`` tweets. The single
    writer thread inserts chunks without committing per chunk — SQLite
    commits ride the store's own ``commit_every`` threshold, plus an
    explicit commit at every :meth:`flush`/:meth:`stop` barrier. A
    bounded queue caps memory: when the archive cannot keep up, chunks
    are dropped from the *archive* (counted in ``dropped``), never from
    the live query.

    The writer keeps no wall-clock timers — chunk boundaries and the
    explicit barriers are the only flush points, so behavior is
    deterministic for a given delivery order. ``write`` assumes one
    producer thread at a time (the stream connection's iterator);
    archival is best-effort, so a racing second producer can at worst
    misplace a tweet at a chunk boundary, never corrupt the store.
    """

    def __init__(
        self,
        store: SqliteTweetLog,
        batch_size: int = 256,
        capacity: int = 65536,
        start: bool = True,
    ) -> None:
        if batch_size < 1:
            raise StorageError("batch_size must be positive")
        self._store = store
        self._batch_size = batch_size
        self._chunk: list[Tweet] = []
        self._queue: queue.Queue = queue.Queue(maxsize=capacity)
        self.written = 0
        self.dropped = 0
        self.flushes = 0
        self._stopped = False
        self._started = False
        self._thread = threading.Thread(
            target=self._run, name="tweeql-storage-writer", daemon=True
        )
        if start:
            self.start()

    def start(self) -> None:
        """Start the drain thread (``start=False`` defers it so writes
        only buffer — benchmarks use this to price the tap alone)."""
        if not self._started:
            self._started = True
            self._thread.start()

    def write(self, tweet: Tweet) -> bool:
        """Buffer one tweet for archival; False when its chunk was shed."""
        chunk = self._chunk
        chunk.append(tweet)
        if len(chunk) < self._batch_size:
            return True
        self._chunk = []
        try:
            self._queue.put_nowait(chunk)
            return True
        except queue.Full:
            self.dropped += len(chunk)
            return False

    def _hand_off_partial_chunk(self) -> None:
        chunk, self._chunk = self._chunk, []
        if chunk:
            self._queue.put(chunk)

    def flush(self, timeout: float = 30.0) -> None:
        """Block until everything written so far is committed."""
        if self._stopped:
            return
        self.start()  # a deferred-start writer drains at the barrier
        self._hand_off_partial_chunk()
        done = threading.Event()
        self._queue.put((_FLUSH, done))
        done.wait(timeout)

    def stop(self, timeout: float = 30.0) -> None:
        """Flush and terminate the writer thread (idempotent)."""
        if self._stopped:
            return
        self.start()  # a deferred-start writer drains at the barrier
        self._stopped = True
        self._hand_off_partial_chunk()
        self._queue.put((_STOP, None))
        self._thread.join(timeout)

    def metrics(self) -> dict[str, int]:
        """Counters for the metrics registry (``storage.*``)."""
        return {
            "written": self.written,
            "dropped": self.dropped,
            "flushes": self.flushes,
            "pending": self._queue.qsize() * self._batch_size
            + len(self._chunk),
        }

    # -- writer thread -----------------------------------------------------

    def _run(self) -> None:
        while True:
            item = self._queue.get()
            if isinstance(item, tuple):
                command, event = item
                self._store.commit()
                self.flushes += 1
                if command == _FLUSH and event is not None:
                    event.set()
                    continue
                if command == _STOP:
                    return
                continue
            self._store.extend(item, commit=False)
            self.written += len(item)
