"""Tweet and result logging.

TwitInfo "saves the event and begins logging tweets matching the query";
TweeQL's ``INTO table`` clause tees query results into a table. Two
backends share one interface:

- :class:`MemoryTweetLog` — a sorted in-memory log, the default for
  experiments;
- :class:`SqliteTweetLog` — a SQLite-backed log for persistence across
  processes (SQLite ships with CPython, so this stays dependency-free).

Both support append, time-range scans, and counting by time bucket (the
timeline's primitive).

:class:`TableSink` is the lightweight row container behind ``INTO``.
"""

from __future__ import annotations

import bisect
import json
import sqlite3
import threading
from collections.abc import Iterator, Sequence
from typing import Any

from repro.errors import StorageError
from repro.twitter.models import Tweet, TweetEntities, User


class MemoryTweetLog:
    """Append-mostly in-memory tweet log ordered by ``(created_at, tweet_id)``.

    Appends that arrive in timestamp order are O(1); out-of-order appends
    use insertion to keep scans correct (streams are near-ordered, so this
    stays cheap). Ties on ``created_at`` break on ``tweet_id`` — the same
    total order :class:`SqliteTweetLog` scans in (``ORDER BY created_at,
    tweet_id``), so the two backends are row-for-row interchangeable even
    when many tweets share a timestamp.
    """

    def __init__(self) -> None:
        self._keys: list[tuple[float, int]] = []
        self._tweets: list[Tweet] = []

    def append(self, tweet: Tweet) -> None:
        """Add one tweet, keeping ``(created_at, tweet_id)`` order."""
        key = (tweet.created_at, tweet.tweet_id)
        if not self._keys or key >= self._keys[-1]:
            self._keys.append(key)
            self._tweets.append(tweet)
            return
        index = bisect.bisect_right(self._keys, key)
        self._keys.insert(index, key)
        self._tweets.insert(index, tweet)

    def extend(self, tweets: Sequence[Tweet], commit: bool = True) -> None:
        for tweet in tweets:
            self.append(tweet)

    def __len__(self) -> int:
        return len(self._tweets)

    def _range(self, start: float | None, end: float | None) -> tuple[int, int]:
        # ``(t,)`` sorts before ``(t, any_id)``, so bisect_left on the
        # one-tuple finds the first entry with ``created_at >= t``.
        lo = 0 if start is None else bisect.bisect_left(self._keys, (start,))
        hi = (
            len(self._keys)
            if end is None
            else bisect.bisect_left(self._keys, (end,))
        )
        # An inverted window (end <= start) is empty, as in SQL, never a
        # negative slice.
        return lo, max(lo, hi)

    def scan(self, start: float | None = None, end: float | None = None) -> Iterator[Tweet]:
        """Tweets with ``start <= created_at < end``, in time order."""
        lo, hi = self._range(start, end)
        return iter(self._tweets[lo:hi])

    def count(self, start: float | None = None, end: float | None = None) -> int:
        """Number of tweets in the half-open time range."""
        lo, hi = self._range(start, end)
        return hi - lo

    def counts_by_bucket(
        self, start: float, end: float, bucket_seconds: float
    ) -> list[tuple[float, int]]:
        """(bucket_start, count) pairs covering [start, end)."""
        if bucket_seconds <= 0:
            raise StorageError("bucket_seconds must be positive")
        buckets: list[tuple[float, int]] = []
        t = start
        while t < end:
            buckets.append((t, self.count(t, min(t + bucket_seconds, end))))
            t += bucket_seconds
        return buckets


class SqliteTweetLog:
    """SQLite-backed tweet log with the same interface.

    Stores the queryable columns natively and the full record (including
    ground truth) as JSON, so a reloaded log reconstructs complete
    :class:`Tweet` objects.

    The connection is opened with ``check_same_thread=False`` and every
    statement runs under an internal lock, so engine worker threads (the
    sharded executor, the background :class:`~repro.storage.historical.
    StorageWriter`) can share one log safely.

    Durability: :meth:`append` batches its commit — the transaction is
    flushed every ``commit_every`` single-row appends and always on
    :meth:`close`; :meth:`extend` and :meth:`set_meta` commit immediately.
    A crashed process therefore loses at most ``commit_every - 1`` trailing
    single-row appends, never an :meth:`extend` batch.
    """

    _SCHEMA = """
        CREATE TABLE IF NOT EXISTS tweets (
            tweet_id   INTEGER PRIMARY KEY,
            created_at REAL NOT NULL,
            user_id    INTEGER NOT NULL,
            text       TEXT NOT NULL,
            payload    TEXT NOT NULL
        );
        CREATE INDEX IF NOT EXISTS idx_tweets_time ON tweets (created_at);
        CREATE TABLE IF NOT EXISTS meta (
            key   TEXT PRIMARY KEY,
            value TEXT NOT NULL
        );
    """

    #: Rows fetched per lock acquisition while scanning (keeps long scans
    #: from starving concurrent writers).
    _SCAN_CHUNK = 512

    def __init__(self, path: str = ":memory:", commit_every: int = 64) -> None:
        if commit_every < 1:
            raise StorageError("commit_every must be positive")
        self._conn = sqlite3.connect(path, check_same_thread=False)
        self._lock = threading.RLock()
        self._commit_every = commit_every
        self._pending = 0
        self._closed = False
        self._conn.executescript(self._SCHEMA)

    def close(self) -> None:
        """Commit any batched appends and close the connection."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if self._pending:
                self._conn.commit()
                self._pending = 0
            self._conn.close()

    def __enter__(self) -> "SqliteTweetLog":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()

    def commit(self) -> None:
        """Force-flush the append batch (durability barrier)."""
        with self._lock:
            self._conn.commit()
            self._pending = 0

    def append(self, tweet: Tweet) -> None:
        payload = json.dumps(
            {
                "user": {
                    "user_id": tweet.user.user_id,
                    "screen_name": tweet.user.screen_name,
                    "location": tweet.user.location,
                    "home": tweet.user.home,
                    "geo_enabled": tweet.user.geo_enabled,
                    "followers": tweet.user.followers,
                    "lang": tweet.user.lang,
                },
                "geo": tweet.geo,
                "ground_truth": tweet.ground_truth,
            }
        )
        try:
            with self._lock:
                self._insert(tweet, payload)
                self._pending += 1
                if self._pending >= self._commit_every:
                    self._conn.commit()
                    self._pending = 0
        except sqlite3.Error as exc:
            raise StorageError(f"sqlite append failed: {exc}") from exc

    def _insert(self, tweet: Tweet, payload: str) -> None:
        """One row's INSERT statements; caller holds the lock.

        Subclasses override to maintain auxiliary indexes alongside the
        base table (FTS, R-tree, partitions) inside the same transaction.
        """
        self._conn.execute(
            "INSERT OR REPLACE INTO tweets "
            "(tweet_id, created_at, user_id, text, payload) "
            "VALUES (?, ?, ?, ?, ?)",
            (
                tweet.tweet_id,
                tweet.created_at,
                tweet.user.user_id,
                tweet.text,
                payload,
            ),
        )

    def extend(self, tweets: Sequence[Tweet], commit: bool = True) -> None:
        """Bulk append. ``commit=False`` leaves durability to the
        ``commit_every`` threshold and later :meth:`commit`/:meth:`close`
        barriers — the storage writer's hot path."""
        for tweet in tweets:
            self.append(tweet)
        if commit:
            with self._lock:
                self._conn.commit()
                self._pending = 0

    def __len__(self) -> int:
        with self._lock:
            row = self._conn.execute("SELECT COUNT(*) FROM tweets").fetchone()
        return int(row[0])

    @staticmethod
    def _row_to_tweet(row: tuple) -> Tweet:
        tweet_id, created_at, user_id, text, payload_json = row
        payload = json.loads(payload_json)
        user_data = payload["user"]
        user = User(
            # The natively stored column is authoritative — the JSON
            # payload duplicates it only for forensic completeness.
            user_id=int(user_id),
            screen_name=user_data["screen_name"],
            location=user_data["location"],
            home=tuple(user_data["home"]) if user_data["home"] else None,
            geo_enabled=user_data["geo_enabled"],
            followers=user_data["followers"],
            lang=user_data["lang"],
        )
        ground_truth = payload.get("ground_truth") or {}
        if isinstance(ground_truth.get("coords"), list):
            ground_truth["coords"] = tuple(ground_truth["coords"])
        return Tweet(
            tweet_id=tweet_id,
            created_at=created_at,
            user=user,
            text=text,
            geo=tuple(payload["geo"]) if payload.get("geo") else None,
            entities=TweetEntities.from_text(text),
            ground_truth=ground_truth,
        )

    def set_meta(self, key: str, value: Any) -> None:
        """Store a JSON-serializable metadata value (event definitions…)."""
        with self._lock:
            self._conn.execute(
                "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
                (key, json.dumps(value)),
            )
            self._conn.commit()
            self._pending = 0

    def get_meta(self, key: str, default: Any = None) -> Any:
        """Fetch a metadata value stored by :meth:`set_meta`."""
        with self._lock:
            row = self._conn.execute(
                "SELECT value FROM meta WHERE key = ?", (key,)
            ).fetchone()
        return default if row is None else json.loads(row[0])

    @staticmethod
    def _time_clauses(
        start: float | None, end: float | None
    ) -> tuple[str, list[float]]:
        clauses, params = ["1=1"], []
        if start is not None:
            clauses.append("created_at >= ?")
            params.append(start)
        if end is not None:
            clauses.append("created_at < ?")
            params.append(end)
        return " AND ".join(clauses), params

    def scan(self, start: float | None = None, end: float | None = None) -> Iterator[Tweet]:
        """Tweets with ``start <= created_at < end``, in time order."""
        where, params = self._time_clauses(start, end)
        with self._lock:
            cursor = self._conn.execute(
                "SELECT tweet_id, created_at, user_id, text, payload "
                f"FROM tweets WHERE {where} ORDER BY created_at, tweet_id",
                params,
            )
        while True:
            with self._lock:
                rows = cursor.fetchmany(self._SCAN_CHUNK)
            if not rows:
                return
            for row in rows:
                yield self._row_to_tweet(row)

    def count(self, start: float | None = None, end: float | None = None) -> int:
        where, params = self._time_clauses(start, end)
        with self._lock:
            row = self._conn.execute(
                f"SELECT COUNT(*) FROM tweets WHERE {where}", params
            ).fetchone()
        return int(row[0])

    def counts_by_bucket(
        self, start: float, end: float, bucket_seconds: float
    ) -> list[tuple[float, int]]:
        """(bucket_start, count) pairs covering [start, end)."""
        if bucket_seconds <= 0:
            raise StorageError("bucket_seconds must be positive")
        with self._lock:
            cursor = self._conn.execute(
                "SELECT CAST((created_at - ?) / ? AS INTEGER) AS bucket, "
                "COUNT(*) "
                "FROM tweets WHERE created_at >= ? AND created_at < ? "
                "GROUP BY bucket",
                (start, bucket_seconds, start, end),
            )
            counts = dict(cursor.fetchall())
        buckets: list[tuple[float, int]] = []
        index = 0
        t = start
        while t < end:
            buckets.append((t, int(counts.get(index, 0))))
            index += 1
            t += bucket_seconds
        return buckets


class TableSink:
    """Named result table fed by a query's ``INTO`` clause."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.rows: list[dict[str, Any]] = []

    def append(self, row: dict[str, Any]) -> None:
        self.rows.append(dict(row))

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[dict[str, Any]]:
        return iter(self.rows)

    def to_csv(self, path: str) -> int:
        """Write the table to a CSV file; returns the row count.

        Columns are the union of row keys (insertion-ordered), minus
        internal ``__``-prefixed fields.
        """
        import csv

        columns: dict[str, None] = {}
        for row in self.rows:
            for key in row:
                if not key.startswith("__"):
                    columns[key] = None
        with open(path, "w", newline="", encoding="utf-8") as f:
            writer = csv.DictWriter(
                f, fieldnames=list(columns), extrasaction="ignore"
            )
            writer.writeheader()
            for row in self.rows:
                writer.writerow(row)
        return len(self.rows)
