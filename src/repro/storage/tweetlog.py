"""Tweet and result logging.

TwitInfo "saves the event and begins logging tweets matching the query";
TweeQL's ``INTO table`` clause tees query results into a table. Two
backends share one interface:

- :class:`MemoryTweetLog` — a sorted in-memory log, the default for
  experiments;
- :class:`SqliteTweetLog` — a SQLite-backed log for persistence across
  processes (SQLite ships with CPython, so this stays dependency-free).

Both support append, time-range scans, and counting by time bucket (the
timeline's primitive).

:class:`TableSink` is the lightweight row container behind ``INTO``.
"""

from __future__ import annotations

import bisect
import json
import sqlite3
from collections.abc import Iterator, Sequence
from typing import Any

from repro.errors import StorageError
from repro.twitter.models import Tweet, TweetEntities, User


class MemoryTweetLog:
    """Append-mostly in-memory tweet log ordered by ``created_at``.

    Appends that arrive in timestamp order are O(1); out-of-order appends
    use insertion to keep scans correct (streams are near-ordered, so this
    stays cheap).
    """

    def __init__(self) -> None:
        self._times: list[float] = []
        self._tweets: list[Tweet] = []

    def append(self, tweet: Tweet) -> None:
        """Add one tweet, keeping timestamp order."""
        if not self._times or tweet.created_at >= self._times[-1]:
            self._times.append(tweet.created_at)
            self._tweets.append(tweet)
            return
        index = bisect.bisect_right(self._times, tweet.created_at)
        self._times.insert(index, tweet.created_at)
        self._tweets.insert(index, tweet)

    def extend(self, tweets: Sequence[Tweet]) -> None:
        for tweet in tweets:
            self.append(tweet)

    def __len__(self) -> int:
        return len(self._tweets)

    def scan(self, start: float | None = None, end: float | None = None) -> Iterator[Tweet]:
        """Tweets with ``start <= created_at < end``, in time order."""
        lo = 0 if start is None else bisect.bisect_left(self._times, start)
        hi = len(self._times) if end is None else bisect.bisect_left(self._times, end)
        return iter(self._tweets[lo:hi])

    def count(self, start: float | None = None, end: float | None = None) -> int:
        """Number of tweets in the half-open time range."""
        lo = 0 if start is None else bisect.bisect_left(self._times, start)
        hi = len(self._times) if end is None else bisect.bisect_left(self._times, end)
        return hi - lo

    def counts_by_bucket(
        self, start: float, end: float, bucket_seconds: float
    ) -> list[tuple[float, int]]:
        """(bucket_start, count) pairs covering [start, end)."""
        if bucket_seconds <= 0:
            raise StorageError("bucket_seconds must be positive")
        buckets: list[tuple[float, int]] = []
        t = start
        while t < end:
            buckets.append((t, self.count(t, min(t + bucket_seconds, end))))
            t += bucket_seconds
        return buckets


class SqliteTweetLog:
    """SQLite-backed tweet log with the same interface.

    Stores the queryable columns natively and the full record (including
    ground truth) as JSON, so a reloaded log reconstructs complete
    :class:`Tweet` objects.
    """

    _SCHEMA = """
        CREATE TABLE IF NOT EXISTS tweets (
            tweet_id   INTEGER PRIMARY KEY,
            created_at REAL NOT NULL,
            user_id    INTEGER NOT NULL,
            text       TEXT NOT NULL,
            payload    TEXT NOT NULL
        );
        CREATE INDEX IF NOT EXISTS idx_tweets_time ON tweets (created_at);
        CREATE TABLE IF NOT EXISTS meta (
            key   TEXT PRIMARY KEY,
            value TEXT NOT NULL
        );
    """

    def __init__(self, path: str = ":memory:") -> None:
        self._conn = sqlite3.connect(path)
        self._conn.executescript(self._SCHEMA)

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "SqliteTweetLog":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()

    def append(self, tweet: Tweet) -> None:
        payload = json.dumps(
            {
                "user": {
                    "user_id": tweet.user.user_id,
                    "screen_name": tweet.user.screen_name,
                    "location": tweet.user.location,
                    "home": tweet.user.home,
                    "geo_enabled": tweet.user.geo_enabled,
                    "followers": tweet.user.followers,
                    "lang": tweet.user.lang,
                },
                "geo": tweet.geo,
                "ground_truth": tweet.ground_truth,
            }
        )
        try:
            self._conn.execute(
                "INSERT OR REPLACE INTO tweets "
                "(tweet_id, created_at, user_id, text, payload) "
                "VALUES (?, ?, ?, ?, ?)",
                (
                    tweet.tweet_id,
                    tweet.created_at,
                    tweet.user.user_id,
                    tweet.text,
                    payload,
                ),
            )
        except sqlite3.Error as exc:
            raise StorageError(f"sqlite append failed: {exc}") from exc

    def extend(self, tweets: Sequence[Tweet]) -> None:
        for tweet in tweets:
            self.append(tweet)
        self._conn.commit()

    def __len__(self) -> int:
        row = self._conn.execute("SELECT COUNT(*) FROM tweets").fetchone()
        return int(row[0])

    @staticmethod
    def _row_to_tweet(row: tuple) -> Tweet:
        tweet_id, created_at, _user_id, text, payload_json = row
        payload = json.loads(payload_json)
        user_data = payload["user"]
        user = User(
            user_id=user_data["user_id"],
            screen_name=user_data["screen_name"],
            location=user_data["location"],
            home=tuple(user_data["home"]) if user_data["home"] else None,
            geo_enabled=user_data["geo_enabled"],
            followers=user_data["followers"],
            lang=user_data["lang"],
        )
        ground_truth = payload.get("ground_truth") or {}
        if isinstance(ground_truth.get("coords"), list):
            ground_truth["coords"] = tuple(ground_truth["coords"])
        return Tweet(
            tweet_id=tweet_id,
            created_at=created_at,
            user=user,
            text=text,
            geo=tuple(payload["geo"]) if payload.get("geo") else None,
            entities=TweetEntities.from_text(text),
            ground_truth=ground_truth,
        )

    def set_meta(self, key: str, value: Any) -> None:
        """Store a JSON-serializable metadata value (event definitions…)."""
        self._conn.execute(
            "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
            (key, json.dumps(value)),
        )
        self._conn.commit()

    def get_meta(self, key: str, default: Any = None) -> Any:
        """Fetch a metadata value stored by :meth:`set_meta`."""
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key = ?", (key,)
        ).fetchone()
        return default if row is None else json.loads(row[0])

    def scan(self, start: float | None = None, end: float | None = None) -> Iterator[Tweet]:
        """Tweets with ``start <= created_at < end``, in time order."""
        clauses, params = ["1=1"], []
        if start is not None:
            clauses.append("created_at >= ?")
            params.append(start)
        if end is not None:
            clauses.append("created_at < ?")
            params.append(end)
        cursor = self._conn.execute(
            "SELECT tweet_id, created_at, user_id, text, payload FROM tweets "
            f"WHERE {' AND '.join(clauses)} ORDER BY created_at, tweet_id",
            params,
        )
        for row in cursor:
            yield self._row_to_tweet(row)

    def count(self, start: float | None = None, end: float | None = None) -> int:
        clauses, params = ["1=1"], []
        if start is not None:
            clauses.append("created_at >= ?")
            params.append(start)
        if end is not None:
            clauses.append("created_at < ?")
            params.append(end)
        row = self._conn.execute(
            f"SELECT COUNT(*) FROM tweets WHERE {' AND '.join(clauses)}", params
        ).fetchone()
        return int(row[0])

    def counts_by_bucket(
        self, start: float, end: float, bucket_seconds: float
    ) -> list[tuple[float, int]]:
        """(bucket_start, count) pairs covering [start, end)."""
        if bucket_seconds <= 0:
            raise StorageError("bucket_seconds must be positive")
        cursor = self._conn.execute(
            "SELECT CAST((created_at - ?) / ? AS INTEGER) AS bucket, COUNT(*) "
            "FROM tweets WHERE created_at >= ? AND created_at < ? "
            "GROUP BY bucket",
            (start, bucket_seconds, start, end),
        )
        counts = dict(cursor.fetchall())
        buckets: list[tuple[float, int]] = []
        index = 0
        t = start
        while t < end:
            buckets.append((t, int(counts.get(index, 0))))
            index += 1
            t += bucket_seconds
        return buckets


class TableSink:
    """Named result table fed by a query's ``INTO`` clause."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.rows: list[dict[str, Any]] = []

    def append(self, row: dict[str, Any]) -> None:
        self.rows.append(dict(row))

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[dict[str, Any]]:
        return iter(self.rows)

    def to_csv(self, path: str) -> int:
        """Write the table to a CSV file; returns the row count.

        Columns are the union of row keys (insertion-ordered), minus
        internal ``__``-prefixed fields.
        """
        import csv

        columns: dict[str, None] = {}
        for row in self.rows:
            for key in row:
                if not key.startswith("__"):
                    columns[key] = None
        with open(path, "w", newline="", encoding="utf-8") as f:
            writer = csv.DictWriter(
                f, fieldnames=list(columns), extrasaction="ignore"
            )
            writer.writeheader()
            for row in self.rows:
                writer.writerow(row)
        return len(self.rows)
