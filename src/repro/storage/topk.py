"""Space-Saving top-k sketch.

TwitInfo's Popular Links panel shows "the top three URLs extracted from
tweets in the timeframe being explored". Exact counting is fine for one
event page, but the streaming processor tracks links continuously across
events, so we keep the classic Metwally et al. Space-Saving summary: a
fixed number of counters with guaranteed-overestimate error bounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable


@dataclass(frozen=True)
class TopItem:
    """One ranked item: estimated count and maximum overestimate."""

    item: Hashable
    count: int
    error: int

    @property
    def guaranteed(self) -> int:
        """Lower bound on the true count."""
        return self.count - self.error


class SpaceSaving:
    """Fixed-memory heavy-hitter counter.

    Args:
        capacity: number of counters kept (error bound is N / capacity for
            N observed items).
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._capacity = capacity
        self._counts: dict[Hashable, int] = {}
        self._errors: dict[Hashable, int] = {}
        self.observed = 0

    def add(self, item: Hashable, weight: int = 1) -> None:
        """Record one occurrence (or ``weight`` occurrences) of ``item``."""
        if weight <= 0:
            raise ValueError("weight must be positive")
        self.observed += weight
        if item in self._counts:
            self._counts[item] += weight
            return
        if len(self._counts) < self._capacity:
            self._counts[item] = weight
            self._errors[item] = 0
            return
        # Replace the current minimum, inheriting its count as error.
        victim = min(self._counts, key=self._counts.__getitem__)
        floor = self._counts.pop(victim)
        self._errors.pop(victim)
        self._counts[item] = floor + weight
        self._errors[item] = floor

    def top(self, k: int = 3) -> list[TopItem]:
        """The ``k`` items with the highest estimated counts."""
        ranked = sorted(
            self._counts.items(), key=lambda pair: (-pair[1], str(pair[0]))
        )
        return [
            TopItem(item=item, count=count, error=self._errors[item])
            for item, count in ranked[:k]
        ]

    def __len__(self) -> int:
        return len(self._counts)
