"""LRU/TTL cache.

Backs the high-latency UDF machinery ("We employ caching to avoid
requests"). Capacity-bounded LRU with an optional time-to-live measured on
the virtual clock, plus hit/miss counters that the latency benchmarks
report.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable

from repro.clock import VirtualClock

_MISSING = object()


@dataclass
class CacheStats:
    """Hit/miss/eviction counters."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    expirations: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "expirations": self.expirations,
            "hit_rate": round(self.hit_rate, 6),
        }


class LRUCache:
    """A least-recently-used cache with optional TTL.

    Args:
        capacity: maximum number of entries (must be positive).
        ttl_seconds: entry lifetime on the virtual clock; None means
            entries never expire. Requires ``clock`` when set.
        clock: the virtual clock used for TTL bookkeeping.

    ``None`` is a legal cached value (a geocoder's NOT_FOUND is worth
    caching too — negative caching halves repeat misses), which is why the
    API is ``get``/``put``/``contains`` rather than truthiness tricks.
    """

    def __init__(
        self,
        capacity: int = 10_000,
        ttl_seconds: float | None = None,
        clock: VirtualClock | None = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if ttl_seconds is not None and clock is None:
            raise ValueError("ttl_seconds requires a clock")
        self._capacity = capacity
        self._ttl = ttl_seconds
        self._clock = clock
        self._entries: OrderedDict[Hashable, tuple[Any, float]] = OrderedDict()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def capacity(self) -> int:
        return self._capacity

    def _expired(self, stored_at: float) -> bool:
        if self._ttl is None:
            return False
        assert self._clock is not None
        return self._clock.now - stored_at > self._ttl

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Fetch a value, refreshing recency; ``default`` on miss/expiry."""
        entry = self._entries.get(key, _MISSING)
        if entry is _MISSING:
            self.stats.misses += 1
            return default
        value, stored_at = entry
        if self._expired(stored_at):
            del self._entries[key]
            self.stats.expirations += 1
            self.stats.misses += 1
            return default
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return value

    def contains(self, key: Hashable) -> bool:
        """Presence test that does NOT update recency or hit counters."""
        entry = self._entries.get(key, _MISSING)
        if entry is _MISSING:
            return False
        if self._expired(entry[1]):
            del self._entries[key]
            self.stats.expirations += 1
            return False
        return True

    def put(self, key: Hashable, value: Any) -> None:
        """Insert or refresh an entry, evicting the LRU entry if full."""
        now = self._clock.now if self._clock is not None else 0.0
        if key in self._entries:
            self._entries[key] = (value, now)
            self._entries.move_to_end(key)
            return
        if len(self._entries) >= self._capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        self._entries[key] = (value, now)

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        self._entries.clear()
