"""Persistence substrate: caches, top-k sketches, and the tweet log."""

from repro.storage.cache import CacheStats, LRUCache
from repro.storage.historical import HistoricalStore, StorageWriter
from repro.storage.topk import SpaceSaving
from repro.storage.tweetlog import MemoryTweetLog, SqliteTweetLog, TableSink

__all__ = [
    "CacheStats",
    "HistoricalStore",
    "LRUCache",
    "SpaceSaving",
    "MemoryTweetLog",
    "SqliteTweetLog",
    "StorageWriter",
    "TableSink",
]
