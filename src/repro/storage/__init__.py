"""Persistence substrate: caches, top-k sketches, and the tweet log."""

from repro.storage.cache import CacheStats, LRUCache
from repro.storage.topk import SpaceSaving
from repro.storage.tweetlog import MemoryTweetLog, SqliteTweetLog, TableSink

__all__ = [
    "CacheStats",
    "LRUCache",
    "SpaceSaving",
    "MemoryTweetLog",
    "SqliteTweetLog",
    "TableSink",
]
