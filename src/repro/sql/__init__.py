"""The TweeQL language front end: lexer, AST, and parser.

The dialect covers everything the paper's example queries use and the
constructs the prose describes:

- ``SELECT`` lists with scalar and aggregate function calls and aliases,
- ``FROM twitter`` (or any registered source),
- ``WHERE`` with boolean/comparison/arithmetic operators, the tweet-specific
  ``contains`` (case-insensitive substring) and ``matches`` (regular
  expression) operators, and geographic ``location in [bounding box …]``,
- ``GROUP BY`` on expressions or select aliases,
- ``WINDOW n unit [EVERY n unit]`` tumbling/sliding windows,
- ``HAVING``, ``LIMIT``, and ``INTO table`` for logging results.
"""

from repro.sql.ast import (
    BBox,
    BinaryOp,
    FieldRef,
    FuncCall,
    InList,
    Literal,
    SelectItem,
    SelectStatement,
    Star,
    UnaryOp,
    WindowSpec,
)
from repro.sql.lexer import Token, TokenType, tokenize
from repro.sql.parser import parse

__all__ = [
    "BBox",
    "BinaryOp",
    "FieldRef",
    "FuncCall",
    "InList",
    "Literal",
    "SelectItem",
    "SelectStatement",
    "Star",
    "UnaryOp",
    "WindowSpec",
    "Token",
    "TokenType",
    "tokenize",
    "parse",
]
