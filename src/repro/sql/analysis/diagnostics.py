"""Structured diagnostics with stable codes and caret rendering.

Code ranges (catalogued with examples in ``docs/ANALYSIS.md``):

- ``TQL0xx`` — lexical/syntactic (``TQL001`` lex, ``TQL002`` syntax);
- ``TQL1xx`` — type diagnostics from the inferencer;
- ``TQL2xx`` — semantic errors (everything the planner would reject);
- ``TQL3xx`` — streamability / performance / safety lints;
- ``TQL4xx`` — shared-scan admission control (``TQL401`` capacity,
  ``TQL402`` unshareable statement, ``TQL403`` group already streaming
  or closed) — raised as :class:`repro.errors.AdmissionError` by
  :mod:`repro.engine.multitenant`, not emitted by the static analyzer;
- ``TQL9xx`` — TQLSAN engine-correctness checks: ``TQL901``–``TQL911``
  runtime invariant violations raised as
  :class:`repro.errors.SanitizerError` by
  :mod:`repro.engine.sanitizer`, and ``TQL920``–``TQL923``
  engine-*source* determinism findings emitted by
  :mod:`repro.sql.analysis.engine_lint` (which lints the engine's own
  Python, not TweeQL queries).

A :class:`Diagnostic` is an immutable record; a :class:`DiagnosticSink`
collects every problem found in one pass over a statement so a user fixing
a query sees all of them at once, not one per round trip.
"""

from __future__ import annotations

import enum
from collections.abc import Mapping
from dataclasses import dataclass, field

from repro.sql.ast import Span


class Severity(enum.Enum):
    """How bad a diagnostic is.

    ERROR means the planner would reject the query; WARNING flags a hazard
    that plans fine but will bite at stream time; INFO is advisory.
    ``tweeql check --strict`` treats warnings as failures.
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        return {"error": 0, "warning": 1, "info": 2}[self.value]


@dataclass(frozen=True)
class Diagnostic:
    """One analysis finding.

    Attributes:
        code: stable identifier, e.g. ``"TQL201"``.
        severity: :class:`Severity`.
        message: one-line human description.
        span: source range the finding points at (None when unknown, e.g.
            a statement-level problem with no single offending token).
        hint: optional fix suggestion ("did you mean …", "add a WINDOW
            clause", …).
        payload: structured details for programmatic consumers (the
            planner gate rebuilds typed exceptions — e.g.
            ``UnknownFieldError(name, available)`` — from this instead of
            re-parsing the message). Excluded from equality.
    """

    code: str
    severity: Severity
    message: str
    span: Span | None = None
    hint: str | None = None
    payload: Mapping[str, object] | None = field(
        default=None, compare=False, repr=False
    )

    def as_dict(self) -> dict[str, object]:
        """JSON-ready representation (``tweeql check --format=json``)."""
        payload: dict[str, object] = {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
        }
        if self.span is not None:
            payload["span"] = {"start": self.span.start, "end": self.span.end}
        if self.hint is not None:
            payload["hint"] = self.hint
        return payload

    def render(self, source: str | None = None) -> str:
        """Render as ``code severity: message`` plus a caret snippet.

        The snippet shows the source line containing the span with
        ``^^^^`` underlining the offending range, using the lexer's
        character offsets::

            TQL201 error: unknown field: 'bogs' (available: …)
              SELECT bogs FROM twitter;
                     ^^^^
              hint: did you mean 'loc'?
        """
        head = f"{self.code} {self.severity.value}: {self.message}"
        lines = [head]
        snippet = _caret_snippet(source, self.span)
        if snippet:
            lines.extend(f"  {line}" for line in snippet)
        if self.hint:
            lines.append(f"  hint: {self.hint}")
        return "\n".join(lines)


def _caret_snippet(source: str | None, span: Span | None) -> list[str]:
    """The source line covering ``span`` and a caret underline, or []."""
    if source is None or span is None:
        return []
    start = max(0, min(span.start, len(source)))
    line_start = source.rfind("\n", 0, start) + 1
    line_end = source.find("\n", start)
    if line_end < 0:
        line_end = len(source)
    line = source[line_start:line_end]
    if not line.strip():
        return []
    caret_from = start - line_start
    caret_len = max(1, min(span.end, line_end) - start)
    underline = " " * caret_from + "^" * caret_len
    return [line, underline]


class DiagnosticSink:
    """Accumulates diagnostics during one analysis pass."""

    def __init__(self) -> None:
        self._items: list[Diagnostic] = []

    def add(
        self,
        code: str,
        severity: Severity,
        message: str,
        span: Span | None = None,
        hint: str | None = None,
        payload: Mapping[str, object] | None = None,
    ) -> None:
        self._items.append(
            Diagnostic(code, severity, message, span, hint, payload)
        )

    def error(
        self, code: str, message: str, span: Span | None = None,
        hint: str | None = None, payload: Mapping[str, object] | None = None,
    ) -> None:
        self.add(code, Severity.ERROR, message, span, hint, payload)

    def warning(
        self, code: str, message: str, span: Span | None = None,
        hint: str | None = None, payload: Mapping[str, object] | None = None,
    ) -> None:
        self.add(code, Severity.WARNING, message, span, hint, payload)

    def info(
        self, code: str, message: str, span: Span | None = None,
        hint: str | None = None, payload: Mapping[str, object] | None = None,
    ) -> None:
        self.add(code, Severity.INFO, message, span, hint, payload)

    def collect(self) -> tuple[Diagnostic, ...]:
        """All diagnostics, errors first, then by source position."""
        return tuple(
            sorted(
                self._items,
                key=lambda d: (
                    d.severity.rank,
                    d.span.start if d.span is not None else 1 << 30,
                    d.code,
                ),
            )
        )

    @property
    def has_errors(self) -> bool:
        return any(d.severity is Severity.ERROR for d in self._items)
