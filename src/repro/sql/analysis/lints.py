"""Streamability / performance / safety lints (``TQL3xx``).

These never block planning — they flag queries that run but behave worse
than the author probably expects on an unbounded stream:

- ``TQL301`` confidence-triggered aggregation emits approximations;
- ``TQL302`` a high-latency web-service UDF predicate ordered before
  cheap predicates (every tweet pays the round trip);
- ``TQL303`` regex shapes prone to catastrophic backtracking;
- ``TQL304`` no streaming-API-eligible predicate → firehose scan;
- ``TQL305`` constant predicates (always true / always false);
- ``TQL306`` redundant or field-shadowing select aliases;
- ``TQL307`` ``now()`` pins execution to one row per batch;
- ``TQL308`` statement shape forces the serial fallback despite
  ``workers > 1``;
- ``TQL309`` more process workers requested than the host has CPU
  cores (the planner clamps them);
- ``TQL310`` ``shard_backend="process"`` requested but this statement
  runs on threads (or serially) instead, with the reason;
- ``TQL311`` backfill enabled but no ``created_at`` lower bound — the
  whole historical store is replayed before the live tail.

The API-eligibility matchers are deliberately *reimplemented* here (same
shapes as :mod:`repro.engine.planner`'s ``_track_keywords`` /
``_bbox_filter`` / ``_follow_ids``) rather than imported: the planner
imports this package for its validation gate, so the dependency must
point engine ← analysis only.
"""

from __future__ import annotations

import re
from typing import Any

from repro.engine.aggregates import AGGREGATE_NAMES
from repro.engine.functions import FunctionRegistry
from repro.sql import ast
from repro.sql.analysis.catalog import Catalog
from repro.sql.analysis.diagnostics import DiagnosticSink
from repro.sql.analysis.semantic import statement_has_aggregates
from repro.sql.ast import span_of


def run_lints(
    statement: ast.SelectStatement,
    schema: tuple[str, ...],
    registry: FunctionRegistry,
    sink: DiagnosticSink,
    catalog: Catalog,
    config: Any = None,
) -> None:
    """Run every lint over one statement.

    ``config`` is the session's ``EngineConfig`` (or None for
    session-less analysis; lints that depend on configuration use the
    engine's defaults then).
    """
    conjuncts = _split_conjuncts(statement.where)
    _lint_confidence_aggregate(statement, sink, config)
    _lint_latency_ordering(conjuncts, registry, sink)
    _lint_regex_shapes(statement, sink)
    _lint_firehose(statement, conjuncts, catalog, sink)
    _lint_constant_predicates(conjuncts, statement, sink)
    _lint_aliases(statement, schema, sink)
    _lint_now_pinning(statement, sink, config)
    _lint_serial_fallback(statement, registry, sink, config)
    _lint_worker_oversubscription(sink, config)
    _lint_process_fallback(statement, registry, sink, config)
    _lint_unbounded_backfill(statement, conjuncts, sink, config)


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _split_conjuncts(expr: ast.Expr | None) -> list[ast.Expr]:
    if expr is None:
        return []
    if isinstance(expr, ast.BinaryOp) and expr.op == "AND":
        return _split_conjuncts(expr.left) + _split_conjuncts(expr.right)
    return [expr]


def _statement_exprs(statement: ast.SelectStatement) -> list[ast.Expr]:
    exprs: list[ast.Expr] = [
        item.expr
        for item in statement.select
        if not isinstance(item.expr, ast.Star)
    ]
    if statement.where is not None:
        exprs.append(statement.where)
    exprs.extend(statement.group_by)
    if statement.having is not None:
        exprs.append(statement.having)
    exprs.extend(expr for expr, _desc in statement.order_by)
    return exprs


def _calls_function(
    statement: ast.SelectStatement, predicate: Any
) -> ast.FuncCall | None:
    for expr in _statement_exprs(statement):
        for node in ast.walk(expr):
            if isinstance(node, ast.FuncCall) and predicate(node):
                return node
    return None


# ---------------------------------------------------------------------------
# TQL301 — confidence-triggered aggregation is approximate
# ---------------------------------------------------------------------------


def _lint_confidence_aggregate(
    statement: ast.SelectStatement, sink: DiagnosticSink, config: Any
) -> None:
    policy = getattr(config, "confidence_policy", None)
    if policy is None:
        return
    if statement_has_aggregates(statement) and statement.window is None:
        sink.info(
            "TQL301",
            "aggregate without a WINDOW runs in confidence-triggered mode: "
            "groups emit when their confidence interval tightens, so "
            "results are approximations with attached CI columns",
            None,
            "add a WINDOW clause for exact per-window results",
        )


# ---------------------------------------------------------------------------
# TQL302 — high-latency UDF ordered before cheap predicates
# ---------------------------------------------------------------------------


def _is_high_latency(expr: ast.Expr, registry: FunctionRegistry) -> bool:
    for node in ast.walk(expr):
        if (
            isinstance(node, ast.FuncCall)
            and node.name not in AGGREGATE_NAMES
            and node.name in registry
            and registry.lookup(node.name).high_latency
        ):
            return True
    return False


def _lint_latency_ordering(
    conjuncts: list[ast.Expr], registry: FunctionRegistry, sink: DiagnosticSink
) -> None:
    first_slow: int | None = None
    for index, conjunct in enumerate(conjuncts):
        slow = _is_high_latency(conjunct, registry)
        if slow and first_slow is None:
            first_slow = index
        elif not slow and first_slow is not None:
            sink.warning(
                "TQL302",
                "a high-latency web-service UDF predicate is ordered before "
                "a cheap predicate; every tweet pays the round trip before "
                "the cheap filter can discard it",
                span_of(conjuncts[first_slow]),
                "move cheap predicates first in the WHERE conjunction, or "
                "enable the eddy (EngineConfig.use_eddy) to reorder "
                "adaptively",
            )
            return


# ---------------------------------------------------------------------------
# TQL303 — catastrophic-backtracking regex shapes
# ---------------------------------------------------------------------------

#: Quantified group that itself contains an unbounded quantifier —
#: ``(a+)+``, ``(a*)*``, ``(a+)*``, ``(.*)+``, ``(a|aa)+``-style shapes.
_NESTED_QUANTIFIER = re.compile(r"\([^()]*[+*}][^()]*\)\s*[+*{]")
#: Adjacent unbounded quantifiers over overlapping atoms: ``.*.*``, ``.+.*``.
_ADJACENT_GREEDY = re.compile(r"\.\s*[+*]\s*\.\s*[+*]")


def _suspicious_regex(pattern: str) -> str | None:
    """Why the pattern risks catastrophic backtracking, or None."""
    if _NESTED_QUANTIFIER.search(pattern):
        return "a quantified group containing another quantifier"
    if _ADJACENT_GREEDY.search(pattern):
        return "adjacent unbounded wildcards"
    alternation = re.search(r"\(([^()|]+)\|([^()|]+)\)[+*]", pattern)
    if alternation and (
        alternation.group(1).startswith(alternation.group(2))
        or alternation.group(2).startswith(alternation.group(1))
    ):
        return "a quantified alternation with overlapping branches"
    return None


def _lint_regex_shapes(
    statement: ast.SelectStatement, sink: DiagnosticSink
) -> None:
    for expr in _statement_exprs(statement):
        for node in ast.walk(expr):
            if (
                isinstance(node, ast.BinaryOp)
                and node.op == "MATCHES"
                and isinstance(node.right, ast.Literal)
                and isinstance(node.right.value, str)
            ):
                reason = _suspicious_regex(node.right.value)
                if reason is not None:
                    sink.warning(
                        "TQL303",
                        f"regex {node.right.value!r} contains {reason}, a "
                        "catastrophic-backtracking shape; one adversarial "
                        "tweet can stall the stream",
                        span_of(node.right) or span_of(node),
                        "rewrite without nested/overlapping unbounded "
                        "quantifiers",
                    )


# ---------------------------------------------------------------------------
# TQL304 — no API-eligible predicate: firehose scan
# ---------------------------------------------------------------------------
# Shape matchers mirror repro.engine.planner (see module docstring).


def _track_keywords(expr: ast.Expr) -> bool:
    if isinstance(expr, ast.BinaryOp) and expr.op == "OR":
        return _track_keywords(expr.left) and _track_keywords(expr.right)
    return (
        isinstance(expr, ast.BinaryOp)
        and expr.op == "CONTAINS"
        and isinstance(expr.left, ast.FieldRef)
        and expr.left.name.lower() == "text"
        and isinstance(expr.right, ast.Literal)
        and isinstance(expr.right.value, str)
    )


def _bbox_filter(expr: ast.Expr) -> bool:
    return (
        isinstance(expr, ast.BinaryOp)
        and expr.op == "IN_BBOX"
        and isinstance(expr.left, ast.FieldRef)
        and expr.left.name.lower() in ("location", "geo", "point")
        and isinstance(expr.right, ast.BBox)
    )


def _follow_ids(expr: ast.Expr) -> bool:
    if (
        isinstance(expr, ast.BinaryOp)
        and expr.op == "="
        and isinstance(expr.left, ast.FieldRef)
        and expr.left.name.lower() == "user_id"
        and isinstance(expr.right, ast.Literal)
        and isinstance(expr.right.value, int)
    ):
        return True
    return (
        isinstance(expr, ast.InList)
        and isinstance(expr.operand, ast.FieldRef)
        and expr.operand.name.lower() == "user_id"
        and all(
            isinstance(v, ast.Literal) and isinstance(v.value, int)
            for v in expr.values
        )
    )


def _api_eligible(expr: ast.Expr) -> bool:
    return _track_keywords(expr) or _bbox_filter(expr) or _follow_ids(expr)


def _lint_firehose(
    statement: ast.SelectStatement,
    conjuncts: list[ast.Expr],
    catalog: Catalog,
    sink: DiagnosticSink,
) -> None:
    binding = catalog.get(statement.source)
    if binding is None or not binding.live:
        return
    if any(_api_eligible(conjunct) for conjunct in conjuncts):
        return
    sink.warning(
        "TQL304",
        "no predicate is expressible as a streaming-API filter (keyword "
        "track, location box, or user follow); the query must scan the "
        "full firehose",
        span_of(statement.where) if statement.where is not None else None,
        "add a conjunct shaped like text CONTAINS '…', location IN "
        "[bounding box …], or user_id = n",
    )


# ---------------------------------------------------------------------------
# TQL305 — constant predicates via constant folding
# ---------------------------------------------------------------------------

_UNKNOWN = object()


def fold_constant(expr: ast.Expr) -> Any:
    """Evaluate a field-free, call-free expression; ``_UNKNOWN`` otherwise.

    Mirrors the evaluator's semantics for the folded subset (three-valued
    logic, NULL propagation, division by zero → NULL) so "always
    true/false" verdicts match what the engine would compute per row.
    """
    if isinstance(expr, ast.Literal):
        return expr.value
    if isinstance(expr, ast.UnaryOp):
        inner = fold_constant(expr.operand)
        if inner is _UNKNOWN:
            return _UNKNOWN
        if expr.op == "NOT":
            return None if inner is None else not bool(inner)
        if expr.op == "NEG":
            if inner is None:
                return None
            return -inner if isinstance(inner, (int, float)) else _UNKNOWN
        if expr.op == "IS NULL":
            return inner is None
        if expr.op == "IS NOT NULL":
            return inner is not None
        return _UNKNOWN
    if isinstance(expr, ast.InList):
        needle = fold_constant(expr.operand)
        values = [fold_constant(v) for v in expr.values]
        if needle is _UNKNOWN or any(v is _UNKNOWN for v in values):
            return _UNKNOWN
        return None if needle is None else needle in values
    if not isinstance(expr, ast.BinaryOp):
        return _UNKNOWN

    op = expr.op
    if op in ("AND", "OR"):
        lhs, rhs = fold_constant(expr.left), fold_constant(expr.right)
        if lhs is _UNKNOWN or rhs is _UNKNOWN:
            # Short-circuit still decides some mixed cases.
            known = lhs if rhs is _UNKNOWN else rhs
            if known is _UNKNOWN:
                return _UNKNOWN
            if op == "AND" and known is not None and not bool(known):
                return False
            if op == "OR" and known is not None and bool(known):
                return True
            return _UNKNOWN
        if op == "AND":
            if (lhs is not None and not bool(lhs)) or (
                rhs is not None and not bool(rhs)
            ):
                return False
            return None if lhs is None or rhs is None else True
        if (lhs is not None and bool(lhs)) or (rhs is not None and bool(rhs)):
            return True
        return None if lhs is None or rhs is None else False

    lhs, rhs = fold_constant(expr.left), fold_constant(expr.right)
    if lhs is _UNKNOWN or rhs is _UNKNOWN:
        return _UNKNOWN
    if lhs is None or rhs is None:
        return None
    try:
        if op == "=":
            return lhs == rhs
        if op in ("!=", "<>"):
            return lhs != rhs
        if op == "<":
            return lhs < rhs
        if op == "<=":
            return lhs <= rhs
        if op == ">":
            return lhs > rhs
        if op == ">=":
            return lhs >= rhs
        if op == "CONTAINS":
            return str(rhs).casefold() in str(lhs).casefold()
        if op == "+":
            return lhs + rhs
        if op == "-":
            return lhs - rhs
        if op == "*":
            return lhs * rhs
        if op == "%":
            return lhs % rhs
        if op == "/":
            return None if rhs == 0 else lhs / rhs
    except (TypeError, ZeroDivisionError):
        return None
    return _UNKNOWN


def _lint_constant_predicates(
    conjuncts: list[ast.Expr],
    statement: ast.SelectStatement,
    sink: DiagnosticSink,
) -> None:
    checked: list[tuple[str, ast.Expr]] = [
        ("WHERE", conjunct) for conjunct in conjuncts
    ]
    if statement.having is not None:
        checked.append(("HAVING", statement.having))
    for clause, expr in checked:
        value = fold_constant(expr)
        if value is _UNKNOWN:
            continue
        if value is None or not bool(value):
            sink.warning(
                "TQL305",
                f"{clause} predicate {expr.to_sql()!r} is never true; the "
                "query can never emit a row",
                span_of(expr),
            )
        else:
            sink.warning(
                "TQL305",
                f"{clause} predicate {expr.to_sql()!r} is always true and "
                "filters nothing",
                span_of(expr),
                "drop the predicate",
            )


# ---------------------------------------------------------------------------
# TQL306 — redundant / shadowing select aliases
# ---------------------------------------------------------------------------


def _lint_aliases(
    statement: ast.SelectStatement,
    schema: tuple[str, ...],
    sink: DiagnosticSink,
) -> None:
    schema_set = {name.lower() for name in schema}
    for item in statement.select:
        if not item.alias:
            continue
        alias = item.alias.lower()
        if (
            isinstance(item.expr, ast.FieldRef)
            and item.expr.name.lower() == alias
        ):
            sink.info(
                "TQL306",
                f"alias {item.alias!r} is redundant (it renames the field "
                "to its own name)",
                span_of(item) or span_of(item.expr),
                "drop the AS clause",
            )
        elif alias in schema_set and not (
            isinstance(item.expr, ast.FieldRef)
            and item.expr.name.lower() == alias
        ):
            sink.warning(
                "TQL306",
                f"alias {item.alias!r} shadows a stream field of the same "
                "name; GROUP BY / HAVING references to it bind to the "
                "alias, not the field",
                span_of(item) or span_of(item.expr),
                "pick an alias that is not a schema field name",
            )


# ---------------------------------------------------------------------------
# TQL307 — now() pins batch size to 1
# ---------------------------------------------------------------------------


def _lint_now_pinning(
    statement: ast.SelectStatement, sink: DiagnosticSink, config: Any
) -> None:
    batch_size = getattr(config, "batch_size", None)
    if batch_size == 1:
        return  # already row-at-a-time by configuration
    call = _calls_function(statement, lambda node: node.name == "now")
    if call is not None:
        sink.info(
            "TQL307",
            "now() reads stream time row by row, so the engine falls back "
            "to one row per batch for this query (batched execution is "
            "disabled)",
            span_of(call),
            "use created_at where per-row arrival time is what you mean",
        )


# ---------------------------------------------------------------------------
# TQL308 — serial fallback despite workers > 1
# ---------------------------------------------------------------------------


def _serial_fallback_reason(
    statement: ast.SelectStatement,
    registry: FunctionRegistry,
    config: Any,
) -> tuple[str | None, Any]:
    """Why this statement cannot shard, or (None, None) — mirrors the
    planner's ``_shard_blocker`` (reimplemented; see module docstring)."""
    if statement.join is not None:
        return "stream joins need co-partitioned inputs", None
    if statement.window is not None and statement.window.count_based:
        return (
            "count-based windows depend on global row ordinals",
            span_of(statement.window),
        )
    if statement_has_aggregates(statement) and not statement.group_by:
        return "global aggregates form a single group", None
    if (
        getattr(config, "latency_mode", "sync") == "async"
        and getattr(config, "partial_results", False)
    ):
        return "partial results depend on in-flight call timing", None
    call = _calls_function(statement, lambda node: node.name == "now")
    if call is not None:
        return "now() reads the global stream time", span_of(call)
    call = _calls_function(
        statement,
        lambda node: node.name not in AGGREGATE_NAMES
        and node.name in registry
        and registry.lookup(node.name).stateful,
    )
    if call is not None:
        return (
            f"stateful UDF {call.name}() folds over global row order",
            span_of(call),
        )
    return None, None


def _lint_serial_fallback(
    statement: ast.SelectStatement,
    registry: FunctionRegistry,
    sink: DiagnosticSink,
    config: Any,
) -> None:
    workers = getattr(config, "workers", 1)
    if workers <= 1:
        return
    reason, span = _serial_fallback_reason(statement, registry, config)
    if reason is not None:
        sink.info(
            "TQL308",
            f"workers={workers} has no effect: this statement shape forces "
            f"the serial fallback ({reason})",
            span,
        )


# ---------------------------------------------------------------------------
# TQL309 — more workers than CPU cores
# ---------------------------------------------------------------------------


def _lint_worker_oversubscription(sink: DiagnosticSink, config: Any) -> None:
    import os

    workers = getattr(config, "workers", 1)
    if workers <= 1:
        return
    cores = os.cpu_count() or 1
    if workers <= cores:
        return
    backend = getattr(config, "shard_backend", "thread")
    if backend == "process":
        hint = (
            "the planner clamps process workers to the core count — "
            "extra forks cost memory without adding parallelism"
        )
    else:
        hint = (
            "thread workers beyond the core count add no CPU parallelism "
            "under the GIL (they remain useful only as logical shards)"
        )
    sink.info(
        "TQL309",
        f"workers={workers} exceeds this host's {cores} CPU core(s); {hint}",
        None,
    )


# ---------------------------------------------------------------------------
# TQL310 — process backend requested but not used
# ---------------------------------------------------------------------------


def _lint_process_fallback(
    statement: ast.SelectStatement,
    registry: FunctionRegistry,
    sink: DiagnosticSink,
    config: Any,
) -> None:
    """Mirrors the planner's ``_process_blocker`` (plus the serial
    fallback, which trumps backend choice entirely)."""
    import multiprocessing

    workers = getattr(config, "workers", 1)
    backend = getattr(config, "shard_backend", "thread")
    if workers <= 1 or backend != "process":
        return
    reason, span = _serial_fallback_reason(statement, registry, config)
    if reason is not None:
        sink.info(
            "TQL310",
            'shard_backend="process" has no effect: this statement runs '
            f"serially ({reason})",
            span,
        )
        return
    if "fork" not in multiprocessing.get_all_start_methods():
        reason = "this platform cannot fork worker processes"
    elif getattr(config, "confidence_policy", None) is not None and (
        statement_has_aggregates(statement) and statement.window is None
    ):
        reason = "confidence-triggered emission is clock/punctuation-coupled"
    else:
        call = _calls_function(
            statement,
            lambda node: node.name not in AGGREGATE_NAMES
            and node.name in registry
            and registry.lookup(node.name).high_latency,
        )
        if call is not None:
            reason = (
                f"web-service UDF {call.name}() must run on the session "
                "clock"
            )
            span = span_of(call)
    if reason is not None:
        sink.info(
            "TQL310",
            'shard_backend="process" falls back to thread workers for this '
            f"statement ({reason})",
            span,
        )


# ---------------------------------------------------------------------------
# TQL311 — unbounded backfill scans the whole historical store
# ---------------------------------------------------------------------------


def _created_at_lower_bound(expr: ast.Expr) -> bool:
    """True when ``expr`` is ``created_at >=/> <literal>`` (either
    orientation) — the bound that lets the backfill split range-scan the
    store instead of reading it from the beginning of time."""
    if not isinstance(expr, ast.BinaryOp):
        return False
    left, right, op = expr.left, expr.right, expr.op
    if op in (">=", ">"):
        field, literal = left, right
    elif op in ("<=", "<"):
        # ``<literal> <= created_at`` is a lower bound too.
        field, literal = right, left
    else:
        return False
    return (
        isinstance(field, ast.FieldRef)
        and field.name.lower() == "created_at"
        and isinstance(literal, ast.Literal)
        and isinstance(literal.value, (int, float))
        and not isinstance(literal.value, bool)
    )


def _lint_unbounded_backfill(
    statement: ast.SelectStatement,
    conjuncts: list[ast.Expr],
    sink: DiagnosticSink,
    config: Any,
) -> None:
    if config is None or not getattr(config, "backfill", False):
        return
    if getattr(config, "storage_path", None) is None:
        return
    if statement.source.lower() != "twitter":
        return
    if any(_created_at_lower_bound(conjunct) for conjunct in conjuncts):
        return
    sink.info(
        "TQL311",
        "backfill is enabled but this query has no created_at lower "
        "bound: the entire historical store is replayed before the live "
        "tail",
        span_of(statement.where) if statement.where is not None else None,
    )
