"""Static analysis for TweeQL queries.

Runs between parse and plan: a type inferencer over the expression AST,
semantic validation mirroring every check the planner enforces, and a lint
pass for the hazards the paper calls out (unwindowed aggregates over an
unbounded stream, high-latency web-service UDFs ordered before cheap
predicates, queries with no streaming-API-eligible filter, catastrophic
regex shapes, constant predicates).

All problems in a query are collected into structured
:class:`~repro.sql.analysis.diagnostics.Diagnostic` records — stable codes,
severity, source span, message, hint — instead of aborting on the first,
and render as caret snippets against the original SQL. Entry points:

- :func:`analyze_sql` — analyze a query string (syntax errors become
  diagnostics too);
- :func:`analyze_statement` — analyze an already-parsed statement;
- ``TweeQL.analyze()`` — session-aware analysis against the live catalog;
- ``tweeql check`` — the CLI front end (``--strict`` promotes warnings to
  a failing exit status).

The full code catalogue lives in ``docs/ANALYSIS.md``.
"""

from repro.sql.analysis.analyzer import (
    AnalysisResult,
    analyze_sql,
    analyze_statement,
    catalog_from_sources,
    gate_result,
)
from repro.sql.analysis.catalog import Catalog, SourceInfo
from repro.sql.analysis.diagnostics import (
    Diagnostic,
    DiagnosticSink,
    Severity,
)
from repro.sql.analysis.typeinfer import SqlType, TypeInferencer, field_types_for

__all__ = [
    "AnalysisResult",
    "Catalog",
    "Diagnostic",
    "DiagnosticSink",
    "Severity",
    "SourceInfo",
    "SqlType",
    "TypeInferencer",
    "analyze_sql",
    "analyze_statement",
    "catalog_from_sources",
    "field_types_for",
    "gate_result",
]
