"""Determinism lint over the engine's own Python source.

The static analyzer (PR 3) made *queries* checkable before execution;
this module applies the same discipline to the engine itself. It walks
the Python AST of every file under the given paths and reports, with the
same :class:`~repro.sql.analysis.diagnostics.Diagnostic` machinery the
query analyzer uses (stable codes, caret snippets, ``--format=json``):

======= ====================================================================
TQL920  wall-clock read in engine code — ``time.time()`` / ``time.time_ns()``
        or naive ``datetime.now()`` / ``datetime.utcnow()``. Engine time
        must come from the session's virtual clock (``repro.clock``):
        wall-clock reads make replays, golden traces, and the chaos
        harness nondeterministic.
TQL921  unseeded randomness in engine code — module-level ``random.*``
        calls or a no-argument ``random.Random()``. All randomness must
        flow from an explicit seed so runs are reproducible.
TQL922  bare lock in engine code — ``threading.Lock()`` / ``RLock()`` /
        ``Condition()`` constructed directly instead of through
        :func:`repro.engine.sanitizer.registered_lock`. Unregistered
        locks are invisible to the lock-order race detector (TQL910).
TQL923  swallowed exception in engine code — ``except Exception:`` (or a
        bare ``except:``) whose body is only ``pass``/``...``. Operator
        code that drops errors silently turns protocol violations into
        wrong answers.
======= ====================================================================

Scope: TQL920–TQL922 apply to :mod:`repro.engine` and :mod:`repro.obs`
(the concurrent core); TQL923 applies to :mod:`repro.engine` operator
code. ``repro/engine/sanitizer.py`` itself is exempt from TQL922 — the
lock registry cannot register its own internal mutex — and ``clock.py``/
``rng.py``-style shims would be the sanctioned wall-clock/randomness
homes. Findings are deterministic (sorted by file, then offset) so the
CI lint job can assert an empty baseline.

Run as::

    python -m repro.sql.analysis.engine_lint src/ [--format=text|json]

Exit status is 1 when any finding is reported, 0 on a clean tree.
"""

from __future__ import annotations

import ast
import json
import sys
from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from pathlib import Path

from repro.sql.analysis.diagnostics import Diagnostic, Severity
from repro.sql.ast import Span

__all__ = ["FileFinding", "lint_paths", "lint_source", "main"]

#: Call targets that read the wall clock (module attribute form).
_WALL_CLOCK_CALLS = {
    ("time", "time"),
    ("time", "time_ns"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
}

#: threading constructors that must go through registered_lock().
_LOCK_CONSTRUCTORS = {"Lock", "RLock", "Condition"}


@dataclass(frozen=True)
class FileFinding:
    """One lint finding, anchored to a source file."""

    path: str
    line: int
    diagnostic: Diagnostic

    def render(self, source: str | None = None) -> str:
        body = self.diagnostic.render(source)
        return f"{self.path}:{self.line}: {body}"

    def as_dict(self) -> dict[str, object]:
        payload = self.diagnostic.as_dict()
        payload["file"] = self.path
        payload["line"] = self.line
        return payload


def _span(source: str, node: ast.AST) -> Span:
    """Char-offset span for ``node``, matching the query analyzer's caret
    rendering (line/col from the Python AST converted to offsets)."""
    lines = source.splitlines(keepends=True)
    line_index = getattr(node, "lineno", 1) - 1
    start = sum(len(line) for line in lines[:line_index])
    start += getattr(node, "col_offset", 0)
    end_line = getattr(node, "end_lineno", None)
    end_col = getattr(node, "end_col_offset", None)
    if end_line is not None and end_col is not None:
        end = sum(len(line) for line in lines[: end_line - 1]) + end_col
    else:
        end = start + 1
    return Span(start, max(end, start + 1))


def _dotted(node: ast.AST) -> tuple[str, ...] | None:
    """``a.b.c`` as ``("a", "b", "c")``, or None for non-name chains."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


class _EngineVisitor(ast.NodeVisitor):
    """Collects TQL920–TQL923 findings over one module's AST."""

    def __init__(
        self,
        source: str,
        *,
        check_determinism: bool,
        check_locks: bool,
        check_excepts: bool,
    ) -> None:
        self._source = source
        self._determinism = check_determinism
        self._locks = check_locks
        self._excepts = check_excepts
        self.findings: list[tuple[int, Diagnostic]] = []

    def _report(
        self, node: ast.AST, code: str, message: str, hint: str
    ) -> None:
        self.findings.append(
            (
                getattr(node, "lineno", 0),
                Diagnostic(
                    code=code,
                    severity=Severity.ERROR,
                    message=message,
                    span=_span(self._source, node),
                    hint=hint,
                ),
            )
        )

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        if dotted is not None:
            self._check_call(node, dotted)
        self.generic_visit(node)

    def _check_call(self, node: ast.Call, dotted: tuple[str, ...]) -> None:
        # Normalize "datetime.datetime.now" to its last two components.
        tail = dotted[-2:] if len(dotted) >= 2 else dotted
        if self._determinism:
            if tuple(tail) in _WALL_CLOCK_CALLS:
                self._report(
                    node,
                    "TQL920",
                    f"wall-clock read: {'.'.join(dotted)}() in engine code",
                    "engine time must come from the session's virtual "
                    "clock (repro.clock); wall-clock reads break replay "
                    "determinism",
                )
            if dotted[0] == "random" and len(dotted) == 2:
                if dotted[1] == "Random":
                    if not node.args and not node.keywords:
                        self._report(
                            node,
                            "TQL921",
                            "unseeded random.Random() in engine code",
                            "pass an explicit seed so runs are "
                            "reproducible",
                        )
                else:
                    self._report(
                        node,
                        "TQL921",
                        f"module-level random.{dotted[1]}() in engine code "
                        "(shared, effectively unseeded state)",
                        "draw from a seeded random.Random instance "
                        "threaded through the call site instead",
                    )
        if self._locks and len(dotted) == 2 and dotted[0] == "threading":
            if dotted[1] in _LOCK_CONSTRUCTORS:
                self._report(
                    node,
                    "TQL922",
                    f"bare threading.{dotted[1]}() in engine code",
                    "create engine locks with "
                    "repro.engine.sanitizer.registered_lock(name) so the "
                    "lock-order detector (TQL910) can see them",
                )

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if self._excepts and self._swallows_broadly(node):
            self._report(
                node,
                "TQL923",
                "except Exception: pass in engine code silently swallows "
                "errors",
                "handle the error, narrow the except type, or at minimum "
                "record the failure before continuing",
            )
        self.generic_visit(node)

    @staticmethod
    def _swallows_broadly(node: ast.ExceptHandler) -> bool:
        if node.type is not None:
            dotted = _dotted(node.type)
            if dotted is None or dotted[-1] not in (
                "Exception", "BaseException",
            ):
                return False
        for statement in node.body:
            if isinstance(statement, ast.Pass):
                continue
            if isinstance(statement, ast.Expr) and isinstance(
                statement.value, ast.Constant
            ):
                continue  # docstring or bare `...`
            return False
        return True


def lint_source(source: str, path: str) -> list[FileFinding]:
    """Lint one module's source; ``path`` scopes which checks apply."""
    normalized = path.replace("\\", "/")
    parts = normalized.split("/")
    if "tests" in parts or "benchmarks" in parts:
        # Test/bench code may legitimately use wall clocks and bare
        # threads; the invariants guard the engine proper.
        return []
    in_engine = "/engine/" in normalized or normalized.endswith("/engine")
    in_obs = "/obs/" in normalized
    if not (in_engine or in_obs):
        return []
    is_sanitizer = normalized.endswith("/sanitizer.py")
    visitor = _EngineVisitor(
        source,
        check_determinism=True,
        # The registry cannot register the mutex that guards itself.
        check_locks=not is_sanitizer,
        check_excepts=in_engine,
    )
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return [
            FileFinding(
                path,
                error.lineno or 0,
                Diagnostic(
                    code="TQL002",
                    severity=Severity.ERROR,
                    message=f"cannot parse {path}: {error.msg}",
                ),
            )
        ]
    visitor.visit(tree)
    return [
        FileFinding(path, line, diagnostic)
        for line, diagnostic in visitor.findings
    ]


def _python_files(paths: Sequence[str]) -> Iterable[Path]:
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def lint_paths(paths: Sequence[str]) -> list[FileFinding]:
    """Lint every Python file under ``paths``; deterministic order."""
    findings: list[FileFinding] = []
    for file_path in _python_files(paths):
        source = file_path.read_text(encoding="utf-8")
        findings.extend(lint_source(source, str(file_path)))
    findings.sort(key=lambda f: (f.path, f.line, f.diagnostic.code))
    return findings


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point: ``python -m repro.sql.analysis.engine_lint src/``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="engine_lint",
        description="TQLSAN determinism lint over the engine's own source "
        "(TQL920-TQL923; see docs/SANITIZER.md)",
    )
    parser.add_argument("paths", nargs="+", help="files or directories")
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="text (default, caret snippets) or json (uniform with "
        "`tweeql check --format=json`)",
    )
    args = parser.parse_args(argv)

    findings = lint_paths(args.paths)
    if args.format == "json":
        print(json.dumps([f.as_dict() for f in findings], indent=2))
    else:
        for finding in findings:
            source = Path(finding.path).read_text(encoding="utf-8")
            print(finding.render(source))
        print(
            f"engine_lint: {len(findings)} finding"
            f"{'' if len(findings) == 1 else 's'} in "
            f"{len(list(_python_files(args.paths)))} files"
        )
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
